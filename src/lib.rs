//! `pdqi` — Preference-Driven Querying of Inconsistent relational databases.
//!
//! This façade crate re-exports the whole workspace so applications can depend on a
//! single crate:
//!
//! * [`relation`] — the relational substrate (values, schemas, tuples, instances),
//! * [`constraints`] — functional dependencies, denial constraints, conflict graphs,
//! * [`priority`] — priorities (acyclic conflict-graph orientations), winnow, generators,
//! * [`query`] — first-order queries: AST, parser, evaluator, classification,
//! * [`solve`] — repair enumeration, SAT, domination search, hardness reductions,
//! * [`core`] — the paper's contribution: repairs, L/S/G/C preferred-repair families,
//!   properties P1–P4 and preferred consistent query answers,
//! * [`cleaning`] — the data-cleaning baseline,
//! * [`baselines`] — the Section 5 related-work baselines (numeric levels, preferred
//!   subtheories, prioritized removal, ranking/fusion, repair ranking, repair constraints),
//! * [`aggregate`] — range-consistent aggregation answers (MIN/MAX/COUNT/SUM/AVG) over
//!   preferred repairs, with a polynomial closed form for key-induced conflicts,
//! * [`ext`] — the paper's future-work extensions: cyclic preference relations and
//!   priorities over conflict hypergraphs (denial constraints),
//! * [`sql`] — a small SQL front end with a `WITH REPAIRS <family>` clause,
//! * [`datagen`] — synthetic workload generators used by the experiments.
//!
//! The most commonly used types are also re-exported at the top level.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pdqi_aggregate as aggregate;
pub use pdqi_baselines as baselines;
pub use pdqi_cleaning as cleaning;
pub use pdqi_constraints as constraints;
pub use pdqi_core as core;
pub use pdqi_datagen as datagen;
pub use pdqi_ext as ext;
pub use pdqi_priority as priority;
pub use pdqi_query as query;
pub use pdqi_relation as relation;
pub use pdqi_solve as solve;
pub use pdqi_sql as sql;

pub use pdqi_constraints::{ConflictGraph, FdSet, FunctionalDependency};
pub use pdqi_core::{CqaOutcome, FamilyKind, PdqiEngine, RepairContext};
pub use pdqi_priority::Priority;
pub use pdqi_query::{parse_formula, Evaluator, Formula};
pub use pdqi_relation::{RelationInstance, RelationSchema, TupleId, TupleSet, Value, ValueType};
pub use pdqi_sql::Session;
