//! `pdqi` — Preference-Driven Querying of Inconsistent relational databases.
//!
//! An executable reproduction (and scaling-up) of S. Staworko & J. Chomicki,
//! *Preference-Driven Querying of Inconsistent Relational Databases* (EDBT 2006
//! Workshops): repairs of an inconsistent database are the maximal consistent subsets,
//! a user *priority* orients conflicts, and queries are answered over the induced
//! families of preferred repairs.
//!
//! # The primary API: build a snapshot, prepare queries, execute many times
//!
//! The paper's setting fixes the database, its constraints and the priority once and
//! then asks many queries. The API mirrors that amortized shape:
//!
//! 1. [`EngineBuilder`] assembles relations + functional dependencies + a priority
//!    source into an immutable [`EngineSnapshot`]. Conflict graphs and their connected
//!    components are computed once and shared (`Arc`) by clones and derived snapshots.
//! 2. [`PreparedQuery`] parses and classifies a first-order query once; executing it
//!    against a snapshot under any [`FamilyKind`] and [`Semantics`] streams an
//!    [`AnswerSet`]. Per-component preferred repairs and full answers are memoised in
//!    the snapshot, so repeated and overlapping executions skip the expensive work.
//! 3. [`EngineSnapshot::with_priority`] revises preferences without rebuilding,
//!    invalidating only the memo entries of conflict components the change touches.
//!
//! ```
//! use std::sync::Arc;
//! use pdqi::{EngineBuilder, FamilyKind, PreparedQuery, Semantics};
//! use pdqi::{FdSet, RelationInstance, RelationSchema, Value, ValueType};
//!
//! // The paper's Example 1: two conflicting sources integrated into one relation.
//! let schema = Arc::new(RelationSchema::from_pairs("Mgr", &[
//!     ("Name", ValueType::Name), ("Dept", ValueType::Name),
//!     ("Salary", ValueType::Int), ("Reports", ValueType::Int),
//! ]).unwrap());
//! let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
//!     vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
//!     vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
//!     vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
//!     vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
//! ]).unwrap();
//! let fds = FdSet::parse(Arc::clone(&schema),
//!     &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"]).unwrap();
//!
//! // 1. Build once.
//! let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
//! assert_eq!(snapshot.count_repairs(), 3);
//!
//! // 2. Prepare once, execute as often as needed.
//! let q2 = PreparedQuery::parse(
//!     "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) \
//!      AND s1 > s2 AND r1 < r2",
//! ).unwrap();
//! assert!(q2.consistent_answer(&snapshot, FamilyKind::Rep).unwrap().is_undetermined());
//!
//! // 3. Revise preferences cheaply: source s3 (the last two tuples) is less reliable.
//! let mut order = pdqi::priority::SourceOrder::new();
//! order.prefer("s1", "s3").prefer("s2", "s3");
//! let sources: Vec<String> = ["s1", "s2", "s3", "s3"].map(String::from).into();
//! let priority = pdqi::priority::priority_from_source_reliability(
//!     Arc::clone(snapshot.graph()), &sources, &order);
//! let revised = snapshot.with_priority(priority).unwrap();
//! // Under the globally-optimal repairs the answer becomes certain.
//! assert!(q2.consistent_answer(&revised, FamilyKind::Global).unwrap().certainly_true);
//!
//! // Open queries stream certain/possible answers.
//! let depts = PreparedQuery::parse("EXISTS n,s,r . Mgr(n,x,s,r)").unwrap();
//! let certain = depts.execute(&revised, FamilyKind::Global, Semantics::Certain).unwrap();
//! assert_eq!(certain.collect::<Vec<_>>(), vec![vec![Value::name("R&D")]]);
//! ```
//!
//! For serving, a [`SnapshotRegistry`] holds one atomically-swappable snapshot per
//! table; the SQL front end ([`Session`]) is a thin view over it, and the
//! `pdqi-server` crate puts a network front end (length-prefixed TCP protocol over
//! [`BatchExecutor`]) on the same registry.
//!
//! # Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`relation`] | relational substrate: values, schemas, tuples, instances, databases |
//! | [`constraints`] | functional dependencies, denial constraints, conflict graphs/hypergraphs |
//! | [`priority`] | priorities (acyclic conflict-graph orientations), winnow, generators |
//! | [`query`] | first-order queries: AST, parser, evaluator, classification |
//! | [`solve`] | repair enumeration, SAT, domination search, hardness reductions |
//! | [`core`] | the paper's framework **and the snapshot/prepared-query engine** |
//! | [`cleaning`] | the data-cleaning baseline the paper argues against |
//! | [`baselines`] | the Section 5 related-work baselines |
//! | [`aggregate`] | range-consistent aggregation (MIN/MAX/COUNT/SUM/AVG) |
//! | [`ext`] | future-work extensions: cyclic preferences, conflict hypergraphs |
//! | [`sql`] | SQL front end with `WITH REPAIRS <family>` and prepared-statement caching |
//! | [`datagen`] | synthetic workload generators used by the experiments |
//!
//! The most commonly used types are re-exported at the top level.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pdqi_aggregate as aggregate;
pub use pdqi_baselines as baselines;
pub use pdqi_cleaning as cleaning;
pub use pdqi_constraints as constraints;
pub use pdqi_core as core;
pub use pdqi_datagen as datagen;
pub use pdqi_ext as ext;
pub use pdqi_priority as priority;
pub use pdqi_query as query;
pub use pdqi_relation as relation;
pub use pdqi_server as server;
pub use pdqi_solve as solve;
pub use pdqi_sql as sql;

pub use pdqi_constraints::{ConflictGraph, FdSet, FunctionalDependency};
pub use pdqi_core::{
    force_naive_plan, naive_plan_forced, plan_stats, AnswerDelta, AnswerSet, BatchExecutor,
    BatchRequest, BatchResponse, BuildError, ChangeScope, ChunkTuner, ChunkTunerStats, CqaOutcome,
    EngineBuilder, EngineSnapshot, FamilyKind, MemoStats, Mutation, MutationError, MutationReport,
    Parallelism, PhysicalPlan, PlanStats, PreparedQuery, RegistryStats, RepairContext,
    ReportStrategy, RouteSpec, Semantics, Shard, ShardPlan, SnapshotLease, SnapshotRegistry,
    SubscribeOptions, SubscribeStats, Subscribed, SubscriptionEvent, SubscriptionInfo,
    SubscriptionManager, TableStats, WindowStats, WriteCoalescer, WriteError, WriteFrame,
    WriteOutcome, WriteStats, MAX_THREADS,
};
pub use pdqi_priority::Priority;
pub use pdqi_query::{parse_formula, Evaluator, Formula};
pub use pdqi_relation::{RelationInstance, RelationSchema, TupleId, TupleSet, Value, ValueType};
pub use pdqi_sql::Session;
