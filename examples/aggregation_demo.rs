//! Range-consistent aggregation over an inconsistent payroll table.
//!
//! The paper's future-work section points at scalar aggregation (Arenas et al. [2]) as
//! the natural companion of preferred consistent query answers: when the query is an
//! aggregate, the certain answer becomes a *range* — the tightest interval containing the
//! aggregate's value in every (preferred) repair. This example shows
//!
//! 1. the range of `SUM(Salary)` / `MIN` / `MAX` / `AVG` over all repairs of a payroll
//!    table whose sources disagree,
//! 2. the same ranges computed without enumerating a single repair (the closed form for
//!    key-induced conflicts),
//! 3. how the ranges tighten as the user supplies more preference information, down to a
//!    point once the priority is total.
//!
//! Run with `cargo run --example aggregation_demo`.

use std::sync::Arc;

use pdqi::aggregate::{
    narrowing_report, range_by_enumeration, range_closed_form, AggregateFunction, AggregateQuery,
};
use pdqi::core::FamilyKind;
use pdqi::{FdSet, RelationInstance, RelationSchema, RepairContext, TupleId, Value, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A payroll table integrated from an HR export and a finance export that disagree on
    // three employees' salaries; Name is a key.
    let schema = Arc::new(RelationSchema::from_pairs(
        "Payroll",
        &[("Name", ValueType::Name), ("Dept", ValueType::Name), ("Salary", ValueType::Int)],
    )?);
    let rows: Vec<(&str, &str, i64)> = vec![
        ("Mary", "R&D", 95),   // t0  HR
        ("Mary", "R&D", 80),   // t1  Finance
        ("John", "PR", 40),    // t2  HR
        ("John", "PR", 55),    // t3  Finance
        ("Eve", "IT", 70),     // t4  HR
        ("Eve", "Sales", 66),  // t5  Finance
        ("Omar", "IT", 52),    // t6  agreed
        ("Lena", "Sales", 61), // t7  agreed
    ];
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        rows.iter().map(|&(n, d, s)| vec![Value::name(n), Value::name(d), Value::int(s)]).collect(),
    )?;
    let fds = FdSet::parse(Arc::clone(&schema), &["Name -> Dept Salary"])?;
    let ctx = RepairContext::new(instance, fds);
    println!(
        "payroll: {} rows, {} conflicts, {} repairs",
        ctx.instance().len(),
        ctx.graph().edge_count(),
        ctx.count_repairs()
    );

    // 1. Ranges over all repairs, by enumeration.
    let family = FamilyKind::Rep.family();
    let empty = ctx.empty_priority();
    println!("\nranges over ALL repairs (enumeration):");
    for f in [
        AggregateFunction::Sum,
        AggregateFunction::Min,
        AggregateFunction::Max,
        AggregateFunction::Avg,
    ] {
        let q = AggregateQuery::over(&schema, f, "Salary")?;
        let range = range_by_enumeration(&ctx, &empty, family.as_ref(), &q);
        println!("  {:<4}(Salary) ∈ {}", f.label(), range);
    }
    let headcount = AggregateQuery::count();
    println!(
        "  COUNT(*)    = {} (identical in every repair)",
        range_by_enumeration(&ctx, &empty, family.as_ref(), &headcount)
    );

    // 2. The same ranges via the closed form — no repair is ever materialised.
    println!("\nranges via the key-conflict closed form (no enumeration):");
    for f in [
        AggregateFunction::Sum,
        AggregateFunction::Min,
        AggregateFunction::Max,
        AggregateFunction::Avg,
    ] {
        let q = AggregateQuery::over(&schema, f, "Salary")?;
        println!("  {:<4}(Salary) ∈ {}", f.label(), range_closed_form(&ctx, &q)?);
    }

    // 3. Preferences narrow the ranges: trust HR over Finance for Mary and Eve, then for
    // everyone (a total priority).
    let partial = ctx.priority_from_pairs(&[(TupleId(0), TupleId(1)), (TupleId(4), TupleId(5))])?;
    let mut total = partial.clone();
    total.add(TupleId(3), TupleId(2))?; // for John, Finance wins
    let sum = AggregateQuery::over(&schema, AggregateFunction::Sum, "Salary")?;
    let report = narrowing_report(&ctx, &[empty, partial, total], FamilyKind::Global, &sum);
    println!("\nSUM(Salary) under G-Rep as the priority grows (edges oriented → range):");
    print!("{}", report.render());
    println!("monotone narrowing holds: {}", report.is_monotone());
    Ok(())
}
