//! A tour of the Section 5 related-work baselines.
//!
//! The paper positions its preferred-repair families against earlier priority-based
//! approaches — numeric levels, preferred subtheories, prioritized conflict removal,
//! ranking with fusion, repair ranking — by which of the properties P1–P4 each satisfies
//! and how much of the user's preference information each can actually express. This
//! example replays that comparison on the paper's own motivating scenario (Example 1
//! with the Example 3 source reliabilities), printing how many repairs every semantics
//! selects, whether its outputs are repairs at all, and what each one answers to Q2.
//!
//! Run with `cargo run --example baselines_tour`.

use std::sync::Arc;

use pdqi::baselines::comparison::{compare_semantics, BaselineInputs};
use pdqi::baselines::numeric::is_level_representable;
use pdqi::baselines::{grosof_resolution, RankedFusion};
use pdqi::priority::{priority_from_source_reliability, SourceOrder};
use pdqi::{
    parse_formula, FdSet, RelationInstance, RelationSchema, RepairContext, Value, ValueType,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- The paper's Example 1: integrate three sources into one inconsistent table.
    let schema = Arc::new(RelationSchema::from_pairs(
        "Mgr",
        &[
            ("Name", ValueType::Name),
            ("Dept", ValueType::Name),
            ("Salary", ValueType::Int),
            ("Reports", ValueType::Int),
        ],
    )?);
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)], // s1
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)], // s2
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],  // s3
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],  // s3
        ],
    )?;
    let fds = FdSet::parse(
        Arc::clone(&schema),
        &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"],
    )?;
    let ctx = RepairContext::new(instance, fds);

    // ---- Example 3's user knowledge: s3 is less reliable than s1 and s2.
    let mut order = SourceOrder::new();
    order.prefer("s1", "s3");
    order.prefer("s2", "s3");
    let sources: Vec<String> = vec!["s1".into(), "s2".into(), "s3".into(), "s3".into()];
    let priority = priority_from_source_reliability(Arc::clone(ctx.graph()), &sources, &order);
    println!("conflicts: {}, repairs: {}", ctx.graph().edge_count(), ctx.count_repairs());
    println!(
        "reliability priority orients {} of {} conflicts; level-representable: {}",
        priority.edge_count(),
        ctx.graph().edge_count(),
        is_level_representable(&priority)
    );

    // ---- Q2: does Mary earn more than John while writing fewer reports?
    let q2 = parse_formula(
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) \
         AND s1 > s2 AND r1 < r2",
    )?;

    // ---- The same user knowledge, expressed the way each baseline wants it.
    let inputs = BaselineInputs::from_levels(vec![2, 2, 1, 1]);
    let report = compare_semantics(&ctx, &priority, &inputs, &q2);
    println!("\n{}", report.render());

    // ---- The single-output constructions in more detail.
    let grosof = grosof_resolution(ctx.graph(), &priority);
    println!(
        "Grosof-style removal keeps {:?} (repair: {}, tuples lost to unresolved conflicts: {})",
        grosof.kept,
        grosof.is_repair(ctx.graph()),
        grosof.information_loss()
    );
    let fusion = RankedFusion::new(vec![2, 2, 1, 1]).resolve(&ctx);
    println!(
        "ranking+fusion keeps {} rows ({} fused groups, repair: {})",
        fusion.resolved.len(),
        fusion.fused_groups,
        fusion.is_repair
    );
    println!(
        "\nfused/cleaned views answer a different question than preferred consistent answers:"
    );
    println!("the G-Rep row above shows Q2 becoming *certainly true* without deleting anything.");
    Ok(())
}
