//! Quickstart: the paper's running example (Examples 1–3) end to end.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example integrates the three sources of Example 1 into an inconsistent manager
//! relation, shows its repairs, asks the paper's queries Q1 and Q2, and then installs the
//! Example 3 reliability preferences to see how the preferred consistent answers change.

use std::sync::Arc;

use pdqi::priority::SourceOrder;
use pdqi::{FamilyKind, FdSet, PdqiEngine, RelationInstance, RelationSchema, Value, ValueType};

fn main() {
    // Schema and key dependencies of Example 1.
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .expect("valid schema"),
    );
    let fds = FdSet::parse(
        Arc::clone(&schema),
        &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"],
    )
    .expect("valid functional dependencies");

    // The integrated instance r = s1 ∪ s2 ∪ s3.
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)], // from s1
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)], // from s2
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],  // from s3
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],  // from s3
        ],
    )
    .expect("rows match the schema");

    let mut engine = PdqiEngine::new(instance, fds);
    println!("Integrated instance:\n{}", pdqi::relation::text::render_instance(engine.instance()));
    println!("Consistent? {}", engine.is_consistent());
    println!("Number of repairs (Example 2): {}", engine.count_repairs());
    for (i, repair) in engine.repairs(10).iter().enumerate() {
        let tuples: Vec<String> = repair
            .iter()
            .map(|id| engine.instance().tuple_unchecked(id).to_string())
            .collect();
        println!("  repair r{}: {}", i + 1, tuples.join(", "));
    }

    // Q1: does John earn more than Mary?  Q2: does Mary earn more with fewer reports?
    let q1 = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";
    let q2 = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2";

    println!("\nWithout preferences (classic consistent query answers):");
    for (name, query) in [("Q1", q1), ("Q2", q2)] {
        let outcome = engine.consistent_answer_text(query, FamilyKind::Rep).expect("valid query");
        println!(
            "  {name}: certainly true = {}, certainly false = {}, undetermined = {}",
            outcome.certainly_true,
            outcome.certainly_false,
            outcome.is_undetermined()
        );
    }

    // Example 3: source s3 is less reliable than s1 and s2 (s1 vs s2 unknown).
    let mut order = SourceOrder::new();
    order.prefer("s1", "s3").prefer("s2", "s3");
    let sources = vec!["s1".to_string(), "s2".to_string(), "s3".to_string(), "s3".to_string()];
    engine.set_priority_from_sources(&sources, &order);

    println!("\nWith the Example 3 reliability priority, under G-Rep:");
    println!(
        "  preferred repairs: {}",
        engine.preferred_repairs(FamilyKind::Global, 10).len()
    );
    for (name, query) in [("Q1", q1), ("Q2", q2)] {
        let outcome =
            engine.consistent_answer_text(query, FamilyKind::Global).expect("valid query");
        println!(
            "  {name}: certainly true = {}, certainly false = {}",
            outcome.certainly_true, outcome.certainly_false
        );
    }
    println!("\n(The paper's point: Q2 becomes certainly true once the preferences are used,");
    println!(" while cleaning the database with the same information would answer false.)");
}
