//! Quickstart: the paper's running example (Examples 1–3) end to end.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example integrates the three sources of Example 1 into an inconsistent manager
//! relation, freezes it into an engine snapshot, prepares the paper's queries Q1 and Q2
//! once, and then derives a snapshot with the Example 3 reliability preferences to see
//! how the preferred consistent answers change — the builder/prepared flow that
//! amortizes all repair-space work across executions.

use std::sync::Arc;

use pdqi::priority::{priority_from_source_reliability, SourceOrder};
use pdqi::{
    EngineBuilder, FamilyKind, FdSet, PreparedQuery, RelationInstance, RelationSchema, Value,
    ValueType,
};

fn main() {
    // Schema and key dependencies of Example 1.
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .expect("valid schema"),
    );
    let fds = FdSet::parse(
        Arc::clone(&schema),
        &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"],
    )
    .expect("valid functional dependencies");

    // The integrated instance r = s1 ∪ s2 ∪ s3.
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)], // from s1
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)], // from s2
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],  // from s3
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],  // from s3
        ],
    )
    .expect("rows match the schema");

    // Build the immutable snapshot once: conflict graph and components are computed
    // here and shared by everything below.
    let snapshot = EngineBuilder::new().relation(instance, fds).build().expect("snapshot builds");
    let stored = snapshot.context().instance();
    println!("Integrated instance:\n{}", pdqi::relation::text::render_instance(stored));
    println!("Consistent? {}", snapshot.is_consistent());
    println!("Number of repairs (Example 2): {}", snapshot.count_repairs());
    for (i, repair) in snapshot.repairs(10).iter().enumerate() {
        let tuples: Vec<String> =
            repair.iter().map(|id| stored.tuple_unchecked(id).to_string()).collect();
        println!("  repair r{}: {}", i + 1, tuples.join(", "));
    }

    // Prepare the paper's queries once; they can run against any snapshot and family.
    // Q1: does John earn more than Mary?  Q2: does Mary earn more with fewer reports?
    let q1 = PreparedQuery::parse(
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2",
    )
    .expect("valid query");
    let q2 = PreparedQuery::parse(
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2",
    )
    .expect("valid query");

    println!("\nWithout preferences (classic consistent query answers):");
    for (name, query) in [("Q1", &q1), ("Q2", &q2)] {
        let outcome = query.consistent_answer(&snapshot, FamilyKind::Rep).expect("valid query");
        println!(
            "  {name}: certainly true = {}, certainly false = {}, undetermined = {}",
            outcome.certainly_true,
            outcome.certainly_false,
            outcome.is_undetermined()
        );
    }

    // Example 3: source s3 is less reliable than s1 and s2 (s1 vs s2 unknown).
    // Deriving a snapshot with the new priority is cheap: the conflict graph is shared
    // and only the components the priority touches lose their memoised work.
    let mut order = SourceOrder::new();
    order.prefer("s1", "s3").prefer("s2", "s3");
    let sources = vec!["s1".to_string(), "s2".to_string(), "s3".to_string(), "s3".to_string()];
    let priority = priority_from_source_reliability(Arc::clone(snapshot.graph()), &sources, &order);
    let revised = snapshot.with_priority(priority).expect("the priority fits the snapshot");

    println!("\nWith the Example 3 reliability priority, under G-Rep:");
    println!("  preferred repairs: {}", revised.preferred_repairs(FamilyKind::Global, 10).len());
    for (name, query) in [("Q1", &q1), ("Q2", &q2)] {
        let outcome = query.consistent_answer(&revised, FamilyKind::Global).expect("valid query");
        println!(
            "  {name}: certainly true = {}, certainly false = {}",
            outcome.certainly_true, outcome.certainly_false
        );
    }
    println!("\n(The paper's point: Q2 becomes certainly true once the preferences are used,");
    println!(" while cleaning the database with the same information would answer false.)");
}
