//! Driving the framework through the SQL front end.
//!
//! Run with `cargo run --example sql_session`.
//!
//! The same walkthrough as `quickstart`, but expressed entirely in the SQL subset:
//! schema definition, functional dependencies, data loading, tuple preferences and
//! repair-aware queries via `WITH REPAIRS <family>`.

use pdqi::sql::{Session, StatementOutcome};

fn main() {
    let mut session = Session::new();
    let script = "\
        CREATE TABLE Mgr (Name TEXT, Dept TEXT, Salary INT, Reports INT);\n\
        ALTER TABLE Mgr ADD FD Dept -> Name Salary Reports;\n\
        ALTER TABLE Mgr ADD FD Name -> Dept Salary Reports;\n\
        INSERT INTO Mgr VALUES ('Mary', 'R&D', 40, 3), ('John', 'R&D', 10, 2);\n\
        INSERT INTO Mgr VALUES ('Mary', 'IT', 20, 1), ('John', 'PR', 30, 4);";
    session.execute_script(script).expect("the setup script is valid");
    println!("Loaded the Example 1 instance through SQL.");

    let queries = [
        ("Everything stored (plain SQL evaluation)", "SELECT * FROM Mgr"),
        ("Who certainly manages something (classic CQA)", "SELECT Name FROM Mgr WITH REPAIRS ALL"),
        (
            "Departments with a certain manager (classic CQA)",
            "SELECT Dept FROM Mgr WITH REPAIRS ALL",
        ),
    ];
    for (label, sql) in queries {
        run(&mut session, label, sql);
    }

    println!("\n-- Installing the Example 3 preferences (s3 is the least reliable source) --");
    session
        .execute("PREFER ('Mary', 'R&D', 40, 3) OVER ('Mary', 'IT', 20, 1) IN Mgr")
        .expect("valid preference");
    session
        .execute("PREFER ('John', 'R&D', 10, 2) OVER ('John', 'PR', 30, 4) IN Mgr")
        .expect("valid preference");

    let preferred_queries = [
        ("Departments with a certain manager (G-Rep)", "SELECT Dept FROM Mgr WITH REPAIRS GLOBAL"),
        (
            "Well-paid certain managers (G-Rep)",
            "SELECT Name FROM Mgr WHERE Salary >= 10 WITH REPAIRS GLOBAL",
        ),
        (
            "Same question under C-Rep",
            "SELECT Name FROM Mgr WHERE Salary >= 10 WITH REPAIRS COMMON",
        ),
    ];
    for (label, sql) in preferred_queries {
        run(&mut session, label, sql);
    }
}

fn run(session: &mut Session, label: &str, sql: &str) {
    println!("\n{label}\n  {sql}");
    match session.execute(sql) {
        Ok(StatementOutcome::Rows(result)) => {
            println!("  -> columns: {}", result.columns.join(", "));
            if result.rows.is_empty() {
                println!("  -> (no certain rows)");
            }
            for row in result.rows {
                let rendered: Vec<String> = row.iter().map(ToString::to_string).collect();
                println!("  -> {}", rendered.join(", "));
            }
        }
        Ok(other) => println!("  -> {other:?}"),
        Err(error) => println!("  !! {error}"),
    }
}
