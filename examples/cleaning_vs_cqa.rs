//! Cleaning vs. preference-driven consistent query answering (the paper's Example 3).
//!
//! Run with `cargo run --example cleaning_vs_cqa`.
//!
//! With only *partial* reliability information, cleaning removes the untrusted tuples
//! and still leaves an inconsistent database, answering the paper's query Q2 with a
//! misleading `false`. The preferred-repair semantics keeps all the data, uses the same
//! reliability information as a priority, and answers `true`.

use std::sync::Arc;

use pdqi::cleaning::{compare_answers, Cleaner, DataSource, Integration, ResolutionRule};
use pdqi::constraints::{ConflictGraph, FdSet};
use pdqi::priority::{priority_from_source_reliability, SourceOrder};
use pdqi::{parse_formula, FamilyKind, RelationSchema, Value, ValueType};

fn main() {
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .expect("valid schema"),
    );
    let fds = FdSet::parse(
        Arc::clone(&schema),
        &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"],
    )
    .expect("valid FDs");

    // The three sources of Example 1.
    let sources = vec![
        DataSource::new(
            "s1",
            vec![vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)]],
            0,
        ),
        DataSource::new(
            "s2",
            vec![vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)]],
            0,
        ),
        DataSource::new(
            "s3",
            vec![
                vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
            ],
            0,
        ),
    ];
    let integration = Integration::integrate(Arc::clone(&schema), &sources).expect("valid sources");
    let graph = ConflictGraph::build(integration.instance(), &fds);

    // Example 3's knowledge: s3 is less reliable than s1 and than s2; s1 vs s2 unknown.
    let mut order = SourceOrder::new();
    order.prefer("s1", "s3").prefer("s2", "s3");

    // The cleaning pipeline.
    let cleaning = Cleaner::new()
        .with_rule(ResolutionRule::PreferReliableSource(order.clone()))
        .clean(&integration, &graph);
    println!("Cleaning with partial reliability information:");
    println!("  kept {} tuples, removed {}", cleaning.kept.len(), cleaning.contingency.len());
    println!("  cleaned database still inconsistent: {}", cleaning.still_inconsistent());

    // The preference-driven alternative uses the same information as a priority.
    let priority = priority_from_source_reliability(
        Arc::new(graph.clone()),
        &integration.primary_sources(),
        &order,
    );

    let q2 = parse_formula(
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) \
         AND s1 > s2 AND r1 < r2",
    )
    .expect("Q2 parses");

    println!("\nQ2: does Mary earn more than John while writing fewer reports?");
    for kind in [FamilyKind::Rep, FamilyKind::Global, FamilyKind::Common] {
        let comparison = compare_answers(&integration, &fds, &cleaning, &priority, kind, &q2)
            .expect("comparison succeeds");
        println!(
            "  {:<6} cleaned-DB answer: {:<5} | preferred consistent answer: {}",
            kind.label(),
            comparison.cleaned_answer,
            match comparison.preferred_answer {
                Some(true) => "true",
                Some(false) => "false",
                None => "undetermined",
            }
        );
    }
    println!(
        "\n(The cleaned database says `false`; the preferred repairs say `true` — Example 3.)"
    );
}
