//! Data integration at scale: many sources, many departments, partial reliability.
//!
//! Run with `cargo run --example data_integration --release`.
//!
//! A scaled-up version of the paper's motivating scenario: several sources report
//! managers for a set of departments and disagree with some probability. The example
//! integrates the sources, derives a priority from the source-reliability order, and
//! compares how much certain knowledge each repair family recovers.

use std::sync::Arc;

use pdqi::cleaning::{Cleaner, DataSource, Integration, ResolutionRule};
use pdqi::datagen::IntegrationScenario;
use pdqi::priority::priority_from_source_reliability;
use pdqi::query::builder::{atom, exists, var};
use pdqi::{EngineBuilder, FamilyKind, PreparedQuery, RelationInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2006);
    let scenario = IntegrationScenario::generate(6, 3, 0.3, &mut rng);

    // Integrate the sources with provenance so both the cleaner and the priority can use it.
    let sources: Vec<DataSource> = scenario
        .sources
        .iter()
        .enumerate()
        .map(|(i, (name, rows))| DataSource::new(name.clone(), rows.clone(), i as i64))
        .collect();
    let integration =
        Integration::integrate(Arc::clone(&scenario.schema), &sources).expect("valid rows");
    let instance: &RelationInstance = integration.instance();
    println!(
        "Integrated {} sources into {} tuples over {} departments",
        scenario.sources.len(),
        instance.len(),
        6
    );

    let base = EngineBuilder::new()
        .relation(instance.clone(), scenario.fds.clone())
        .build()
        .expect("snapshot builds");
    println!("Conflict graph: {}", base.graph().stats());
    println!("Repairs: {}", base.count_repairs());

    // Priority from source reliability (earlier sources are more reliable); deriving a
    // snapshot with it shares the conflict graph and the untouched memoised work.
    let priority = priority_from_source_reliability(
        Arc::clone(base.graph()),
        &integration.primary_sources(),
        &scenario.reliability,
    );
    println!(
        "Priority orients {} of {} conflict edges",
        priority.edge_count(),
        base.graph().edge_count()
    );
    let snapshot = base.with_priority(priority).expect("the priority fits the snapshot");

    // How many departments have a *certain* manager under each family?
    let dept_with_manager =
        exists(&["n", "s", "r"], atom("Mgr", vec![var("n"), var("d"), var("s"), var("r")]));
    let dept_query = PreparedQuery::from_formula(dept_with_manager);
    println!(
        "\nDepartments with a certain manager (certain answers to `∃n,s,r. Mgr(n, d, s, r)`):"
    );
    for kind in FamilyKind::ALL {
        let certain = dept_query.certain_answers(&snapshot, kind).expect("valid query").len();
        let count = snapshot.preferred_repair_count(kind);
        println!(
            "  {:<6} {:>3} certain departments ({} preferred repairs)",
            kind.label(),
            certain,
            count
        );
    }
    let stats = snapshot.memo_stats();
    println!(
        "Snapshot memo after the sweep: {} component enumerations, {} reused",
        stats.component_misses, stats.component_hits
    );

    // Contrast with the cleaning pipeline driven by the same reliability information.
    let graph = snapshot.graph();
    let outcome = Cleaner::new()
        .with_rule(ResolutionRule::PreferReliableSource(scenario.reliability.clone()))
        .clean(&integration, graph);
    println!(
        "\nCleaning with the same reliability rules keeps {} of {} tuples, \
         contingency table holds {}, still inconsistent: {}",
        outcome.kept.len(),
        instance.len(),
        outcome.contingency.len(),
        outcome.still_inconsistent()
    );
}
