//! The paper's future-work section, made runnable: cyclic user preferences and
//! priorities over denial-constraint (hypergraph) conflicts.
//!
//! Part 1 — a schedule table whose conflict-resolution rules of thumb contradict each
//! other. The raw preference statements contain a cycle; condensing them keeps the
//! uncontroversial part and the paper's machinery applies unchanged.
//!
//! Part 2 — a denial constraint involving three tuples at once ("no employee may earn
//! more than the sum of her two managers"), where conflicts are hyperedges. The `≪`
//! lifting still selects preferred repairs, but the binary notion of a "total" priority
//! splits in two, and the weaker reading no longer pins down a unique repair.
//!
//! Run with `cargo run --example beyond_the_paper`.

use std::sync::Arc;

use pdqi::constraints::ConflictHypergraph;
use pdqi::core::FamilyKind;
use pdqi::ext::{hyper_globally_optimal_repairs, CyclicPreference, HyperPriority};
use pdqi::{
    FdSet, RelationInstance, RelationSchema, RepairContext, TupleId, TupleSet, Value, ValueType,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -------------------------------------------------------------------- Part 1
    println!("== Part 1: cyclic preferences, condensed ==\n");
    let schema = Arc::new(RelationSchema::from_pairs(
        "OnCall",
        &[("Week", ValueType::Int), ("Engineer", ValueType::Name), ("Loaded", ValueType::Int)],
    )?);
    // Week is a key; three sources claim different engineers for week 12.
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec![Value::int(12), Value::name("Ana"), Value::int(3)], // t0 rota spreadsheet
            vec![Value::int(12), Value::name("Bo"), Value::int(1)],  // t1 team calendar
            vec![Value::int(12), Value::name("Cleo"), Value::int(2)], // t2 pager config
            vec![Value::int(13), Value::name("Bo"), Value::int(2)],  // t3 (conflict-free)
        ],
    )?;
    let fds = FdSet::parse(Arc::clone(&schema), &["Week -> Engineer Loaded"])?;
    let ctx = RepairContext::new(instance, fds);
    println!("conflicts: {}, repairs: {}", ctx.graph().edge_count(), ctx.count_repairs());

    // Two rules of thumb: "the rota spreadsheet beats the other sources" and "the
    // least-loaded engineer wins". They agree that the pager config (Cleo) loses, but
    // contradict each other on Ana vs. Bo — a preference cycle.
    let mut raw = CyclicPreference::new(Arc::clone(ctx.graph()));
    raw.add(TupleId(0), TupleId(1))?; // spreadsheet over calendar
    raw.add(TupleId(0), TupleId(2))?; // spreadsheet over pager config
    raw.add(TupleId(1), TupleId(0))?; // least-loaded: Bo (1) over Ana (3)
    raw.add(TupleId(1), TupleId(2))?; // least-loaded: Bo (1) over Cleo (2)
    println!("raw statements: {}, acyclic: {}", raw.edge_count(), raw.is_acyclic());

    let (priority, report) = raw.condense();
    println!(
        "condensation kept {} of {} statements ({} dropped in {} preference cycle(s))",
        report.kept_edges, report.raw_edges, report.dropped_edges, report.cycles
    );
    for kind in [FamilyKind::Rep, FamilyKind::Global] {
        let repairs = kind.family().preferred_repairs(&ctx, &priority, usize::MAX);
        println!("  {:<6} selects {} repair(s)", kind.label(), repairs.len());
    }

    // -------------------------------------------------------------------- Part 2
    println!("\n== Part 2: a ternary (denial-constraint) conflict ==\n");
    // One conflict involving three tuples at once: {t0, t1, t2} cannot coexist.
    let ternary = ConflictHypergraph::from_hyperedges(
        3,
        vec![TupleSet::from_ids([TupleId(0), TupleId(1), TupleId(2)])],
    );
    let weak = HyperPriority::from_pairs(&ternary, &[(TupleId(0), TupleId(1))])?;
    println!(
        "priority t0 ≻ t1 covers every hyperedge: {}, pairwise total: {}",
        weak.covers_every_hyperedge(&ternary),
        weak.is_pairwise_total()
    );
    let preferred = hyper_globally_optimal_repairs(&ternary, &weak, usize::MAX);
    println!("…but it leaves {} preferred repairs: {:?}", preferred.len(), preferred);

    let strong = HyperPriority::from_pairs(
        &ternary,
        &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
    )?;
    let preferred = hyper_globally_optimal_repairs(&ternary, &strong, usize::MAX);
    println!(
        "orienting every co-occurring pair ({} edges) narrows that to {:?}",
        strong.edge_count(),
        preferred
    );
    println!("\nwhich is exactly the ambiguity the paper's concluding section warns about.");
    Ok(())
}
