//! A tour of the complexity landscape of Fig. 5.
//!
//! Run with `cargo run --example complexity_tour --release`.
//!
//! The example demonstrates, on small but growing inputs, the shape of every entry in
//! the paper's complexity table: the repair space explodes exponentially (Example 4),
//! repair checking and Algorithm 1 stay polynomial, the quantifier-free CQA algorithm
//! under `Rep` avoids repair enumeration entirely, and the SAT-reduction instances show
//! why conjunctive-query CQA is co-NP-hard.

use std::time::Instant;

use pdqi::core::cqa_ground::ground_consistent_answer;
use pdqi::core::{clean_with_total_priority, FamilyKind, RepairContext};
use pdqi::datagen::{example4_instance, random_3cnf, random_ground_query, random_total_priority};
use pdqi::solve::cqa_instance_from_3sat;
use pdqi::Evaluator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    println!("== Example 4: the repair space explodes, its representation does not ==");
    for n in [4usize, 10, 20, 60] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        println!(
            "  n = {n:>3}: {:>5} tuples, {:>4} conflict edges, {} repairs (counted via components)",
            ctx.instance().len(),
            ctx.graph().edge_count(),
            ctx.count_repairs()
        );
    }

    println!("\n== Repair checking and Algorithm 1 stay polynomial ==");
    for n in [100usize, 1_000, 5_000] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_total_priority(ctx.graph().clone(), &mut rng);
        let start = Instant::now();
        let cleaned = clean_with_total_priority(ctx.graph(), &priority).expect("total priority");
        let clean_time = start.elapsed();
        let start = Instant::now();
        let is_repair = ctx.is_repair(&cleaned);
        let check_time = start.elapsed();
        let start = Instant::now();
        let preferred = FamilyKind::Common.family().is_preferred(&ctx, &priority, &cleaned);
        let c_check_time = start.elapsed();
        println!(
            "  n = {n:>5}: Algorithm 1 in {clean_time:?}, repair check in {check_time:?} ({is_repair}), \
             C-repair check in {c_check_time:?} ({preferred})"
        );
    }

    println!("\n== Quantifier-free CQA under Rep: polynomial, no repair enumeration ==");
    for n in [10usize, 100, 1_000] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        let query = random_ground_query(ctx.instance(), 4, &mut rng);
        let start = Instant::now();
        let answer = ground_consistent_answer(&ctx, &query).expect("ground query");
        println!(
            "  n = {n:>5} ({} repairs): consistent answer {answer} in {:?}",
            ctx.count_repairs(),
            start.elapsed()
        );
    }

    println!("\n== Conjunctive-query CQA is co-NP-hard: SAT instances in disguise ==");
    for (vars, clauses) in [(4usize, 8usize), (6, 14), (8, 20)] {
        let formula = random_3cnf(vars, clauses, &mut rng);
        let reduction = cqa_instance_from_3sat(&formula);
        let ctx = RepairContext::new(reduction.instance.clone(), reduction.fds.clone());
        let start = Instant::now();
        // Consistent answer to the fixed conjunctive query by enumerating repairs.
        let mut certainly_true = true;
        ctx.for_each_repair(|repair| {
            let holds = Evaluator::with_restricted(ctx.instance(), repair)
                .eval_closed(&reduction.query)
                .expect("reduction query evaluates");
            if !holds {
                certainly_true = false;
                return std::ops::ControlFlow::Break(());
            }
            std::ops::ControlFlow::Continue(())
        });
        let sat = formula.solve().is_sat();
        println!(
            "  {vars} vars / {clauses} clauses: {} repairs, consistent answer {certainly_true} \
             (formula satisfiable: {sat}) in {:?}",
            ctx.count_repairs(),
            start.elapsed()
        );
        assert_eq!(certainly_true, !sat, "the reduction and the SAT oracle must agree");
    }
}
