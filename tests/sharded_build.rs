//! Contracts of the sharded snapshot builder and of adaptive chunking.
//!
//! * **builder bit-identity** — a snapshot built with any degree of parallelism has the
//!   same conflict graphs, components, global component ids, shard plans, preferred
//!   repairs (all five families, in enumeration order) and answers as a sequential
//!   build, including after a `with_priority` derivation with parallel revalidation;
//! * **chunk coverage** — the adaptive repair-product split covers `[0, total)` exactly
//!   once, with no gaps and no overlaps, for arbitrary totals (property-tested well
//!   beyond `u64`, where `usize` arithmetic would silently truncate);
//! * **overflow fallback** — products beyond `2^64` execute identically in parallel and
//!   sequentially.

use std::sync::Arc;

use pdqi::core::prepared::{adaptive_chunk_count, chunk_ranges};
use pdqi::datagen::{example4_instance, multi_chain_relations, skewed_chain_instance};
use pdqi::{
    EngineBuilder, EngineSnapshot, FamilyKind, Parallelism, PreparedQuery, Priority, Semantics,
    TupleId,
};
use proptest::prelude::*;

const WORKERS: [usize; 3] = [2, 4, 8];

/// A skewed single-relation snapshot with a score-derived priority, so every family is
/// non-trivial, built at the given degree of parallelism.
fn skewed_snapshot(parallelism: Parallelism) -> EngineSnapshot {
    let (instance, fds) = skewed_chain_instance(4, 8);
    let scores: Vec<i64> =
        (0..instance.len() as i64).map(|i| if i % 3 == 0 { 7 } else { i % 5 }).collect();
    EngineBuilder::new()
        .relation(instance, fds)
        .priority_from_scores(&scores)
        .parallelism(parallelism)
        .build()
        .unwrap()
}

#[test]
fn sharded_builds_are_bit_identical_for_all_families() {
    let sequential = skewed_snapshot(Parallelism::sequential());
    for workers in WORKERS {
        let parallel = skewed_snapshot(Parallelism::threads(workers));
        assert_eq!(parallel.graph().edges(), sequential.graph().edges());
        assert_eq!(parallel.component_count(), sequential.component_count());
        assert_eq!(parallel.shards(), sequential.shards());
        for kind in FamilyKind::ALL {
            // Same preferred repairs, in the same enumeration order.
            assert_eq!(
                parallel.preferred_repairs(kind, usize::MAX),
                sequential.preferred_repairs(kind, usize::MAX),
                "{} at {workers} workers",
                kind.label()
            );
            assert_eq!(
                parallel.preferred_repair_count(kind),
                sequential.preferred_repair_count(kind)
            );
        }
    }
}

#[test]
fn sharded_multi_relation_builds_answer_exactly_like_sequential_ones() {
    let relations = multi_chain_relations(3, 3, 5);
    let build = |parallelism: Parallelism| {
        let mut builder = EngineBuilder::new().parallelism(parallelism);
        for (instance, fds) in &relations {
            builder = builder.relation(instance.clone(), fds.clone());
        }
        builder.build().unwrap()
    };
    let sequential = build(Parallelism::sequential());
    let join =
        PreparedQuery::parse("EXISTS a,c,d,a2,c2,d2 . R0(a,x,c,d) AND R1(a2,x,c2,d2)").unwrap();
    let single = PreparedQuery::parse("EXISTS a,c,d . R2(a,x,c,d)").unwrap();
    for workers in WORKERS {
        let parallel = build(Parallelism::threads(workers));
        assert_eq!(parallel.relation_names(), sequential.relation_names());
        assert_eq!(parallel.count_repairs(), sequential.count_repairs());
        for name in sequential.relation_names() {
            assert_eq!(parallel.shards_of(&name), sequential.shards_of(&name), "{name}");
            assert_eq!(
                parallel.context_of(&name).unwrap().graph().edges(),
                sequential.context_of(&name).unwrap().graph().edges(),
                "{name}"
            );
        }
        for query in [&join, &single] {
            for semantics in [Semantics::Certain, Semantics::Possible] {
                let s: Vec<_> = query
                    .execute(&sequential.with_cleared_memo(), FamilyKind::Rep, semantics)
                    .unwrap()
                    .collect();
                let p: Vec<_> = query
                    .execute_with(
                        &parallel.with_cleared_memo(),
                        FamilyKind::Rep,
                        semantics,
                        Parallelism::threads(workers),
                    )
                    .unwrap()
                    .collect();
                assert_eq!(s, p, "{workers} workers, {semantics:?}");
            }
        }
    }
}

#[test]
fn revalidated_derivations_match_fresh_builds_for_all_families() {
    let (instance, fds) = skewed_chain_instance(4, 8);
    let base = EngineBuilder::new()
        .relation(instance.clone(), fds.clone())
        .parallelism(Parallelism::threads(4))
        .build()
        .unwrap();
    for kind in FamilyKind::ALL {
        base.warm_components(kind, Parallelism::threads(4));
    }
    // Orient two conflict edges: one in the largest chain, one in the smallest.
    let pairs = [(TupleId(0), TupleId(1)), (TupleId(13), TupleId(12))];
    let priority = Priority::from_pairs(Arc::clone(base.graph()), &pairs).unwrap();
    for workers in [1usize, 4] {
        let derived = base
            .with_priority_revalidated(priority.clone(), Parallelism::threads(workers))
            .unwrap();
        let fresh = EngineBuilder::new()
            .relation(instance.clone(), fds.clone())
            .priority_pairs(&pairs)
            .build()
            .unwrap();
        for kind in FamilyKind::ALL {
            assert_eq!(
                derived.preferred_repairs(kind, usize::MAX),
                fresh.preferred_repairs(kind, usize::MAX),
                "{} at {workers} workers",
                kind.label()
            );
        }
        // Revalidation left the derived snapshot fully warm: re-enumerating every
        // family computes nothing new.
        let misses = derived.memo_stats().component_misses;
        for kind in FamilyKind::ALL {
            derived.preferred_repairs(kind, usize::MAX);
        }
        assert_eq!(derived.memo_stats().component_misses, misses, "{workers} workers");
    }
}

#[test]
fn repair_products_beyond_u64_answer_identically_in_parallel() {
    // 70 independent binary components: 2^70 repairs. The chunked parallel path must
    // seek its selection cursors past u64 territory and agree with the sequential
    // early-exit exactly.
    let (instance, fds) = example4_instance(70);
    let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
    assert_eq!(snapshot.count_repairs(), 1u128 << 70);
    assert!(snapshot.count_repairs() > u64::MAX as u128);
    let query = PreparedQuery::parse("EXISTS y . R(x,y) AND x < 0").unwrap();
    let sequential: Vec<_> = query
        .execute(&snapshot.with_cleared_memo(), FamilyKind::Rep, Semantics::Certain)
        .unwrap()
        .collect();
    let parallel: Vec<_> = query
        .execute_with(
            &snapshot.with_cleared_memo(),
            FamilyKind::Rep,
            Semantics::Certain,
            Parallelism::threads(4),
        )
        .unwrap()
        .collect();
    assert_eq!(sequential, parallel);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The chunk split covers `[0, total)` exactly once — no gaps, no overlaps — for
    /// totals spanning the full `u128` range (`hi` lifts the product far beyond the
    /// `usize`/`u64` boundary where truncating arithmetic would fold chunks onto each
    /// other).
    #[test]
    fn chunk_partitions_cover_the_product_exactly_once(
        hi in 0u64..u64::MAX,
        lo in 0u64..u64::MAX,
        chunks in 1u64..5000,
    ) {
        let total = ((hi as u128) << 64) | lo as u128;
        let ranges = chunk_ranges(total, chunks as u128);
        prop_assert!(!ranges.is_empty());
        prop_assert_eq!(ranges[0].0, 0);
        for window in ranges.windows(2) {
            prop_assert_eq!(window[0].1, window[1].0); // contiguous: no gap, no overlap
        }
        for &(start, end) in &ranges {
            prop_assert!(start <= end);
        }
        prop_assert_eq!(ranges.last().unwrap().1, total);
        let expected = (chunks as u128).min(total).max(1);
        prop_assert_eq!(ranges.len() as u128, expected);
    }

    /// Adaptive chunk counts always stay within the work-stealing clamp and never
    /// exceed the product itself.
    #[test]
    fn adaptive_chunk_counts_respect_the_clamp(
        total in 0u64..u64::MAX,
        cost in 0u64..u64::MAX,
        workers in 1usize..64,
    ) {
        let parallelism = Parallelism::threads(workers);
        let chunks = adaptive_chunk_count(total as u128, cost as u128, parallelism);
        prop_assert!(chunks >= 1);
        prop_assert!(chunks <= (workers as u128 * 16).max(1));
        prop_assert!(chunks <= (total as u128).max(1));
    }
}
