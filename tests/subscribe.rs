//! The continuous-query subscription subsystem end to end.
//!
//! The pinned acceptance properties:
//!
//! * **push equals poll**: replaying a mutation trace (and a revision trace) through
//!   the registry, every pushed [`AnswerDelta`] is bit-identical to the diff of two
//!   full executions on consecutive snapshots — at every degree of parallelism — and
//!   the post-swap answer matches a fresh `EngineBuilder` rebuild of the folded rows;
//! * **provable skips**: a swap whose [`ChangeScope`] cannot touch a query's answer
//!   (different table, mutation of unread relations, priority revision under `Rep`,
//!   empty affected set) pushes nothing and runs **zero** re-executions,
//!   counter-verified through [`SubscriptionManager::stats`];
//! * **no lost or reordered deltas under load**: a subscriber draining concurrently
//!   with a writer observes strictly increasing generations whose deltas fold to the
//!   final answer;
//! * **bounded queues**: a slow subscriber overflows into exactly one `Lagged` resync
//!   carrying the current full answer, then resumes incremental service;
//! * the same guarantees hold **over the wire**: `SUBSCRIBE`, a `MUTATE` batch, a
//!   pushed `DELTA`, and a clean `UNSUBSCRIBE` through the TCP front end.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::datagen::{
    multi_chain_instance, multi_chain_relations, mutation_trace, revision_trace, MutationEvent,
    TraceEvent,
};
use pdqi::server::{serve, Client, PushEvent, ServerConfig};
use pdqi::{
    AnswerDelta, ChangeScope, EngineBuilder, FamilyKind, Mutation, Parallelism, PreparedQuery,
    Priority, RelationInstance, Semantics, SnapshotRegistry, SubscriptionEvent,
    SubscriptionManager, Value,
};

/// One polling shadow of a subscription: re-executes in full and diffs.
struct Poller {
    query: Arc<PreparedQuery>,
    family: FamilyKind,
    rows: Vec<Vec<Value>>,
}

impl Poller {
    /// Executes in full on the registry's current snapshot and returns the diff
    /// against the previously observed answer, plus the observed generation.
    fn poll(
        &mut self,
        registry: &SnapshotRegistry,
        parallelism: Parallelism,
    ) -> (Vec<Vec<Value>>, Vec<Vec<Value>>, u64) {
        let lease = registry.read("R").expect("table is served");
        let answer = self
            .query
            .execute_with(lease.snapshot(), self.family, Semantics::Certain, parallelism)
            .unwrap();
        let new_rows = answer.rows().to_vec();
        let old: BTreeSet<&Vec<Value>> = self.rows.iter().collect();
        let new: BTreeSet<&Vec<Value>> = new_rows.iter().collect();
        let added: Vec<Vec<Value>> = new.difference(&old).map(|row| (*row).clone()).collect();
        let removed: Vec<Vec<Value>> = old.difference(&new).map(|row| (*row).clone()).collect();
        self.rows = new_rows;
        (added, removed, lease.generation())
    }
}

/// Asserts a drained event stream is exactly the expected delta (or nothing).
fn assert_delta(
    events: &[SubscriptionEvent],
    added: Vec<Vec<Value>>,
    removed: Vec<Vec<Value>>,
    generation: u64,
    context: &str,
) {
    if added.is_empty() && removed.is_empty() {
        assert!(events.is_empty(), "{context}: unchanged answer must push nothing: {events:?}");
        return;
    }
    assert_eq!(
        events,
        &[SubscriptionEvent::Delta(AnswerDelta { generation, added, removed })],
        "{context}"
    );
}

#[test]
fn pushed_deltas_are_bit_identical_to_polling_at_every_parallelism() {
    for threads in [1usize, 2, 4, 8] {
        let parallelism = Parallelism::threads(threads);
        let mut rng = StdRng::seed_from_u64(7);
        let trace = mutation_trace(4, 5, 36, 3, &mut rng);
        let schema = Arc::clone(trace.instance.schema());
        let mut folded: Vec<Vec<Value>> =
            trace.instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();

        let registry = SnapshotRegistry::shared();
        let snapshot = EngineBuilder::new()
            .relation(trace.instance.clone(), trace.fds.clone())
            .parallelism(parallelism)
            .build()
            .unwrap();
        registry.publish("R", snapshot);
        let manager = SubscriptionManager::new(parallelism);
        manager.attach(&registry);

        // Two live subscriptions: an open projection under a priority-sensitive
        // family and a key projection under the plain repair family.
        let specs = [
            ("EXISTS b,c,d . R(x,b,c,d)", FamilyKind::Global),
            ("EXISTS a,c,d . R(a,x,c,d)", FamilyKind::Rep),
        ];
        let mut subscriptions = Vec::new();
        for (text, family) in specs {
            let query = Arc::new(PreparedQuery::parse(text).unwrap());
            let subscribed = manager
                .subscribe(&registry, Arc::clone(&query), family, Semantics::Certain)
                .unwrap();
            let poller = Poller { query, family, rows: subscribed.rows.clone() };
            subscriptions.push((subscribed.id, poller));
        }

        for (index, event) in trace.events.iter().enumerate() {
            let mutation = match event {
                MutationEvent::Query(_) => continue,
                MutationEvent::Insert(rows) => {
                    folded.extend(rows.iter().cloned());
                    Mutation::new().insert_rows("R", rows.iter().cloned())
                }
                MutationEvent::Delete(rows) => {
                    folded.retain(|row| !rows.contains(row));
                    Mutation::new().delete_rows("R", rows.iter().cloned())
                }
            };
            registry.apply("R", &mutation, parallelism).unwrap();
            // A from-scratch build of the folded rows is the ground truth the pushed
            // state must agree with.
            let fresh = EngineBuilder::new()
                .relation(
                    RelationInstance::from_rows(Arc::clone(&schema), folded.clone()).unwrap(),
                    trace.fds.clone(),
                )
                .build()
                .unwrap();
            for (id, poller) in &mut subscriptions {
                let (added, removed, generation) = poller.poll(&registry, parallelism);
                let ground = poller
                    .query
                    .execute_with(&fresh, poller.family, Semantics::Certain, parallelism)
                    .unwrap();
                assert_eq!(
                    poller.rows,
                    ground.rows(),
                    "event {index} ({threads} thread(s)): served answer diverged from rebuild"
                );
                assert_delta(
                    &manager.drain(*id),
                    added,
                    removed,
                    generation,
                    &format!("event {index}, subscription {id} ({threads} thread(s))"),
                );
            }
        }
        let stats = manager.stats();
        assert!(stats.deltas_pushed > 0, "trace never changed an answer ({threads} thread(s))");
    }
}

#[test]
fn revision_deltas_match_polling_and_rep_subscribers_never_reexecute() {
    let parallelism = Parallelism::threads(2);
    let mut rng = StdRng::seed_from_u64(11);
    let trace = revision_trace(3, 4, 30, 3, &mut rng);
    let registry = SnapshotRegistry::shared();
    let snapshot =
        EngineBuilder::new().relation(trace.instance.clone(), trace.fds.clone()).build().unwrap();
    registry.publish("R", snapshot);

    // Two managers on one registry so the executions counter isolates each
    // subscription: `global` must re-execute on real priority changes, `rep` must
    // prove every one of them away.
    let global = SubscriptionManager::new(parallelism);
    global.attach(&registry);
    let rep = SubscriptionManager::new(parallelism);
    rep.attach(&registry);

    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    let subscribed = global
        .subscribe(&registry, Arc::clone(&query), FamilyKind::Global, Semantics::Certain)
        .unwrap();
    let mut poller =
        Poller { query: Arc::clone(&query), family: FamilyKind::Global, rows: subscribed.rows };
    let rep_sub =
        rep.subscribe(&registry, Arc::clone(&query), FamilyKind::Rep, Semantics::Certain).unwrap();

    let mut revisions = 0u64;
    for (index, event) in trace.events.iter().enumerate() {
        let TraceEvent::Revision(pairs) = event else {
            continue;
        };
        revisions += 1;
        registry
            .revise_scoped("R", |current| {
                let graph = Arc::clone(current.context().graph());
                let priority = Priority::from_pairs(graph, pairs)?;
                let (revised, affected) =
                    current.with_priority_revalidated_reported_for("R", priority, parallelism)?;
                Ok::<_, pdqi::BuildError>((
                    revised,
                    ChangeScope::Priority { relation: "R".to_string(), affected },
                ))
            })
            .unwrap();
        let (added, removed, generation) = poller.poll(&registry, parallelism);
        assert_delta(
            &global.drain(subscribed.id),
            added,
            removed,
            generation,
            &format!("revision at event {index}"),
        );
        // The plain-repair answer is priority-insensitive: every revision is proven
        // away without touching the executor, and the subscription stays current.
        assert!(rep.drain(rep_sub.id).is_empty(), "event {index}: Rep answer changed");
    }
    assert!(revisions >= 8, "trace produced too few revisions");
    let rep_stats = rep.stats();
    assert_eq!(rep_stats.executions, 1, "only the registration execution is allowed");
    assert_eq!(rep_stats.skipped_unchanged, revisions);
    assert_eq!(rep_stats.deltas_pushed, 0);
    assert_eq!(rep.list()[0].generation, registry.generation("R"), "skips still advance");
}

#[test]
fn swaps_that_cannot_affect_a_query_run_zero_reexecutions() {
    let parallelism = Parallelism::sequential();
    let tables = multi_chain_relations(2, 3, 4);
    let registry = SnapshotRegistry::shared();
    for (instance, fds) in &tables {
        let name = instance.schema().name().to_string();
        let snapshot =
            EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap();
        registry.publish(&name, snapshot);
    }
    let manager = SubscriptionManager::new(parallelism);
    manager.attach(&registry);
    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R0(x,b,c,d)").unwrap());
    let subscribed = manager
        .subscribe(&registry, Arc::clone(&query), FamilyKind::Global, Semantics::Certain)
        .unwrap();
    assert_eq!(manager.stats().executions, 1);

    // A mutation of a table the query does not read: proven unchanged, no execution.
    let victim: Vec<Value> = tables[1].0.iter().next().unwrap().1.values().to_vec();
    registry.apply("R1", &Mutation::new().delete_rows("R1", [victim]), parallelism).unwrap();
    assert!(manager.drain(subscribed.id).is_empty());
    let stats = manager.stats();
    assert_eq!(stats.executions, 1, "unrelated mutation must not re-execute");
    assert_eq!(stats.skipped_unchanged, 1);

    // A genuine priority revision of the watched table re-executes (the answer may
    // or may not change; the counter must move either way)...
    let pairs: Vec<_> = {
        let lease = registry.read("R0").unwrap();
        let edges = lease.snapshot().graph().edges().to_vec();
        edges.into_iter().take(2).collect()
    };
    let revise = |pairs: &[(pdqi::TupleId, pdqi::TupleId)]| {
        registry
            .revise_scoped("R0", |current| {
                let graph = Arc::clone(current.context().graph());
                let priority = Priority::from_pairs(graph, pairs)?;
                let (revised, affected) =
                    current.with_priority_revalidated_reported_for("R0", priority, parallelism)?;
                Ok::<_, pdqi::BuildError>((
                    revised,
                    ChangeScope::Priority { relation: "R0".to_string(), affected },
                ))
            })
            .unwrap()
    };
    revise(&pairs);
    assert_eq!(manager.stats().executions, 2, "a real revision must re-execute");

    // ... but re-setting the *identical* priority reports an empty affected set,
    // which proves the answer unchanged even for a priority-sensitive family.
    revise(&pairs);
    manager.drain(subscribed.id);
    let stats = manager.stats();
    assert_eq!(stats.executions, 2, "an identical revision must be proven away");
    assert_eq!(stats.skipped_unchanged, 2);
    assert_eq!(manager.list()[0].generation, registry.generation("R0"));
}

#[test]
fn concurrent_writer_produces_gapless_ordered_deltas_that_fold_to_the_final_answer() {
    let parallelism = Parallelism::sequential();
    let (instance, fds) = multi_chain_instance(3, 4);
    let schema = Arc::clone(instance.schema());
    let registry = SnapshotRegistry::shared();
    registry.publish(
        "R",
        EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap(),
    );
    let manager = SubscriptionManager::new(parallelism);
    manager.attach(&registry);
    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    let subscribed = manager
        .subscribe(&registry, Arc::clone(&query), FamilyKind::Global, Semantics::Certain)
        .unwrap();

    // Every insert adds a conflict-free tuple with a fresh key, so each swap grows
    // the certain answer by exactly one row — every generation must surface.
    let writes = 24usize;
    let mut deltas: Vec<AnswerDelta> = Vec::new();
    std::thread::scope(|scope| {
        let registry = &registry;
        let writer = scope.spawn(move || {
            for i in 0..writes {
                let row = vec![
                    Value::int(5_000 + i as i64),
                    Value::int(0),
                    Value::int(6_000_000 + i as i64),
                    Value::int(0),
                ];
                registry
                    .apply("R", &Mutation::new().insert_rows("R", [row]), Parallelism::sequential())
                    .unwrap();
            }
        });
        while !writer.is_finished() {
            for event in manager.drain(subscribed.id) {
                match event {
                    SubscriptionEvent::Delta(delta) => deltas.push(delta),
                    SubscriptionEvent::Lagged { .. } => panic!("queue must not overflow"),
                }
            }
            std::thread::yield_now();
        }
        writer.join().unwrap();
    });
    for event in manager.drain(subscribed.id) {
        match event {
            SubscriptionEvent::Delta(delta) => deltas.push(delta),
            SubscriptionEvent::Lagged { .. } => panic!("queue must not overflow"),
        }
    }

    assert_eq!(deltas.len(), writes, "every answer-changing swap pushes exactly one delta");
    for pair in deltas.windows(2) {
        assert!(pair[0].generation < pair[1].generation, "generations must be ordered");
    }
    // Folding the deltas over the initial answer reproduces the final full answer on
    // the final published snapshot.
    let mut folded: BTreeSet<Vec<Value>> = subscribed.rows.into_iter().collect();
    for delta in &deltas {
        for row in &delta.removed {
            assert!(folded.remove(row), "removed row was never present");
        }
        for row in &delta.added {
            assert!(folded.insert(row.clone()), "added row was already present");
        }
    }
    let final_rows: Vec<Vec<Value>> = folded.into_iter().collect();
    let lease = registry.read("R").unwrap();
    let full = query
        .execute_with(lease.snapshot(), FamilyKind::Global, Semantics::Certain, parallelism)
        .unwrap();
    assert_eq!(final_rows, full.rows());
    // Sanity: the folded catalog really grew.
    let rebuilt = EngineBuilder::new()
        .relation(
            RelationInstance::from_rows(
                schema,
                lease
                    .snapshot()
                    .context()
                    .instance()
                    .iter()
                    .map(|(_, tuple)| tuple.values().to_vec())
                    .collect(),
            )
            .unwrap(),
            fds,
        )
        .build()
        .unwrap();
    assert_eq!(
        full.rows(),
        query
            .execute_with(&rebuilt, FamilyKind::Global, Semantics::Certain, parallelism)
            .unwrap()
            .rows()
    );
}

#[test]
fn overflowing_subscribers_get_one_lagged_resync_then_resume() {
    let parallelism = Parallelism::sequential();
    let (instance, fds) = multi_chain_instance(2, 3);
    let registry = SnapshotRegistry::shared();
    registry.publish("R", EngineBuilder::new().relation(instance, fds).build().unwrap());
    let manager = SubscriptionManager::with_queue_capacity(parallelism, 1);
    manager.attach(&registry);
    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    let subscribed = manager
        .subscribe(&registry, Arc::clone(&query), FamilyKind::Global, Semantics::Certain)
        .unwrap();

    let insert = |i: i64| {
        let row =
            vec![Value::int(7_000 + i), Value::int(0), Value::int(8_000_000 + i), Value::int(0)];
        registry.apply("R", &Mutation::new().insert_rows("R", [row]), parallelism).unwrap().0
    };
    insert(1);
    insert(2);
    insert(3);
    // Three undrained answer-changing swaps against a capacity-1 queue: the queue
    // collapsed into a single resync carrying the *current* full answer.
    let events = manager.drain(subscribed.id);
    let lease = registry.read("R").unwrap();
    let full = query
        .execute_with(lease.snapshot(), FamilyKind::Global, Semantics::Certain, parallelism)
        .unwrap();
    assert_eq!(
        events,
        vec![SubscriptionEvent::Lagged {
            generation: lease.generation(),
            rows: full.rows().to_vec()
        }]
    );
    assert_eq!(manager.stats().lagged_resyncs, 1);
    // The resync cleared the flag: the next swap is incremental again.
    let generation = insert(4);
    let events = manager.drain(subscribed.id);
    assert_eq!(events.len(), 1);
    let SubscriptionEvent::Delta(delta) = &events[0] else {
        panic!("expected a delta after the resync, got {events:?}");
    };
    assert_eq!(delta.generation, generation);
    assert_eq!(delta.added, vec![vec![Value::int(7_004)]]);
    assert!(delta.removed.is_empty());
}

#[test]
fn wire_subscriptions_push_deltas_for_mutate_batches() {
    let (instance, fds) = multi_chain_instance(2, 3);
    let registry = SnapshotRegistry::shared();
    registry.publish("R", EngineBuilder::new().relation(instance, fds).build().unwrap());
    let handle = serve("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    client.prepare("q", "EXISTS b,c,d . R(x,b,c,d)").unwrap();
    let reply = client.subscribe("q", FamilyKind::Global, Semantics::Certain).unwrap();
    assert_eq!(reply.columns, vec!["x".to_string()]);
    let direct = {
        let lease = registry.read("R").unwrap();
        PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)")
            .unwrap()
            .execute(lease.snapshot(), FamilyKind::Global, Semantics::Certain)
            .unwrap()
            .rows()
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect::<Vec<String>>())
            .collect::<Vec<_>>()
    };
    assert_eq!(reply.rows, direct);

    // One MUTATE batch: insert a conflict-free tuple and delete nothing — a single
    // generation swap whose pushed delta adds exactly the new key.
    let fresh = vec!["777".to_string(), "1".to_string(), "999999".to_string(), "0".to_string()];
    let (inserted, deleted, generation) =
        client.mutate("R", std::slice::from_ref(&fresh), &[]).unwrap();
    assert_eq!((inserted, deleted), (1, 0));
    let event = client.wait_event(Duration::from_secs(10)).unwrap().expect("a delta was pushed");
    assert_eq!(
        event,
        PushEvent::Delta {
            sub: reply.sub,
            generation,
            added: vec![vec!["777".to_string()]],
            removed: vec![],
        }
    );

    // The reverse batch removes it again.
    let (_, deleted, generation) = client.mutate("R", &[], std::slice::from_ref(&fresh)).unwrap();
    assert_eq!(deleted, 1);
    let event = client.wait_event(Duration::from_secs(10)).unwrap().expect("a delta was pushed");
    assert_eq!(
        event,
        PushEvent::Delta {
            sub: reply.sub,
            generation,
            added: vec![],
            removed: vec![vec!["777".to_string()]],
        }
    );

    // Server-side observability: the STATS response reports the subscriber.
    let stats = client.stats().unwrap();
    assert!(stats.contains("subscriptions subscribers=1"), "{stats}");
    assert!(stats.lines().any(|l| l.starts_with("table R") && l.ends_with("subs=1")), "{stats}");

    // After UNSUBSCRIBE, further swaps push nothing to this connection.
    client.unsubscribe(reply.sub).unwrap();
    client.mutate("R", &[fresh], &[]).unwrap();
    assert_eq!(client.wait_event(Duration::from_millis(300)).unwrap(), None);

    client.shutdown().unwrap();
    handle.wait();
}
