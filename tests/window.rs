//! Windowed continuous queries and the write-pipelined push path, end to end.
//!
//! The pinned acceptance properties:
//!
//! * **fold identity across strategies**: replaying a mutation trace (and a revision
//!   trace), the per-generation stream, a coalesced stream and a windowed stream all
//!   fold to the same final answer — which equals a fresh `EngineBuilder` rebuild of
//!   the folded rows — at every degree of parallelism. Coalescing may *cancel*
//!   intermediate churn but never changes where the fold lands;
//! * **windows expire on schedule**: a `WindowedLastN` subscription reports the union
//!   of the last N per-generation answers; every pushed delta is bit-identical to
//!   diffing that union against the previous one, and a deleted row only leaves the
//!   reported answer once the last generation that supported it slides out;
//! * **a k-write burst costs one derivation and one push**: k frames through the
//!   [`WriteCoalescer`] net into a single `Mutation`, one `with_mutations` derivation,
//!   one swap and one pushed delta — counter-verified (`batches`, `coalesced_writes`,
//!   `derivations_saved`, manager `executions`) and bit-identical to applying the
//!   frames one at a time;
//! * **bounded queues still bound**: a per-subscription `QUEUE n` override lags
//!   independently of the manager default, and the resync *drops* any pending
//!   coalesced delta rather than replaying it across the full answer;
//! * the strategy clauses ride **over the wire**: `SUBSCRIBE … EVERY n QUEUE n`
//!   folds a MUTATE burst into one pushed `DELTA`, `COALESCE ms` flushes on the
//!   server's drain cycle, and `STATS` reports the `windows`/`writes` counters.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::datagen::{
    multi_chain_instance, mutation_trace, revision_trace, MutationEvent, TraceEvent,
};
use pdqi::server::{serve, Client, PushEvent, ReportSpec, ServerConfig};
use pdqi::{
    ChangeScope, EngineBuilder, FamilyKind, Mutation, Parallelism, PreparedQuery, Priority,
    RelationInstance, ReportStrategy, Semantics, SnapshotRegistry, SubscribeOptions,
    SubscriptionEvent, SubscriptionManager, Value, WriteCoalescer, WriteFrame,
};

/// Folds a drained event stream onto `rows`, asserting internal consistency
/// (removed rows were present, added rows were absent, generations increase).
fn fold_events(rows: &mut BTreeSet<Vec<Value>>, events: &[SubscriptionEvent], context: &str) {
    let mut last_generation = 0u64;
    for event in events {
        match event {
            SubscriptionEvent::Delta(delta) => {
                assert!(delta.generation > last_generation, "{context}: unordered generations");
                last_generation = delta.generation;
                for row in &delta.removed {
                    assert!(rows.remove(row), "{context}: removed row was never reported");
                }
                for row in &delta.added {
                    assert!(rows.insert(row.clone()), "{context}: added row already reported");
                }
            }
            SubscriptionEvent::Lagged { rows: full, .. } => {
                *rows = full.iter().cloned().collect();
            }
        }
    }
}

/// The current full answer of `query` on the registry's published snapshot.
fn full_answer(
    registry: &SnapshotRegistry,
    query: &PreparedQuery,
    parallelism: Parallelism,
) -> Vec<Vec<Value>> {
    let lease = registry.read("R").expect("table is served");
    query
        .execute_with(lease.snapshot(), FamilyKind::Global, Semantics::Certain, parallelism)
        .unwrap()
        .rows()
        .to_vec()
}

/// A swap of `R` that provably changes nothing: deleting an absent row re-executes
/// to the identical answer, advancing every window by one generation.
fn noop_swap(registry: &SnapshotRegistry, parallelism: Parallelism) {
    let absent = vec![Value::int(999_999), Value::int(0), Value::int(0), Value::int(0)];
    registry.apply("R", &Mutation::new().delete_rows("R", [absent]), parallelism).unwrap();
}

#[test]
fn coalesced_and_windowed_streams_fold_to_the_per_generation_answer() {
    for threads in [1usize, 2, 4, 8] {
        let parallelism = Parallelism::threads(threads);
        let mut rng = StdRng::seed_from_u64(7);
        let trace = mutation_trace(4, 5, 36, 3, &mut rng);
        let schema = Arc::clone(trace.instance.schema());
        let mut folded: Vec<Vec<Value>> =
            trace.instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();

        let registry = SnapshotRegistry::shared();
        let snapshot = EngineBuilder::new()
            .relation(trace.instance.clone(), trace.fds.clone())
            .parallelism(parallelism)
            .build()
            .unwrap();
        registry.publish("R", snapshot);
        let manager = SubscriptionManager::new(parallelism);
        manager.attach(&registry);

        let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
        let window_n = 3usize;
        let subscribe = |options: SubscribeOptions| {
            manager
                .subscribe_with(
                    &registry,
                    Arc::clone(&query),
                    FamilyKind::Global,
                    Semantics::Certain,
                    options,
                )
                .unwrap()
        };
        let pergen = subscribe(SubscribeOptions::default());
        let coalesced = subscribe(SubscribeOptions {
            strategy: ReportStrategy::coalesce(Duration::ZERO),
            ..SubscribeOptions::default()
        });
        let windowed = subscribe(SubscribeOptions {
            strategy: ReportStrategy::window(window_n),
            ..SubscribeOptions::default()
        });

        let mut pergen_fold: BTreeSet<Vec<Value>> = pergen.rows.into_iter().collect();
        let mut coalesced_fold: BTreeSet<Vec<Value>> = coalesced.rows.into_iter().collect();
        let mut windowed_fold: BTreeSet<Vec<Value>> = windowed.rows.iter().cloned().collect();
        // Shadow of the windowed subscription: the last N per-generation answers.
        let mut shadow: VecDeque<Vec<Vec<Value>>> = VecDeque::from([windowed.rows]);
        let mut shadow_reported: BTreeSet<Vec<Value>> = shadow[0].iter().cloned().collect();

        let mut events_seen = 0usize;
        for (index, event) in trace.events.iter().enumerate() {
            let mutation = match event {
                MutationEvent::Query(_) => continue,
                MutationEvent::Insert(rows) => {
                    folded.extend(rows.iter().cloned());
                    Mutation::new().insert_rows("R", rows.iter().cloned())
                }
                MutationEvent::Delete(rows) => {
                    folded.retain(|row| !rows.contains(row));
                    Mutation::new().delete_rows("R", rows.iter().cloned())
                }
            };
            registry.apply("R", &mutation, parallelism).unwrap();
            events_seen += 1;

            // The per-generation stream drains (and folds) every swap.
            fold_events(&mut pergen_fold, &manager.drain(pergen.id), "per-generation");

            // The windowed stream is pinned swap by swap against the shadow: its
            // delta must be exactly the diff of consecutive last-N unions.
            let current = full_answer(&registry, &query, parallelism);
            shadow.push_back(current);
            while shadow.len() > window_n {
                shadow.pop_front();
            }
            let union: BTreeSet<Vec<Value>> = shadow.iter().flatten().cloned().collect();
            let events = manager.drain(windowed.id);
            if union == shadow_reported {
                assert!(events.is_empty(), "event {index}: unchanged union pushed {events:?}");
            } else {
                assert_eq!(events.len(), 1, "event {index}: expected one windowed delta");
                let SubscriptionEvent::Delta(delta) = &events[0] else {
                    panic!("event {index}: windowed stream lagged");
                };
                let added: BTreeSet<Vec<Value>> =
                    union.difference(&shadow_reported).cloned().collect();
                let removed: BTreeSet<Vec<Value>> =
                    shadow_reported.difference(&union).cloned().collect();
                assert_eq!(delta.added.iter().cloned().collect::<BTreeSet<_>>(), added);
                assert_eq!(delta.removed.iter().cloned().collect::<BTreeSet<_>>(), removed);
                shadow_reported = union;
            }
            fold_events(&mut windowed_fold, &events, "windowed");

            // The coalesced stream only drains every fifth swap: intermediate churn
            // folds into one pending delta flushed (max_delay = 0) at drain time.
            if events_seen.is_multiple_of(5) {
                fold_events(&mut coalesced_fold, &manager.drain(coalesced.id), "coalesced");
            }
        }

        // Quiescence: flush the coalesced remainder and slide the window until the
        // last N generations share one answer, then every fold must agree with a
        // fresh build of the folded rows.
        for _ in 0..window_n {
            noop_swap(&registry, parallelism);
            fold_events(&mut windowed_fold, &manager.drain(windowed.id), "windowed (quiesce)");
        }
        fold_events(&mut coalesced_fold, &manager.drain(coalesced.id), "coalesced (quiesce)");
        fold_events(&mut pergen_fold, &manager.drain(pergen.id), "per-generation (quiesce)");

        let fresh = EngineBuilder::new()
            .relation(
                RelationInstance::from_rows(Arc::clone(&schema), folded.clone()).unwrap(),
                trace.fds.clone(),
            )
            .build()
            .unwrap();
        let ground: BTreeSet<Vec<Value>> = query
            .execute_with(&fresh, FamilyKind::Global, Semantics::Certain, parallelism)
            .unwrap()
            .rows()
            .iter()
            .cloned()
            .collect();
        let served: BTreeSet<Vec<Value>> =
            full_answer(&registry, &query, parallelism).into_iter().collect();
        assert_eq!(served, ground, "{threads} thread(s): served diverged from rebuild");
        assert_eq!(pergen_fold, ground, "{threads} thread(s): per-generation fold");
        assert_eq!(coalesced_fold, ground, "{threads} thread(s): coalesced fold");
        assert_eq!(windowed_fold, ground, "{threads} thread(s): windowed fold");

        let windows = manager.window_stats();
        assert_eq!(windows.coalesced_subscribers, 1);
        assert_eq!(windows.windowed_subscribers, 1);
        assert!(windows.folded_swaps > 0, "trace never folded a swap");
        assert!(windows.coalesced_flushes > 0, "coalesced stream never flushed");
    }
}

#[test]
fn revision_streams_fold_identically_across_strategies() {
    let parallelism = Parallelism::threads(2);
    let mut rng = StdRng::seed_from_u64(11);
    let trace = revision_trace(3, 4, 30, 3, &mut rng);
    let registry = SnapshotRegistry::shared();
    registry.publish(
        "R",
        EngineBuilder::new().relation(trace.instance.clone(), trace.fds.clone()).build().unwrap(),
    );
    let manager = SubscriptionManager::new(parallelism);
    manager.attach(&registry);

    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    let window_n = 2usize;
    let subscribe = |options: SubscribeOptions| {
        manager
            .subscribe_with(
                &registry,
                Arc::clone(&query),
                FamilyKind::Global,
                Semantics::Certain,
                options,
            )
            .unwrap()
    };
    let pergen = subscribe(SubscribeOptions::default());
    let coalesced = subscribe(SubscribeOptions {
        strategy: ReportStrategy::coalesce(Duration::ZERO),
        ..SubscribeOptions::default()
    });
    let windowed = subscribe(SubscribeOptions {
        strategy: ReportStrategy::window(window_n),
        ..SubscribeOptions::default()
    });
    let mut pergen_fold: BTreeSet<Vec<Value>> = pergen.rows.into_iter().collect();
    let mut coalesced_fold: BTreeSet<Vec<Value>> = coalesced.rows.into_iter().collect();
    let mut windowed_fold: BTreeSet<Vec<Value>> = windowed.rows.into_iter().collect();

    let mut revisions = 0usize;
    for event in &trace.events {
        let TraceEvent::Revision(pairs) = event else {
            continue;
        };
        revisions += 1;
        registry
            .revise_scoped("R", |current| {
                let graph = Arc::clone(current.context().graph());
                let priority = Priority::from_pairs(graph, pairs)?;
                let (revised, affected) =
                    current.with_priority_revalidated_reported_for("R", priority, parallelism)?;
                Ok::<_, pdqi::BuildError>((
                    revised,
                    ChangeScope::Priority { relation: "R".to_string(), affected },
                ))
            })
            .unwrap();
        fold_events(&mut pergen_fold, &manager.drain(pergen.id), "per-generation");
        fold_events(&mut windowed_fold, &manager.drain(windowed.id), "windowed");
        if revisions.is_multiple_of(3) {
            fold_events(&mut coalesced_fold, &manager.drain(coalesced.id), "coalesced");
        }
    }
    assert!(revisions >= 8, "trace produced too few revisions");

    // Quiesce through *empty* mutations: the scope names no relation, so the swap is
    // proven away without re-execution — and the window must still slide on it.
    for _ in 0..window_n {
        registry.apply("R", &Mutation::new(), parallelism).unwrap();
        fold_events(&mut windowed_fold, &manager.drain(windowed.id), "windowed (quiesce)");
    }
    fold_events(&mut coalesced_fold, &manager.drain(coalesced.id), "coalesced (quiesce)");
    fold_events(&mut pergen_fold, &manager.drain(pergen.id), "per-generation (quiesce)");

    let served: BTreeSet<Vec<Value>> =
        full_answer(&registry, &query, parallelism).into_iter().collect();
    assert_eq!(pergen_fold, served, "per-generation fold");
    assert_eq!(coalesced_fold, served, "coalesced fold");
    assert_eq!(windowed_fold, served, "windowed fold");
}

#[test]
fn window_expiry_deltas_match_diffing_n_generation_snapshots() {
    let parallelism = Parallelism::sequential();
    let (instance, fds) = multi_chain_instance(2, 3);
    let registry = SnapshotRegistry::shared();
    registry.publish("R", EngineBuilder::new().relation(instance, fds).build().unwrap());
    let manager = SubscriptionManager::new(parallelism);
    manager.attach(&registry);
    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    let subscribed = manager
        .subscribe_with(
            &registry,
            Arc::clone(&query),
            FamilyKind::Global,
            Semantics::Certain,
            SubscribeOptions { strategy: ReportStrategy::window(3), ..SubscribeOptions::default() },
        )
        .unwrap();

    // Swap 1: a conflict-free insert enters the answer — and the window — at once.
    let row = vec![Value::int(7_777), Value::int(0), Value::int(8_888_888), Value::int(0)];
    let key = vec![Value::int(7_777)];
    let (g1, _) =
        registry.apply("R", &Mutation::new().insert_rows("R", [row.clone()]), parallelism).unwrap();
    let events = manager.drain(subscribed.id);
    assert_eq!(
        events,
        vec![SubscriptionEvent::Delta(pdqi::AnswerDelta {
            generation: g1,
            added: vec![key.clone()],
            removed: vec![],
        })],
        "an insert is reported immediately"
    );

    // Swap 2: delete it again. The per-generation answer loses the key, but the
    // window still holds the generation that had it — nothing is pushed.
    registry.apply("R", &Mutation::new().delete_rows("R", [row]), parallelism).unwrap();
    assert!(manager.drain(subscribed.id).is_empty(), "a windowed delete must not report early");

    // Swap 3: the insert generation is still inside the 3-wide window.
    noop_swap(&registry, parallelism);
    assert!(manager.drain(subscribed.id).is_empty(), "the supporting generation has not expired");

    // Swap 4: the insert generation slides out — the expiry delta appears, exactly
    // the diff of the last-3 union before and after the slide.
    noop_swap(&registry, parallelism);
    let lease = registry.read("R").unwrap();
    let g4 = lease.generation();
    drop(lease);
    let events = manager.drain(subscribed.id);
    assert_eq!(
        events,
        vec![SubscriptionEvent::Delta(pdqi::AnswerDelta {
            generation: g4,
            added: vec![],
            removed: vec![key],
        })],
        "the deletion surfaces exactly when its last supporting generation expires"
    );
    assert_eq!(manager.window_stats().expiry_deltas, 1);

    // From here the window is converged: its union equals the live answer.
    let served: BTreeSet<Vec<Value>> =
        full_answer(&registry, &query, parallelism).into_iter().collect();
    let reported: BTreeSet<Vec<Value>> = {
        let infos = manager.list();
        assert_eq!(infos.len(), 1);
        // Folding the stream: initial rows + delta1 − delta4 = initial rows.
        subscribed.rows.iter().cloned().collect()
    };
    assert_eq!(reported, served);
}

#[test]
fn per_subscription_queue_bounds_lag_and_resyncs_drop_pending_coalesced_deltas() {
    let parallelism = Parallelism::sequential();
    let (instance, fds) = multi_chain_instance(2, 3);
    let registry = SnapshotRegistry::shared();
    registry.publish("R", EngineBuilder::new().relation(instance, fds).build().unwrap());
    let manager = SubscriptionManager::new(parallelism);
    manager.attach(&registry);
    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    // `EVERY 2` against a queue of 1: every second change enqueues one delta.
    let tight = manager
        .subscribe_with(
            &registry,
            Arc::clone(&query),
            FamilyKind::Global,
            Semantics::Certain,
            SubscribeOptions { strategy: ReportStrategy::every(2), queue_capacity: Some(1) },
        )
        .unwrap();
    // A default subscription on the same manager: the override must not leak.
    let roomy = manager
        .subscribe(&registry, Arc::clone(&query), FamilyKind::Global, Semantics::Certain)
        .unwrap();

    let insert = |i: i64| {
        let row =
            vec![Value::int(7_000 + i), Value::int(0), Value::int(8_000_000 + i), Value::int(0)];
        registry.apply("R", &Mutation::new().insert_rows("R", [row]), parallelism).unwrap().0
    };
    // Changes 1-4: two flushed deltas against capacity 1 — the second overflows.
    // Change 5 folds into a *pending* delta behind the lag.
    for i in 1..=5 {
        insert(i);
    }
    assert_eq!(manager.stats().lagged_resyncs, 1, "the tight queue must collapse exactly once");

    // The resync carries the current full answer and DROPS the pending delta: rows
    // 7_001..=7_005 are all present, none is replayed afterwards.
    let events = manager.drain(tight.id);
    let full: Vec<Vec<Value>> = full_answer(&registry, &query, parallelism);
    assert_eq!(events.len(), 1);
    let SubscriptionEvent::Lagged { rows, .. } = &events[0] else {
        panic!("expected a lagged resync, got {events:?}");
    };
    assert_eq!(rows, &full);
    assert_eq!(manager.window_stats().pending_dropped, 1, "the pending delta must be dropped");

    // Service resumes incrementally: two more changes flush one clean delta that
    // folds correctly onto the resync baseline.
    insert(6);
    let g7 = insert(7);
    let events = manager.drain(tight.id);
    assert_eq!(
        events,
        vec![SubscriptionEvent::Delta(pdqi::AnswerDelta {
            generation: g7,
            added: vec![vec![Value::int(7_006)], vec![Value::int(7_007)]],
            removed: vec![],
        })]
    );

    // The roomy default subscription saw every change individually, no lag.
    let mut fold: BTreeSet<Vec<Value>> = roomy.rows.into_iter().collect();
    let events = manager.drain(roomy.id);
    assert_eq!(events.len(), 7, "default capacity must not lag under 7 queued deltas");
    fold_events(&mut fold, &events, "roomy");
    assert_eq!(fold, full_answer(&registry, &query, parallelism).into_iter().collect());
}

#[test]
fn a_k_write_burst_costs_one_derivation_and_one_push() {
    let parallelism = Parallelism::sequential();
    let (instance, fds) = multi_chain_instance(2, 3);
    let schema = Arc::clone(instance.schema());
    let registry = SnapshotRegistry::shared();
    registry.publish(
        "R",
        EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap(),
    );
    let manager = SubscriptionManager::new(parallelism);
    manager.attach(&registry);
    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    let subscribed = manager
        .subscribe(&registry, Arc::clone(&query), FamilyKind::Global, Semantics::Certain)
        .unwrap();
    let coalescer = WriteCoalescer::new(Arc::clone(&registry), parallelism);

    let generation_before = registry.generation("R");
    let k = 8usize;
    let frames: Vec<WriteFrame> = (0..k)
        .map(|i| {
            let row = vec![
                Value::int(5_000 + i as i64),
                Value::int(0),
                Value::int(6_000_000 + i as i64),
                Value::int(0),
            ];
            WriteFrame::new(vec![row], Vec::new())
        })
        .collect();
    let outcomes: Vec<_> =
        coalescer.apply_frames("R", frames).into_iter().map(|r| r.unwrap()).collect();

    // One batch: one generation, shared by all k frames, one swap on the registry.
    assert_eq!(registry.generation("R"), generation_before + 1, "exactly one swap");
    for outcome in &outcomes {
        assert_eq!(outcome.generation, generation_before + 1);
        assert_eq!((outcome.inserted, outcome.deleted), (1, 0));
        assert_eq!(outcome.batched_with, k - 1);
    }
    let stats = coalescer.stats();
    assert_eq!(stats.frames, k as u64);
    assert_eq!(stats.batches, 1, "k frames must share one derivation");
    assert_eq!(stats.coalesced_writes, k as u64);
    assert_eq!(stats.derivations_saved, (k - 1) as u64);

    // One push: a single delta carrying all k new keys, and a single re-execution.
    let events = manager.drain(subscribed.id);
    assert_eq!(events.len(), 1, "one burst, one delta");
    let SubscriptionEvent::Delta(delta) = &events[0] else {
        panic!("burst must push a delta, got {events:?}");
    };
    assert_eq!(delta.added.len(), k);
    assert!(delta.removed.is_empty());
    assert_eq!(manager.stats().executions, 2, "registration plus one for the whole burst");

    // Bit identity: the batched result equals a fresh build of the same rows.
    let mut rows: Vec<Vec<Value>> =
        instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();
    for i in 0..k {
        rows.push(vec![
            Value::int(5_000 + i as i64),
            Value::int(0),
            Value::int(6_000_000 + i as i64),
            Value::int(0),
        ]);
    }
    let fresh = EngineBuilder::new()
        .relation(RelationInstance::from_rows(schema, rows).unwrap(), fds)
        .build()
        .unwrap();
    assert_eq!(
        full_answer(&registry, &query, parallelism),
        query
            .execute_with(&fresh, FamilyKind::Global, Semantics::Certain, parallelism)
            .unwrap()
            .rows()
    );

    // Fully cancelled churn: an insert frame and a delete frame of the same row net
    // to an empty mutation — both frames report their effect, nobody is pushed.
    let churn = vec![Value::int(4_444), Value::int(0), Value::int(5_555_555), Value::int(0)];
    let outcomes: Vec<_> = coalescer
        .apply_frames(
            "R",
            vec![
                WriteFrame::new(vec![churn.clone()], Vec::new()),
                WriteFrame::new(Vec::new(), vec![churn]),
            ],
        )
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!((outcomes[0].inserted, outcomes[0].deleted), (1, 0));
    assert_eq!((outcomes[1].inserted, outcomes[1].deleted), (0, 1));
    assert!(manager.drain(subscribed.id).is_empty(), "cancelled churn must push nothing");
    assert_eq!(manager.stats().executions, 2, "an empty net mutation is proven away");

    // Error rendering matches the un-coalesced path verbatim.
    let error = coalescer.apply("Ghost", WriteFrame::new(Vec::new(), Vec::new())).unwrap_err();
    assert_eq!(error.to_string(), "registry serves no table `Ghost`");
}

#[test]
fn concurrent_writers_coalesce_through_the_revision_lock() {
    let parallelism = Parallelism::sequential();
    let (instance, fds) = multi_chain_instance(2, 3);
    let registry = SnapshotRegistry::shared();
    registry.publish("R", EngineBuilder::new().relation(instance, fds).build().unwrap());
    let manager = SubscriptionManager::new(parallelism);
    manager.attach(&registry);
    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    let subscribed = manager
        .subscribe(&registry, Arc::clone(&query), FamilyKind::Global, Semantics::Certain)
        .unwrap();
    let coalescer = WriteCoalescer::new(Arc::clone(&registry), parallelism);

    // Hold R's revision lock from a scoped no-op revision while k writers enqueue:
    // when the gate opens, whichever writer leads drains every queued frame inside
    // one derivation — deterministically, because all k frames are pending before
    // the lock frees.
    let gate = Arc::new(AtomicBool::new(false));
    let k = 6usize;
    std::thread::scope(|scope| {
        let holder = {
            let registry = &registry;
            let gate = Arc::clone(&gate);
            scope.spawn(move || {
                registry
                    .revise_scoped("R", |current| {
                        while !gate.load(Ordering::Acquire) {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Ok::<_, pdqi::BuildError>((
                            current.clone(),
                            ChangeScope::Mutation { relations: Vec::new() },
                        ))
                    })
                    .unwrap();
            })
        };
        let writers: Vec<_> = (0..k)
            .map(|i| {
                let coalescer = Arc::clone(&coalescer);
                scope.spawn(move || {
                    let row = vec![
                        Value::int(5_000 + i as i64),
                        Value::int(0),
                        Value::int(6_000_000 + i as i64),
                        Value::int(0),
                    ];
                    coalescer.apply("R", WriteFrame::new(vec![row], Vec::new())).unwrap()
                })
            })
            .collect();
        // Wait until every writer's frame is enqueued, then free the lock.
        while coalescer.stats().frames < k as u64 {
            std::thread::sleep(Duration::from_millis(1));
        }
        gate.store(true, Ordering::Release);
        holder.join().unwrap();
        let outcomes: Vec<_> = writers.into_iter().map(|w| w.join().unwrap()).collect();
        let generation = outcomes[0].generation;
        for outcome in &outcomes {
            assert_eq!(outcome.generation, generation, "all frames share one swap");
            assert_eq!(outcome.batched_with, k - 1);
        }
    });

    let stats = coalescer.stats();
    assert_eq!(stats.batches, 1, "the burst must fold into one derivation");
    assert_eq!(stats.coalesced_writes, k as u64);
    assert_eq!(stats.derivations_saved, (k - 1) as u64);

    // The subscriber paid once for the whole burst: fewer executions than writes,
    // and the single delta folds to the served answer.
    let events = manager.drain(subscribed.id);
    assert_eq!(events.len(), 1);
    let SubscriptionEvent::Delta(delta) = &events[0] else {
        panic!("expected one delta, got {events:?}");
    };
    assert_eq!(delta.added.len(), k);
    let executions = manager.stats().executions;
    assert!(
        executions - 1 < k as u64,
        "burst coalescing must re-execute less than once per write ({executions})"
    );
}

#[test]
fn burst_rounds_save_derivations_with_identical_final_answers() {
    let parallelism = Parallelism::sequential();
    let (instance, fds) = multi_chain_instance(3, 4);
    let schema = Arc::clone(instance.schema());
    let registry = SnapshotRegistry::shared();
    registry.publish(
        "R",
        EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap(),
    );
    let manager = SubscriptionManager::new(parallelism);
    manager.attach(&registry);
    let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap());
    let subscribed = manager
        .subscribe(&registry, Arc::clone(&query), FamilyKind::Global, Semantics::Certain)
        .unwrap();
    let coalescer = WriteCoalescer::new(Arc::clone(&registry), parallelism);

    let rounds = 6usize;
    let per_round = 4usize;
    let mut extra: Vec<Vec<Value>> = Vec::new();
    for round in 0..rounds {
        let frames: Vec<WriteFrame> = (0..per_round)
            .map(|i| {
                let key = (round * per_round + i) as i64;
                let row = vec![
                    Value::int(5_000 + key),
                    Value::int(0),
                    Value::int(6_000_000 + key),
                    Value::int(0),
                ];
                extra.push(row.clone());
                WriteFrame::new(vec![row], Vec::new())
            })
            .collect();
        for outcome in coalescer.apply_frames("R", frames) {
            outcome.unwrap();
        }
    }
    let writes = (rounds * per_round) as u64;
    let stats = coalescer.stats();
    assert_eq!(stats.frames, writes);
    assert_eq!(stats.batches, rounds as u64, "each round folds into one derivation");
    assert_eq!(stats.derivations_saved, writes - rounds as u64);
    let executions = manager.stats().executions - 1;
    assert!(executions < writes, "executions ({executions}) must stay below writes ({writes})");
    assert_eq!(executions, rounds as u64);

    // Fold the pushed stream and compare against a fresh build of all rows.
    let mut fold: BTreeSet<Vec<Value>> = subscribed.rows.into_iter().collect();
    fold_events(&mut fold, &manager.drain(subscribed.id), "burst rounds");
    let mut rows: Vec<Vec<Value>> =
        instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();
    rows.extend(extra);
    let fresh = EngineBuilder::new()
        .relation(RelationInstance::from_rows(schema, rows).unwrap(), fds)
        .build()
        .unwrap();
    let ground: BTreeSet<Vec<Value>> = query
        .execute_with(&fresh, FamilyKind::Global, Semantics::Certain, parallelism)
        .unwrap()
        .rows()
        .iter()
        .cloned()
        .collect();
    assert_eq!(fold, ground);
    assert_eq!(
        full_answer(&registry, &query, parallelism).into_iter().collect::<BTreeSet<_>>(),
        ground
    );
}

#[test]
fn wire_report_strategies_fold_mutate_bursts_into_one_delta() {
    let (instance, fds) = multi_chain_instance(2, 3);
    let registry = SnapshotRegistry::shared();
    registry.publish("R", EngineBuilder::new().relation(instance, fds).build().unwrap());
    let handle = serve("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    client.prepare("q", "EXISTS b,c,d . R(x,b,c,d)").unwrap();
    // `EVERY 3 QUEUE 8`: three answer-changing MUTATEs flush exactly one delta.
    let every = client
        .subscribe_with("q", FamilyKind::Global, Semantics::Certain, ReportSpec::Every(3), Some(8))
        .unwrap();
    let mut generation = 0;
    for key in ["8101", "8102", "8103"] {
        let row = vec![key.to_string(), "1".to_string(), "999999".to_string(), "0".to_string()];
        let (inserted, _, gen) = client.mutate("R", std::slice::from_ref(&row), &[]).unwrap();
        assert_eq!(inserted, 1);
        generation = gen;
    }
    let event = client.wait_event(Duration::from_secs(10)).unwrap().expect("the flushed delta");
    assert_eq!(
        event,
        PushEvent::Delta {
            sub: every.sub,
            generation,
            added: vec![
                vec!["8101".to_string()],
                vec!["8102".to_string()],
                vec!["8103".to_string()],
            ],
            removed: vec![],
        },
        "three swaps, one pushed delta"
    );
    assert_eq!(client.wait_event(Duration::from_millis(300)).unwrap(), None);

    // `COALESCE 1`: the pending delta flushes on the server's idle drain cycle.
    let coalesce = client
        .subscribe_with("q", FamilyKind::Global, Semantics::Certain, ReportSpec::Coalesce(1), None)
        .unwrap();
    let row = vec!["8104".to_string(), "1".to_string(), "999999".to_string(), "0".to_string()];
    let (_, _, generation) = client.mutate("R", std::slice::from_ref(&row), &[]).unwrap();
    let event = client.wait_event(Duration::from_secs(10)).unwrap().expect("the coalesced delta");
    assert_eq!(
        event,
        PushEvent::Delta {
            sub: coalesce.sub,
            generation,
            added: vec![vec!["8104".to_string()]],
            removed: vec![],
        }
    );

    // Observability: STATS renders the report-strategy and write-coalescing lines,
    // and the typed client accessor parses the latter.
    let stats = client.stats().unwrap();
    assert!(
        stats.lines().any(|l| l.starts_with("windows coalesced=2 windowed=0")),
        "missing windows line in {stats}"
    );
    assert!(
        stats.lines().any(|l| l.starts_with("writes frames=")),
        "missing writes line in {stats}"
    );
    let writes = client.write_stats().unwrap();
    assert!(writes.frames >= 4, "four MUTATE frames went through the coalescer: {writes:?}");
    assert!(writes.batches >= 1);

    client.unsubscribe(every.sub).unwrap();
    client.unsubscribe(coalesce.sub).unwrap();
    client.shutdown().unwrap();
    handle.wait();
}
