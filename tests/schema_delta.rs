//! Schema/constraint deltas and the columnar evaluation hot path, end to end.
//!
//! The pinned acceptance properties:
//!
//! * [`EngineSnapshot::with_fd_added`] is **bit-identical to a fresh build** with the
//!   extended FD set — conflict graph, component order and global ids, shard plans,
//!   per-family preferred repairs in enumeration order, open and closed answers
//!   (including `examined`) — at every degree of parallelism, for within-chain merges
//!   and cross-chain merges alike;
//! * an added FD that produces **no new conflict edges** takes the shared fast path:
//!   no re-partitioning, no re-enumeration, the full memo carries over;
//! * the **vectorized** columnar evaluation path answers bit-identically to the
//!   scalar interpreter — same rows, same order, same closed verdicts including
//!   `examined` — across all five families, both semantics, open and closed queries;
//! * an `ALTER` frame over the wire swaps in a delta-derived snapshot equal to a
//!   fresh build, without restarting the server.

use std::sync::Arc;

use pdqi::datagen::multi_chain_instance;
use pdqi::query::{eval_path_stats, force_scalar_eval};
use pdqi::server::{serve, Client, ServerConfig};
use pdqi::{
    EngineBuilder, EngineSnapshot, FamilyKind, FdSet, FunctionalDependency, Parallelism,
    PreparedQuery, RelationInstance, Semantics, SnapshotRegistry,
};

/// Builds one snapshot over `instance` under the given FD specs.
fn build(instance: &RelationInstance, fd_specs: &[&str]) -> EngineSnapshot {
    let fds = FdSet::parse(Arc::clone(instance.schema()), fd_specs).unwrap();
    EngineBuilder::new().relation(instance.clone(), fds).build().unwrap()
}

/// Asserts two snapshots are indistinguishable: structure, enumeration and answers.
fn assert_bit_identical(derived: &EngineSnapshot, fresh: &EngineSnapshot, context: &str) {
    assert_eq!(derived.relation_names(), fresh.relation_names(), "{context}: names");
    assert_eq!(derived.component_count(), fresh.component_count(), "{context}: components");
    for name in fresh.relation_names() {
        let d = derived.context_of(&name).unwrap();
        let f = fresh.context_of(&name).unwrap();
        assert_eq!(d.fds().len(), f.fds().len(), "{context}: {name} fd count");
        assert_eq!(d.instance().len(), f.instance().len(), "{context}: {name} tuples");
        for (id, tuple) in f.instance().iter() {
            assert_eq!(d.instance().tuple_unchecked(id), tuple, "{context}: {name} tuple {id}");
        }
        assert_eq!(d.graph().edges(), f.graph().edges(), "{context}: {name} edges");
        assert_eq!(derived.shards_of(&name), fresh.shards_of(&name), "{context}: {name} shards");
        assert_eq!(
            derived.priority_of(&name).unwrap().edges(),
            fresh.priority_of(&name).unwrap().edges(),
            "{context}: {name} priority"
        );
    }
    for kind in FamilyKind::ALL {
        // Not just the same count: the same repairs in the same enumeration order.
        assert_eq!(
            derived.preferred_repairs(kind, usize::MAX),
            fresh.preferred_repairs(kind, usize::MAX),
            "{context}: {} enumeration",
            kind.label()
        );
    }
}

/// Asserts a query answers identically (both semantics and the closed outcome,
/// including `examined`) on both snapshots, at the given parallelism.
fn assert_same_answers(
    derived: &EngineSnapshot,
    fresh: &EngineSnapshot,
    open: &PreparedQuery,
    closed: &PreparedQuery,
    parallelism: Parallelism,
    context: &str,
) {
    for kind in FamilyKind::ALL {
        for semantics in [Semantics::Certain, Semantics::Possible] {
            let d: Vec<_> =
                open.execute_with(derived, kind, semantics, parallelism).unwrap().collect();
            let f: Vec<_> = open.execute(fresh, kind, semantics).unwrap().collect();
            assert_eq!(d, f, "{context}: {} {:?}", kind.label(), semantics);
        }
        let d = closed.consistent_answer_with(derived, kind, parallelism).unwrap();
        let f = closed.consistent_answer(fresh, kind).unwrap();
        assert_eq!(d, f, "{context}: {} closed", kind.label());
    }
}

/// Adding `C -> D` to chains built under `A -> B` alone merges each chain's
/// conflict-pair components into the full path — checked bit-identical to a rebuild
/// with both FDs at parallelism 1, 2, 4 and 8.
#[test]
fn adding_an_fd_is_bit_identical_to_a_fresh_build_at_every_parallelism() {
    let (instance, _) = multi_chain_instance(4, 5);
    let fresh = build(&instance, &["A -> B", "C -> D"]);
    let added = FunctionalDependency::parse(instance.schema(), "C -> D").unwrap();

    let open = PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap();
    let closed = PreparedQuery::parse("EXISTS a,b,c,d . R(a,b,c,d) AND b > 0").unwrap();
    for workers in [1usize, 2, 4, 8] {
        let parallelism = Parallelism::threads(workers);
        let base = build(&instance, &["A -> B"]);
        // Warm every family so the carry-over machinery is exercised for all of them.
        for kind in FamilyKind::ALL {
            base.warm_components(kind, parallelism);
        }
        assert!(base.component_count() > fresh.component_count(), "the FD must merge");
        let derived = base.with_fd_added("R", added.clone(), parallelism).unwrap();
        assert_bit_identical(&derived, &fresh, &format!("{workers} workers"));
        assert_same_answers(
            &derived,
            &fresh,
            &open,
            &closed,
            parallelism,
            &format!("{workers} workers"),
        );
    }
}

/// A new FD whose LHS groups span chains (`B -> C`: every even-position tuple shares
/// `B = 0` but carries a distinct `C`) merges components **across** chains.
#[test]
fn a_cross_chain_fd_merges_components_identically_to_a_rebuild() {
    let (instance, fds) = multi_chain_instance(3, 4);
    let base = EngineBuilder::new().relation(instance.clone(), fds).build().unwrap();
    let fresh = build(&instance, &["A -> B", "C -> D", "B -> C"]);
    assert!(fresh.component_count() < base.component_count(), "chains must merge");

    let added = FunctionalDependency::parse(instance.schema(), "B -> C").unwrap();
    let (derived, report) =
        base.with_fd_added_reported("R", added, Parallelism::threads(2)).unwrap();
    assert!(report.new_edges > 0);
    assert!(!report.affected.is_empty());
    assert_bit_identical(&derived, &fresh, "cross-chain merge");
}

/// `B -> D` already holds on the chain workload (even positions pair `B = 0` with
/// `D = 1`, odd ones the reverse): adding it creates no edges, so the derivation
/// shares the graph and carries the whole memo — only the FD set grows.
#[test]
fn an_fd_without_new_edges_shares_the_graph_and_the_whole_memo() {
    let (instance, fds) = multi_chain_instance(4, 5);
    let base = EngineBuilder::new().relation(instance.clone(), fds).build().unwrap();
    for kind in FamilyKind::ALL {
        base.warm_components(kind, Parallelism::sequential());
    }

    let added = FunctionalDependency::parse(instance.schema(), "B -> D").unwrap();
    let (derived, report) =
        base.with_fd_added_reported("R", added, Parallelism::threads(4)).unwrap();
    assert_eq!(report.new_edges, 0);
    assert!(report.affected.is_empty());
    assert_eq!(report.recomputed_entries, 0);
    let ctx = derived.context_of("R").unwrap();
    assert_eq!(ctx.fds().len(), 3);
    assert!(Arc::ptr_eq(ctx.graph(), base.context_of("R").unwrap().graph()));
    // The memo came over wholesale: re-warming computes nothing new.
    for kind in FamilyKind::ALL {
        assert_eq!(derived.warm_components(kind, Parallelism::sequential()), 0, "{}", kind.label());
    }
    assert_eq!(derived.memo_stats().component_misses, 0);
    assert_bit_identical(&derived, &build(&instance, &["A -> B", "C -> D", "B -> D"]), "no-edge");
}

/// The vectorized columnar path and the scalar interpreter agree bit for bit —
/// rows, row order, and closed verdicts including `examined` — across all five
/// families, both semantics, selections and self-joins. Fresh snapshots per path so
/// the answer memo cannot mask a divergence.
#[test]
fn vectorized_and_scalar_evaluation_are_bit_identical() {
    /// Restores the pre-test path choice (e.g. a CI run under
    /// `PDQI_FORCE_SCALAR_EVAL=1`) even if an assertion panics.
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            force_scalar_eval(self.0);
        }
    }
    let _restore = Restore(pdqi::query::scalar_eval_forced());

    let (instance, fds) = multi_chain_instance(3, 4);
    let rebuild = || EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap();
    let open_queries = [
        PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap(),
        PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d) AND b > 0").unwrap(),
        // Comparison before the atom binding its variable (regression: used to panic
        // the vectorized plan compiler).
        PreparedQuery::parse("EXISTS b,c,d . b > 0 AND R(x,b,c,d)").unwrap(),
    ];
    let closed_queries = [
        PreparedQuery::parse("EXISTS a,b,c,d . R(a,b,c,d) AND b > 0").unwrap(),
        // A self-join: exercises the depth-first vectorized join, not just selection.
        PreparedQuery::parse("EXISTS a,b,c,d,a2,c2,d2 . R(a,b,c,d) AND R(a2,b,c2,d2) AND a < a2")
            .unwrap(),
    ];

    for workers in [1usize, 4] {
        let parallelism = Parallelism::threads(workers);
        for kind in FamilyKind::ALL {
            for semantics in [Semantics::Certain, Semantics::Possible] {
                for (index, open) in open_queries.iter().enumerate() {
                    force_scalar_eval(false);
                    let before = eval_path_stats().vectorized;
                    let vectorized: Vec<_> = open
                        .execute_with(&rebuild(), kind, semantics, parallelism)
                        .unwrap()
                        .collect();
                    assert!(
                        eval_path_stats().vectorized > before,
                        "query {index} must engage the vectorized path"
                    );
                    force_scalar_eval(true);
                    let scalar: Vec<_> = open
                        .execute_with(&rebuild(), kind, semantics, parallelism)
                        .unwrap()
                        .collect();
                    assert_eq!(
                        vectorized,
                        scalar,
                        "open {index}: {} {:?} at {workers} workers",
                        kind.label(),
                        semantics
                    );
                }
            }
            for (index, closed) in closed_queries.iter().enumerate() {
                force_scalar_eval(false);
                let vectorized = closed.consistent_answer_with(&rebuild(), kind, parallelism);
                force_scalar_eval(true);
                let scalar = closed.consistent_answer_with(&rebuild(), kind, parallelism);
                assert_eq!(
                    vectorized.unwrap(),
                    scalar.unwrap(),
                    "closed {index}: {} at {workers} workers",
                    kind.label()
                );
            }
        }
    }
}

/// `ALTER` over the wire: the server revises the registry through the FD-delta path
/// and the swapped-in snapshot equals a fresh build with the extended FD set.
#[test]
fn alter_over_the_wire_swaps_in_a_delta_derived_snapshot() {
    let (instance, _) = multi_chain_instance(2, 4);
    let registry = SnapshotRegistry::shared();
    registry.publish("R", build(&instance, &["A -> B"]));

    let handle = serve("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let generation = client.alter("R", "C -> D").unwrap();
    assert_eq!(generation, 2);
    let lease = registry.read("R").unwrap();
    assert_eq!(lease.generation(), 2);
    assert_bit_identical(lease.snapshot(), &build(&instance, &["A -> B", "C -> D"]), "wire alter");

    // Malformed FDs and unknown tables surface as errors without a swap.
    assert!(client.alter("R", "Nope -> B").is_err());
    assert!(client.alter("S", "A -> B").is_err());
    assert_eq!(registry.generation("R"), 2);

    client.shutdown().unwrap();
    handle.wait();
}
