//! The cost-based planner end to end.
//!
//! The pinned acceptance properties:
//!
//! * the planner path is **bit-identical to the naive fixed-strategy path** — rows,
//!   row order, and closed verdicts including `examined` — across all five repair
//!   families, both semantics, and parallelism 1, 2, 4 and 8, on fresh snapshots per
//!   path so the answer memo cannot mask a divergence;
//! * the plan cache serves repeat executions of a fingerprint and
//!   `PDQI_FORCE_NAIVE_PLAN` bypasses planning entirely (no plan is stored);
//! * snapshot derivations re-cost **only the affected fingerprints**: a priority swap
//!   drops priority-sensitive plans over touched components (`Rep` plans and plans
//!   over other relations survive), a mutation drops exactly the plans reading the
//!   mutated relation, and an FD addition drops plans over the reshaped relation only
//!   when it actually adds conflict edges.
//!
//! Every test takes the same global lock: the naive-plan switch and the planner
//! counters are process-wide, so concurrently running tests would otherwise observe
//! each other's toggles.

use std::sync::{Mutex, MutexGuard};

use pdqi::datagen::{multi_chain_instance, multi_chain_relations};
use pdqi::{
    force_naive_plan, naive_plan_forced, plan_stats, EngineBuilder, EngineSnapshot, FamilyKind,
    FunctionalDependency, Mutation, Parallelism, PreparedQuery, Priority, Semantics,
};

/// Serialises the tests in this binary: they flip the process-wide naive-plan switch
/// and read the process-wide planner counters.
static PLANNER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A panicking test must not wedge the rest of the suite.
    PLANNER_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Restores the pre-test path choice (e.g. a CI run under `PDQI_FORCE_NAIVE_PLAN=1`)
/// even if an assertion panics.
struct Restore(bool);

impl Drop for Restore {
    fn drop(&mut self) {
        force_naive_plan(self.0);
    }
}

/// A single-relation snapshot whose conflict chains carry a *partial* priority (every
/// other conflict edge oriented towards the lower tuple id), so all five families
/// produce genuinely different repair sets.
fn prioritised_snapshot() -> EngineSnapshot {
    let (instance, fds) = multi_chain_instance(3, 4);
    let base = EngineBuilder::new().relation(instance, fds).build().unwrap();
    let pairs: Vec<_> = base
        .graph()
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, &(a, b))| (a, b))
        .collect();
    assert!(!pairs.is_empty(), "the chain workload must conflict");
    base.with_priority_pairs(&pairs).unwrap()
}

/// Open queries spanning the planner's decision space: a single scan, a selection, a
/// two-atom self-join, and a three-atom join whose order the cost model gets to pick.
fn open_queries() -> Vec<PreparedQuery> {
    [
        "EXISTS b,c,d . R(x,b,c,d)",
        "EXISTS b,c,d . R(x,b,c,d) AND b > 0",
        "EXISTS b,c,d,a2,c2,d2 . R(x,b,c,d) AND R(a2,b,c2,d2) AND a2 > x",
        "EXISTS a,c,d,a2,c2,d2,a3,c3,d3 . R(a,x,c,d) AND R(a2,x,c2,d2) AND R(a3,x,c3,d3) \
         AND a < a2 AND a2 < a3",
    ]
    .map(|text| PreparedQuery::parse(text).unwrap())
    .into_iter()
    .collect()
}

/// Closed queries: a selective existence check, a self-join, and a certainly-false
/// query whose early exit makes `examined` sensitive to evaluation order.
fn closed_queries() -> Vec<PreparedQuery> {
    [
        "EXISTS a,b,c,d . R(a,b,c,d) AND b > 0",
        "EXISTS a,b,c,d,a2,c2,d2 . R(a,b,c,d) AND R(a2,b,c2,d2) AND a < a2",
        "EXISTS a,b,c,d . R(a,b,c,d) AND b > 5",
    ]
    .map(|text| PreparedQuery::parse(text).unwrap())
    .into_iter()
    .collect()
}

/// The differential suite: the cost-based planner must be indistinguishable from the
/// naive fixed-strategy path — same rows in the same order for open queries under both
/// semantics, same closed verdicts including `examined` — for every family at
/// parallelism 1, 2, 4 and 8. Each path runs on its own cold snapshot so nothing is
/// served from a memo the other path populated.
#[test]
fn planner_and_naive_paths_are_bit_identical() {
    let _guard = lock();
    let _restore = Restore(naive_plan_forced());

    let open = open_queries();
    let closed = closed_queries();
    for workers in [1usize, 2, 4, 8] {
        let parallelism = Parallelism::threads(workers);
        force_naive_plan(true);
        let naive_snapshot = prioritised_snapshot();
        force_naive_plan(false);
        let planned_snapshot = prioritised_snapshot();
        for kind in FamilyKind::ALL {
            for query in &open {
                for semantics in [Semantics::Certain, Semantics::Possible] {
                    force_naive_plan(true);
                    let naive: Vec<_> = query
                        .execute_with(&naive_snapshot, kind, semantics, parallelism)
                        .unwrap()
                        .collect();
                    force_naive_plan(false);
                    let planned: Vec<_> = query
                        .execute_with(&planned_snapshot, kind, semantics, parallelism)
                        .unwrap()
                        .collect();
                    assert_eq!(
                        planned,
                        naive,
                        "{} {:?} workers={workers} `{}`",
                        kind.label(),
                        semantics,
                        query.source().unwrap_or("?"),
                    );
                }
            }
            for query in &closed {
                force_naive_plan(true);
                let naive = query.consistent_answer_with(&naive_snapshot, kind, parallelism);
                force_naive_plan(false);
                let planned = query.consistent_answer_with(&planned_snapshot, kind, parallelism);
                // `assert_eq!` on `CqaOutcome` covers `examined` too.
                assert_eq!(
                    planned.unwrap(),
                    naive.unwrap(),
                    "{} closed workers={workers} `{}`",
                    kind.label(),
                    query.source().unwrap_or("?"),
                );
            }
        }
    }
}

/// The plan cache serves repeat plans of one fingerprint: the first execution plans
/// and stores, a second execution under the other semantics (same `(fingerprint,
/// family)` key, different answer-memo key) hits the cached plan instead of
/// re-costing.
#[test]
fn repeat_executions_hit_the_plan_cache() {
    let _guard = lock();
    let _restore = Restore(naive_plan_forced());
    force_naive_plan(false);

    let snapshot = prioritised_snapshot();
    let query =
        PreparedQuery::parse("EXISTS b,c,d,a2,c2,d2 . R(x,b,c,d) AND R(a2,b,c2,d2) AND a2 > x")
            .unwrap();
    assert!(!snapshot.has_cached_plan(query.fingerprint(), FamilyKind::Global));

    let before = plan_stats();
    query
        .execute_with(&snapshot, FamilyKind::Global, Semantics::Certain, Parallelism::threads(2))
        .unwrap();
    let after_first = plan_stats();
    assert!(after_first.planned > before.planned, "the first execution must plan");
    assert!(snapshot.has_cached_plan(query.fingerprint(), FamilyKind::Global));

    // Possible-semantics answers memoise under a different key, so this execution
    // reaches the planner again — and must be served from the plan cache.
    query
        .execute_with(&snapshot, FamilyKind::Global, Semantics::Possible, Parallelism::threads(2))
        .unwrap();
    let after_second = plan_stats();
    assert_eq!(after_second.planned, after_first.planned, "no re-costing on a warm cache");
    assert!(after_second.cache_hits > after_first.cache_hits);
}

/// `PDQI_FORCE_NAIVE_PLAN` bypasses the planner: executions are counted as naive and
/// no plan is stored in the snapshot's cache.
#[test]
fn the_naive_switch_bypasses_planning_entirely() {
    let _guard = lock();
    let _restore = Restore(naive_plan_forced());
    force_naive_plan(true);

    let snapshot = prioritised_snapshot();
    let query = PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d) AND b > 0").unwrap();
    let before = plan_stats();
    query.execute(&snapshot, FamilyKind::SemiGlobal, Semantics::Certain).unwrap();
    let after = plan_stats();
    assert!(after.naive > before.naive, "the naive path must be counted");
    assert_eq!(after.planned, before.planned, "no planning under the switch");
    assert!(!snapshot.has_cached_plan(query.fingerprint(), FamilyKind::SemiGlobal));
    assert_eq!(snapshot.cached_plan_count(), 0);
}

/// A two-relation snapshot with one query per relation, both executed (and therefore
/// planned) under the given family — plus, optionally, extra families for `R0`.
fn two_relation_fixture(
    families_for_r0: &[FamilyKind],
) -> (EngineSnapshot, PreparedQuery, PreparedQuery) {
    let relations = multi_chain_relations(2, 3, 5);
    let mut builder = EngineBuilder::new();
    for (instance, fds) in &relations {
        builder = builder.relation(instance.clone(), fds.clone());
    }
    let snapshot = builder.build().unwrap();
    let q0 = PreparedQuery::parse("EXISTS b,c,d . R0(x,b,c,d) AND b > 0").unwrap();
    let q1 = PreparedQuery::parse("EXISTS b,c,d . R1(x,b,c,d) AND b > 0").unwrap();
    for &kind in families_for_r0 {
        q0.execute(&snapshot, kind, Semantics::Certain).unwrap();
    }
    q1.execute(&snapshot, FamilyKind::Global, Semantics::Certain).unwrap();
    (snapshot, q0, q1)
}

/// A priority swap re-costs only the affected fingerprints: plans over the revised
/// relation are dropped for priority-sensitive families, while `Rep` plans (priority
/// cannot change which repairs exist) and plans over the untouched relation carry.
#[test]
fn a_priority_swap_drops_only_priority_sensitive_plans_over_the_revised_relation() {
    let _guard = lock();
    let _restore = Restore(naive_plan_forced());
    force_naive_plan(false);

    let (snapshot, q0, q1) = two_relation_fixture(&[FamilyKind::Global, FamilyKind::Rep]);
    assert!(snapshot.has_cached_plan(q0.fingerprint(), FamilyKind::Global));
    assert!(snapshot.has_cached_plan(q0.fingerprint(), FamilyKind::Rep));
    assert!(snapshot.has_cached_plan(q1.fingerprint(), FamilyKind::Global));

    // Orient one conflict edge of R0: a real priority change touching one component.
    let graph = std::sync::Arc::clone(snapshot.context_of("R0").unwrap().graph());
    let &(winner, loser) = graph.edges().first().expect("R0 must conflict");
    let priority = Priority::from_pairs(graph, &[(winner, loser)]).unwrap();
    let (derived, affected) = snapshot.with_priority_reported_for("R0", priority).unwrap();
    assert!(!affected.is_empty());

    assert!(
        !derived.has_cached_plan(q0.fingerprint(), FamilyKind::Global),
        "the G-Rep plan over the revised relation must be re-costed"
    );
    assert!(
        derived.has_cached_plan(q0.fingerprint(), FamilyKind::Rep),
        "Rep plans are priority-insensitive and must carry"
    );
    assert!(
        derived.has_cached_plan(q1.fingerprint(), FamilyKind::Global),
        "plans over the untouched relation must carry"
    );
    assert_eq!(derived.cached_plan_count(), snapshot.cached_plan_count() - 1);
}

/// A mutation re-costs exactly the plans reading the mutated relation — including
/// `Rep` plans, whose cardinalities the row change shifts — and carries the rest with
/// their component dependencies remapped.
#[test]
fn a_mutation_drops_only_plans_reading_the_mutated_relation() {
    let _guard = lock();
    let _restore = Restore(naive_plan_forced());
    force_naive_plan(false);

    let (snapshot, q0, q1) = two_relation_fixture(&[FamilyKind::Global, FamilyKind::Rep]);
    // Delete the middle tuple of R0's first chain: its component splits, so R1's
    // global component ids shift — the carried plan must survive the remap.
    let victim = snapshot
        .context_of("R0")
        .unwrap()
        .instance()
        .tuple_unchecked(pdqi::TupleId(2))
        .values()
        .to_vec();
    let mutation = Mutation::new().delete("R0", victim);
    let derived = snapshot.with_mutations(&mutation, Parallelism::threads(2)).unwrap();
    assert_eq!(derived.component_count(), snapshot.component_count() + 1);

    assert!(!derived.has_cached_plan(q0.fingerprint(), FamilyKind::Global));
    assert!(!derived.has_cached_plan(q0.fingerprint(), FamilyKind::Rep));
    assert!(
        derived.has_cached_plan(q1.fingerprint(), FamilyKind::Global),
        "plans over the untouched relation must carry across the id remap"
    );
    assert_eq!(derived.cached_plan_count(), snapshot.cached_plan_count() - 2);

    // Re-executing the invalidated fingerprint re-plans and re-populates the cache.
    let before = plan_stats();
    q0.execute(&derived, FamilyKind::Global, Semantics::Certain).unwrap();
    assert!(plan_stats().planned > before.planned);
    assert!(derived.has_cached_plan(q0.fingerprint(), FamilyKind::Global));
}

/// An FD addition re-costs plans over the reshaped relation only when it actually adds
/// conflict edges; an FD the data already satisfies carries every plan.
#[test]
fn an_fd_addition_drops_plans_only_when_it_adds_conflict_edges() {
    let _guard = lock();
    let _restore = Restore(naive_plan_forced());
    force_naive_plan(false);

    let (snapshot, q0, q1) = two_relation_fixture(&[FamilyKind::Global]);
    let schema = snapshot.context_of("R0").unwrap().instance().schema().clone();

    // `B -> D` already holds on the chain workload: no new edges, everything carries.
    let held = FunctionalDependency::parse(&schema, "B -> D").unwrap();
    let derived = snapshot.with_fd_added("R0", held, Parallelism::threads(2)).unwrap();
    assert_eq!(derived.cached_plan_count(), snapshot.cached_plan_count());
    assert!(derived.has_cached_plan(q0.fingerprint(), FamilyKind::Global));

    // `B -> C` conflicts across chains: new edges reshape R0, so its plans re-cost
    // while R1's carry.
    let merging = FunctionalDependency::parse(&schema, "B -> C").unwrap();
    let (derived, report) =
        snapshot.with_fd_added_reported("R0", merging, Parallelism::threads(2)).unwrap();
    assert!(report.new_edges > 0, "the merging FD must add edges");
    assert!(!derived.has_cached_plan(q0.fingerprint(), FamilyKind::Global));
    assert!(derived.has_cached_plan(q1.fingerprint(), FamilyKind::Global));
    assert_eq!(derived.cached_plan_count(), snapshot.cached_plan_count() - 1);
}

/// The rendered plan is deterministic for a given snapshot and query: planning twice
/// from cold yields byte-identical reports up to the actuals, and the report names the
/// query, the family, and both the estimated and the actual cardinalities.
#[test]
fn explain_reports_are_deterministic_and_name_estimates_and_actuals() {
    let _guard = lock();
    let _restore = Restore(naive_plan_forced());
    force_naive_plan(false);

    let query = PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d) AND b > 0").unwrap();
    let first = query
        .explain(
            &prioritised_snapshot(),
            FamilyKind::Global,
            Semantics::Certain,
            Parallelism::threads(2),
        )
        .unwrap();
    let second = query
        .explain(
            &prioritised_snapshot(),
            FamilyKind::Global,
            Semantics::Certain,
            Parallelism::threads(2),
        )
        .unwrap();
    assert_eq!(first, second, "cold plans must be deterministic");
    assert!(first.starts_with("plan family=G-Rep"), "{first}");
    assert!(first.contains("est_cost="), "{first}");
    assert!(first.contains("actual product="), "{first}");
    assert!(first.contains("rows="), "{first}");
}
