//! Degenerate and extreme inputs across the public API: empty instances, already
//! consistent instances, a single tuple, complete conflict graphs (every tuple fights
//! every other), and the interaction of each with priorities, families, consistent
//! answers and aggregates.

use std::sync::Arc;

use pdqi::aggregate::{range_by_enumeration, range_closed_form, AggregateFunction, AggregateQuery};
use pdqi::core::cqa::preferred_consistent_answer;
use pdqi::core::properties::{check_p1, check_p3};
use pdqi::priority::total_extensions;
use pdqi::{
    parse_formula, EngineBuilder, FamilyKind, FdSet, RelationInstance, RelationSchema,
    RepairContext, TupleId, TupleSet, Value, ValueType,
};

fn schema() -> Arc<RelationSchema> {
    Arc::new(
        RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap(),
    )
}

fn context(rows: &[(i64, i64)]) -> RepairContext {
    let instance = RelationInstance::from_rows(
        schema(),
        rows.iter().map(|&(a, b)| vec![Value::int(a), Value::int(b)]).collect(),
    )
    .unwrap();
    let fds = FdSet::parse(schema(), &["A -> B"]).unwrap();
    RepairContext::new(instance, fds)
}

#[test]
fn the_empty_instance_has_exactly_the_empty_repair() {
    let ctx = context(&[]);
    assert!(ctx.is_consistent());
    assert_eq!(ctx.count_repairs(), 1);
    assert_eq!(ctx.repairs(10), vec![TupleSet::new()]);
    let empty_priority = ctx.empty_priority();
    for kind in FamilyKind::ALL {
        let family = kind.family();
        assert!(check_p1(family.as_ref(), &ctx, &empty_priority), "{}", kind.label());
        assert_eq!(family.preferred_repairs(&ctx, &empty_priority, 10), vec![TupleSet::new()]);
    }
    // A closed query over the empty instance: an existential is false, its negation true.
    let exists = parse_formula("EXISTS x, y . R(x, y)").unwrap();
    let outcome = preferred_consistent_answer(
        &ctx,
        &empty_priority,
        FamilyKind::Rep.family().as_ref(),
        &exists,
    )
    .unwrap();
    assert!(outcome.certainly_false);
    // Aggregates: COUNT is exactly zero, MIN/MAX/AVG are undefined.
    let count = range_by_enumeration(
        &ctx,
        &empty_priority,
        FamilyKind::Rep.family().as_ref(),
        &AggregateQuery::count(),
    );
    assert_eq!((count.glb, count.lub), (Some(0.0), Some(0.0)));
    let min = AggregateQuery::over(ctx.instance().schema(), AggregateFunction::Min, "B").unwrap();
    let min_range =
        range_by_enumeration(&ctx, &empty_priority, FamilyKind::Rep.family().as_ref(), &min);
    assert!(min_range.undefined_somewhere);
    assert_eq!(min_range.glb, None);
}

#[test]
fn a_consistent_instance_is_its_own_unique_repair_for_every_family() {
    let ctx = context(&[(1, 1), (2, 2), (3, 3)]);
    assert!(ctx.is_consistent());
    let empty_priority = ctx.empty_priority();
    for kind in FamilyKind::ALL {
        let family = kind.family();
        let preferred = family.preferred_repairs(&ctx, &empty_priority, 10);
        assert_eq!(preferred, vec![ctx.instance().all_ids()], "{}", kind.label());
        // P4 holds vacuously: the empty priority is already total (no conflict edges).
        assert!(empty_priority.is_total());
    }
    // Every query has a determined answer.
    let q = parse_formula("EXISTS x . R(x, 2)").unwrap();
    let outcome = preferred_consistent_answer(
        &ctx,
        &empty_priority,
        FamilyKind::Global.family().as_ref(),
        &q,
    )
    .unwrap();
    assert!(outcome.certainly_true && !outcome.certainly_false);
}

#[test]
fn a_single_tuple_survives_everything() {
    let ctx = context(&[(7, 7)]);
    let snapshot =
        EngineBuilder::new().relation(ctx.instance().clone(), ctx.fds().clone()).build().unwrap();
    assert!(snapshot.is_consistent());
    assert_eq!(snapshot.count_repairs(), 1);
    assert_eq!(snapshot.clean().unwrap(), TupleSet::from_ids([TupleId(0)]));
    let sum =
        AggregateQuery::over(snapshot.context().instance().schema(), AggregateFunction::Sum, "B")
            .unwrap();
    let range = range_closed_form(snapshot.context(), &sum).unwrap();
    assert!(range.is_exact());
    assert_eq!(range.glb, Some(7.0));
}

#[test]
fn a_complete_conflict_graph_yields_singleton_repairs() {
    // Ten tuples all sharing the key: the conflict graph is complete, every repair is a
    // single tuple, and a total priority singles out the unique undominated tuple.
    let rows: Vec<(i64, i64)> = (0..10).map(|i| (1, i)).collect();
    let ctx = context(&rows);
    assert_eq!(ctx.count_repairs(), 10);
    for repair in ctx.repairs(20) {
        assert_eq!(repair.len(), 1);
    }
    // Scores induce a total priority on the clique; the best-scored tuple wins under
    // every preference-respecting family.
    let scores: Vec<i64> = (0..10).collect();
    let snapshot = EngineBuilder::new()
        .relation(ctx.instance().clone(), ctx.fds().clone())
        .priority_from_scores(&scores)
        .build()
        .unwrap();
    assert!(snapshot.priority().is_total());
    for kind in [FamilyKind::SemiGlobal, FamilyKind::Global, FamilyKind::Common] {
        let preferred = snapshot.preferred_repairs(kind, 10);
        assert_eq!(preferred, vec![TupleSet::from_ids([TupleId(9)])], "{}", kind.label());
    }
    assert_eq!(snapshot.clean().unwrap(), TupleSet::from_ids([TupleId(9)]));
}

#[test]
fn total_extension_enumeration_respects_limits_and_acyclicity() {
    let ctx = context(&[(1, 0), (1, 1), (2, 0), (2, 1)]);
    let empty = ctx.empty_priority();
    let extensions = total_extensions(&empty, 10);
    assert!(!extensions.is_empty());
    assert!(extensions.len() <= 10);
    for extension in &extensions {
        assert!(extension.is_total());
        assert!(extension.check_acyclic());
        assert!(extension.is_extension_of(&empty));
    }
}

#[test]
fn duplicate_rows_collapse_before_any_conflict_is_computed() {
    // The same row inserted twice is one tuple (set semantics), so it conflicts with
    // nothing and the instance stays consistent.
    let ctx = context(&[(1, 1), (1, 1), (1, 1)]);
    assert_eq!(ctx.instance().len(), 1);
    assert!(ctx.is_consistent());
}

#[test]
fn p3_holds_for_every_family_on_every_fixture() {
    for rows in [
        vec![(1, 1), (1, 2)],
        vec![(1, 1), (1, 2), (1, 3), (2, 1), (2, 2)],
        vec![(5, 0), (5, 1), (6, 0), (6, 1), (7, 9)],
    ] {
        let ctx = context(&rows);
        for kind in FamilyKind::ALL {
            assert!(check_p3(kind.family().as_ref(), &ctx), "{}", kind.label());
        }
    }
}

#[test]
fn queries_mentioning_absent_constants_are_certainly_false() {
    let ctx = context(&[(1, 1), (1, 2)]);
    let q = parse_formula("EXISTS x . R(999, x)").unwrap();
    for kind in FamilyKind::ALL {
        let outcome =
            preferred_consistent_answer(&ctx, &ctx.empty_priority(), kind.family().as_ref(), &q)
                .unwrap();
        assert!(outcome.certainly_false, "{}", kind.label());
    }
}
