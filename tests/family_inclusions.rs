//! Property-based tests for the relationships between the preferred-repair families:
//! the inclusion chain C-Rep ⊆ G-Rep ⊆ S-Rep ⊆ L-Rep ⊆ Rep (Prop. 3, 4, 6), the
//! single-dependency coincidences, and Theorem 2's coincidence condition.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::datagen::{
    duplicate_instance, example4_instance, random_conflict_instance, random_priority,
};
use pdqi::priority::has_cyclic_extension;
use pdqi::{FamilyKind, RepairContext, TupleSet};

fn preferred(ctx: &RepairContext, priority: &pdqi::Priority, kind: FamilyKind) -> Vec<TupleSet> {
    kind.family().preferred_repairs(ctx, priority, 10_000)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The inclusion chain holds on random instances and random partial priorities.
    #[test]
    fn inclusion_chain_holds(seed in 0u64..1_000, n in 4usize..12, completeness in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, fds) = random_conflict_instance(n, 0.8, &mut rng);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_priority(Arc::clone(ctx.graph()), completeness, &mut rng);
        let rep = preferred(&ctx, &priority, FamilyKind::Rep);
        let local = preferred(&ctx, &priority, FamilyKind::Local);
        let semi = preferred(&ctx, &priority, FamilyKind::SemiGlobal);
        let global = preferred(&ctx, &priority, FamilyKind::Global);
        let common = preferred(&ctx, &priority, FamilyKind::Common);
        for set in &local {
            prop_assert!(rep.contains(set), "L-Rep ⊄ Rep");
        }
        for set in &semi {
            prop_assert!(local.contains(set), "S-Rep ⊄ L-Rep");
        }
        for set in &global {
            prop_assert!(semi.contains(set), "G-Rep ⊄ S-Rep");
        }
        for set in &common {
            prop_assert!(global.contains(set), "C-Rep ⊄ G-Rep (Prop. 6)");
        }
        // Theorem 1: there is a repair common to every monotone family of globally
        // optimal repairs — in particular C-Rep is never empty.
        prop_assert!(!common.is_empty());
    }

    /// Prop. 3: for a single key dependency L-Rep and S-Rep coincide (Example 4's shape
    /// is a key relation: A is a key of R(A,B) under A → B).
    #[test]
    fn l_and_s_coincide_for_one_key_dependency(seed in 0u64..1_000, n in 1usize..6, completeness in 0.0f64..1.0) {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        let mut rng = StdRng::seed_from_u64(seed);
        let priority = random_priority(Arc::clone(ctx.graph()), completeness, &mut rng);
        prop_assert_eq!(
            preferred(&ctx, &priority, FamilyKind::Local),
            preferred(&ctx, &priority, FamilyKind::SemiGlobal)
        );
    }

    /// Prop. 4: for a single functional dependency S-Rep and G-Rep coincide (the
    /// duplicate-heavy instances have the one non-key FD A → B).
    #[test]
    fn s_and_g_coincide_for_one_functional_dependency(
        seed in 0u64..1_000,
        groups in 1usize..4,
        duplicates in 1usize..4,
        completeness in 0.0f64..1.0,
    ) {
        let (instance, fds) = duplicate_instance(groups, duplicates);
        let ctx = RepairContext::new(instance, fds);
        let mut rng = StdRng::seed_from_u64(seed);
        let priority = random_priority(Arc::clone(ctx.graph()), completeness, &mut rng);
        prop_assert_eq!(
            preferred(&ctx, &priority, FamilyKind::SemiGlobal),
            preferred(&ctx, &priority, FamilyKind::Global)
        );
    }

    /// Theorem 2: C-Rep and G-Rep coincide whenever the priority cannot be extended to a
    /// cyclic orientation of the conflict graph.
    #[test]
    fn c_and_g_coincide_when_no_cyclic_extension_exists(seed in 0u64..1_000, n in 4usize..10, completeness in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, fds) = random_conflict_instance(n, 0.8, &mut rng);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_priority(Arc::clone(ctx.graph()), completeness, &mut rng);
        if !has_cyclic_extension(&priority) {
            prop_assert_eq!(
                preferred(&ctx, &priority, FamilyKind::Common),
                preferred(&ctx, &priority, FamilyKind::Global)
            );
        }
    }

    /// X-repair checking agrees with enumeration for every family (membership and
    /// enumeration are implemented independently for C-Rep, so this is a real cross-check).
    #[test]
    fn membership_agrees_with_enumeration(seed in 0u64..1_000, n in 4usize..10, completeness in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, fds) = random_conflict_instance(n, 0.8, &mut rng);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_priority(Arc::clone(ctx.graph()), completeness, &mut rng);
        let repairs = ctx.repairs(10_000);
        for kind in FamilyKind::ALL {
            let family = kind.family();
            let enumerated = family.preferred_repairs(&ctx, &priority, 10_000);
            for repair in &repairs {
                prop_assert_eq!(
                    enumerated.contains(repair),
                    family.is_preferred(&ctx, &priority, repair),
                    "membership / enumeration disagreement for {}",
                    kind.label()
                );
            }
        }
    }
}
