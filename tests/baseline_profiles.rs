//! Section 5 of the paper characterises the related approaches by which of the desirable
//! properties P1–P4 they satisfy. This suite replays those claims against our
//! implementations of the baselines, on randomized instances, using the same property
//! checkers that validate the paper's own families.

use std::ops::ControlFlow;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pdqi::baselines::{
    grosof_resolution, LevelAssignment, NumericLevelFamily, PreferredSubtheories, RepairConstraint,
    RepairConstraintFamily, RepairRankingFamily, Stratification,
};
use pdqi::core::properties::{check_p1, check_p3, check_p4};
use pdqi::core::RepairFamily;
use pdqi::datagen::random_conflict_instance;
use pdqi::priority::random_total_extension;
use pdqi::{FdSet, RelationInstance, RelationSchema, RepairContext, TupleSet, Value, ValueType};

/// A pool of modest random instances with a non-trivial conflict structure.
fn random_contexts(seed: u64, count: usize) -> Vec<RepairContext> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let tuples = rng.gen_range(6..14);
            let (instance, fds) = random_conflict_instance(tuples, 0.4, &mut rng);
            RepairContext::new(instance, fds)
        })
        .filter(|ctx| !ctx.is_consistent())
        .collect()
}

#[test]
fn numeric_levels_satisfy_p1_and_p4_but_not_p3_for_informative_levels() {
    let mut rng = StdRng::seed_from_u64(7);
    for ctx in random_contexts(7, 8) {
        let n = ctx.instance().len();
        // Strictly decreasing levels: the induced priority is total, so the semantics
        // behaves like G-Rep under a total priority — non-empty and categorical.
        let strict = NumericLevelFamily::new(LevelAssignment::new(
            (0..n as u64).rev().map(|l| l + 1).collect(),
        ));
        let empty = ctx.empty_priority();
        assert!(check_p1(&strict, &ctx, &empty));
        assert_eq!(strict.preferred_repairs(&ctx, &empty, 2).len(), 1);
        // Uniform levels carry no information: every repair is selected (P3-like), and
        // with several repairs categoricity necessarily fails.
        let uniform = NumericLevelFamily::new(LevelAssignment::uniform(n));
        assert!(check_p3(&uniform, &ctx));
        if ctx.count_repairs() > 1 {
            assert!(uniform.preferred_repairs(&ctx, &empty, 3).len() > 1);
        }
        // But informative levels break P3: the no-priority behaviour of the paper's
        // framework cannot be recovered once levels are attached to the facts.
        if ctx.count_repairs() > 1 {
            assert!(!check_p3(&strict, &ctx));
        }
        let _ = rng.gen::<u64>();
    }
}

#[test]
fn numeric_levels_cannot_express_per_constraint_priorities() {
    // Section 5's critique of [9] on the Example 7 shape: three tuples share a key, the
    // user orients ta ≻ tb and tb ≻ tc but wants to stay neutral on the ta–tc conflict.
    // No level assignment produces exactly that priority. Every priority the levels *can*
    // produce, on the other hand, is accepted by the representability test.
    let schema = Arc::new(
        RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec![Value::int(1), Value::int(1)],
            vec![Value::int(1), Value::int(2)],
            vec![Value::int(1), Value::int(3)],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
    let ctx = RepairContext::new(instance, fds);
    let (ta, tb, tc) = (pdqi::TupleId(0), pdqi::TupleId(1), pdqi::TupleId(2));
    let partial = ctx.priority_from_pairs(&[(ta, tb), (tb, tc)]).unwrap();
    assert!(!pdqi::baselines::numeric::is_level_representable(&partial));
    for levels in [vec![0, 0, 0], vec![3, 2, 1], vec![2, 2, 1]] {
        let induced =
            LevelAssignment::new(levels).induced_priority(std::sync::Arc::clone(ctx.graph()));
        assert!(pdqi::baselines::numeric::is_level_representable(&induced));
    }
}

#[test]
fn preferred_subtheories_satisfy_p1_p3_and_select_only_repairs() {
    let mut rng = StdRng::seed_from_u64(23);
    for ctx in random_contexts(23, 8) {
        let n = ctx.instance().len();
        let strata: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let family = PreferredSubtheories::new(Stratification::new(strata));
        let empty = ctx.empty_priority();
        assert!(check_p1(&family, &ctx, &empty));
        for subtheory in family.preferred_repairs(&ctx, &empty, usize::MAX) {
            assert!(ctx.is_repair(&subtheory));
        }
        // The flat stratification is non-discriminating (P3).
        let flat = PreferredSubtheories::new(Stratification::flat(n));
        assert!(check_p3(&flat, &ctx));
    }
}

#[test]
fn grosof_removal_is_unique_but_loses_information_without_full_priorities() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut saw_information_loss = false;
    for ctx in random_contexts(41, 10) {
        // With the empty priority the construction keeps only conflict-free tuples.
        let empty = ctx.empty_priority();
        let outcome = grosof_resolution(ctx.graph(), &empty);
        assert_eq!(outcome.kept, ctx.graph().isolated_vertices());
        if ctx.count_repairs() > 1 {
            assert!(!outcome.is_repair(ctx.graph()));
            saw_information_loss = true;
        }
        // With a total priority the construction coincides with Algorithm 1's unique
        // repair, so no information is lost.
        let total = random_total_extension(&empty, &mut rng);
        let resolved = grosof_resolution(ctx.graph(), &total);
        assert!(resolved.is_repair(ctx.graph()));
        assert_eq!(resolved.information_loss(), 0);
        assert!(check_p4(&pdqi::core::families::CommonOptimal, &ctx, &total));
    }
    assert!(saw_information_loss);
}

#[test]
fn repair_ranking_always_selects_a_repair_and_ignores_the_priority() {
    let mut rng = StdRng::seed_from_u64(59);
    for ctx in random_contexts(59, 8) {
        let n = ctx.instance().len();
        let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(-5..20)).collect();
        let family = RepairRankingFamily::new(weights);
        let empty = ctx.empty_priority();
        assert!(check_p1(&family, &ctx, &empty));
        // The selected repairs are exactly the rank maximisers.
        let best = family.max_rank(&ctx);
        for repair in family.preferred_repairs(&ctx, &empty, usize::MAX) {
            assert!(ctx.is_repair(&repair));
            assert_eq!(family.rank(&repair), best);
        }
        // Ignoring the priority: the selection under a total priority is identical.
        let total = random_total_extension(&empty, &mut rng);
        assert_eq!(
            family.preferred_repairs(&ctx, &empty, usize::MAX),
            family.preferred_repairs(&ctx, &total, usize::MAX)
        );
    }
}

#[test]
fn repair_constraints_are_monotone_but_can_select_nothing() {
    // Random part: adding constraints never enlarges the selection (the P2 analogue).
    let mut rng = StdRng::seed_from_u64(73);
    for ctx in random_contexts(73, 8) {
        let all = ctx.instance().all_ids();
        let ids: Vec<_> = all.iter().collect();
        let mut family = RepairConstraintFamily::default();
        let empty = ctx.empty_priority();
        let mut previous = family.preferred_repairs(&ctx, &empty, usize::MAX);
        for _ in 0..4 {
            let a = ids[rng.gen_range(0..ids.len())];
            let b = ids[rng.gen_range(0..ids.len())];
            family.add(RepairConstraint::new(TupleSet::from_ids([a]), TupleSet::from_ids([b])));
            let current = family.preferred_repairs(&ctx, &empty, usize::MAX);
            assert!(current.iter().all(|r| previous.contains(r)));
            previous = current;
        }
    }

    // Deterministic part: a contradictory pair of constraints over one conflicting pair
    // of tuples selects nothing (P1 fails), and the weakening of [12] restores P1.
    let schema = Arc::new(
        RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![vec![Value::int(1), Value::int(1)], vec![Value::int(1), Value::int(2)]],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
    let ctx = RepairContext::new(instance, fds);
    let family = RepairConstraintFamily::new(vec![
        RepairConstraint::new(
            TupleSet::from_ids([pdqi::TupleId(0)]),
            TupleSet::from_ids([pdqi::TupleId(1)]),
        ),
        RepairConstraint::new(
            TupleSet::from_ids([pdqi::TupleId(1)]),
            TupleSet::from_ids([pdqi::TupleId(0)]),
        ),
    ]);
    let empty = ctx.empty_priority();
    assert!(!check_p1(&family, &ctx, &empty));
    let (weakened, dropped) = family.weakened(&ctx);
    assert_eq!(dropped, 1);
    assert!(check_p1(&weakened, &ctx, &empty));
}

#[test]
fn every_baseline_family_agrees_with_exhaustive_filtering() {
    // The `for_each_preferred` fast paths must agree with membership-by-definition.
    let mut rng = StdRng::seed_from_u64(97);
    for ctx in random_contexts(97, 5) {
        let n = ctx.instance().len();
        let levels: Vec<u64> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(0..5)).collect();
        let strata: Vec<usize> = levels.iter().map(|&l| 2 - l as usize).collect();
        let families: Vec<Box<dyn RepairFamily>> = vec![
            Box::new(NumericLevelFamily::new(LevelAssignment::new(levels))),
            Box::new(PreferredSubtheories::new(Stratification::new(strata))),
            Box::new(RepairRankingFamily::new(weights)),
            Box::new(RepairConstraintFamily::default()),
        ];
        let empty = ctx.empty_priority();
        for family in &families {
            let enumerated = family.preferred_repairs(&ctx, &empty, usize::MAX);
            let mut filtered = Vec::new();
            ctx.for_each_repair(|repair| {
                if family.is_preferred(&ctx, &empty, repair) {
                    filtered.push(repair.clone());
                }
                ControlFlow::Continue(())
            });
            let key = |s: &TupleSet| s.iter().map(|t| t.0).collect::<Vec<_>>();
            let mut enumerated = enumerated;
            enumerated.sort_by_key(key);
            filtered.sort_by_key(key);
            assert_eq!(enumerated, filtered, "family {} disagrees", family.name());
        }
    }
}
