//! Integration tests for the prepared-query engine API: `EngineBuilder`,
//! `EngineSnapshot`, `PreparedQuery` and the snapshot memo. Covers the contracts the
//! redesign promises: snapshot immutability, derivation-equals-fresh-build under
//! `with_priority`, prepared-query reuse across snapshots and families, and the
//! no-repeat-enumeration guarantee of the memo.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::datagen::{random_conflict_instance, random_priority};
use pdqi::{
    EngineBuilder, EngineSnapshot, FamilyKind, FdSet, PreparedQuery, RelationInstance,
    RelationSchema, Semantics, TupleId, Value, ValueType,
};

/// The paper's Example 1 instance with its two key dependencies.
fn example1() -> (RelationInstance, FdSet) {
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
        .unwrap();
    (instance, fds)
}

fn example1_snapshot() -> EngineSnapshot {
    let (instance, fds) = example1();
    EngineBuilder::new().relation(instance, fds).build().unwrap()
}

const Q2: &str = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2";

#[test]
fn snapshots_are_immutable_and_cheap_to_share() {
    let snapshot = example1_snapshot();
    let clone = snapshot.clone();
    // Clones share everything, including the conflict graph and the memo.
    assert!(Arc::ptr_eq(snapshot.graph(), clone.graph()));
    clone.preferred_repairs(FamilyKind::Local, usize::MAX);
    assert!(snapshot.memo_stats().component_misses > 0, "clones share one memo");

    // Deriving a revised snapshot leaves the original untouched.
    let priority = snapshot
        .context()
        .priority_from_pairs(&[(TupleId(0), TupleId(2)), (TupleId(1), TupleId(3))])
        .unwrap();
    let revised = snapshot.with_priority(priority).unwrap();
    assert_eq!(snapshot.priority().edge_count(), 0, "original priority unchanged");
    assert_eq!(revised.priority().edge_count(), 2);
    assert_eq!(snapshot.preferred_repairs(FamilyKind::Global, 10).len(), 3);
    assert_eq!(revised.preferred_repairs(FamilyKind::Global, 10).len(), 2);
}

#[test]
fn executing_twice_repeats_no_component_enumeration() {
    let snapshot = example1_snapshot();
    let query = PreparedQuery::parse(Q2).unwrap();
    let first = query.consistent_answer(&snapshot, FamilyKind::Global).unwrap();
    let after_first = snapshot.memo_stats();
    assert!(after_first.component_misses > 0, "the first run enumerates components");
    assert_eq!(after_first.answer_hits, 0);

    let second = query.consistent_answer(&snapshot, FamilyKind::Global).unwrap();
    let after_second = snapshot.memo_stats();
    assert_eq!(first, second);
    // The acceptance criterion of the redesign: a prepared query executed twice against
    // the same snapshot does not re-enumerate any component.
    assert_eq!(
        after_second.component_misses, after_first.component_misses,
        "second execution must not enumerate components again"
    );
    assert!(after_second.answer_hits > 0, "second execution is an answer-memo hit");

    // The same holds for open-query executions.
    let open = PreparedQuery::parse("EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
    let rows: Vec<_> =
        open.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap().collect();
    let mid = snapshot.memo_stats();
    let again: Vec<_> =
        open.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap().collect();
    let end = snapshot.memo_stats();
    assert_eq!(rows, again);
    assert_eq!(mid.component_misses, end.component_misses);
}

#[test]
fn with_priority_answers_match_a_fresh_build() {
    // On random instances and random priorities: deriving a snapshot via with_priority
    // must be indistinguishable (answer-wise) from building from scratch.
    let mut rng = StdRng::seed_from_u64(42);
    for round in 0..8 {
        let (instance, fds) = random_conflict_instance(8, 0.8, &mut rng);
        let base = EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap();
        // Warm the memo so derivation has something to selectively invalidate.
        for kind in FamilyKind::ALL {
            base.preferred_repair_count(kind);
        }
        let priority = random_priority(Arc::clone(base.graph()), 0.7, &mut rng);
        let pairs = priority.edges();
        let derived = base.with_priority(priority).unwrap();
        let fresh =
            EngineBuilder::new().relation(instance, fds).priority_pairs(&pairs).build().unwrap();
        for kind in FamilyKind::ALL {
            let mut from_derived = derived.preferred_repairs(kind, usize::MAX);
            let mut from_fresh = fresh.preferred_repairs(kind, usize::MAX);
            from_derived.sort_by_key(|s| s.iter().collect::<Vec<_>>());
            from_fresh.sort_by_key(|s| s.iter().collect::<Vec<_>>());
            assert_eq!(
                from_derived,
                from_fresh,
                "round {round}: derived and fresh {} repairs differ",
                kind.label()
            );
        }
        let query = PreparedQuery::parse("EXISTS a,b,c . R(a,b,c) AND b < 2").unwrap();
        for kind in FamilyKind::ALL {
            let a = query.consistent_answer(&derived, kind).unwrap();
            let b = query.consistent_answer(&fresh, kind).unwrap();
            assert_eq!(a.certainly_true, b.certainly_true, "round {round} {}", kind.label());
            assert_eq!(a.certainly_false, b.certainly_false, "round {round} {}", kind.label());
        }
    }
}

#[test]
fn with_priority_keeps_priority_independent_memo_entries() {
    let snapshot = example1_snapshot();
    snapshot.count_repairs(); // warm the Rep entries
    let warmed = snapshot.memo_stats();
    assert!(warmed.component_misses > 0);
    let priority = snapshot.context().priority_from_pairs(&[(TupleId(0), TupleId(1))]).unwrap();
    let revised = snapshot.with_priority(priority).unwrap();
    assert_eq!(revised.count_repairs(), 3);
    let stats = revised.memo_stats();
    assert_eq!(stats.component_misses, 0, "Rep enumeration must carry over");
    assert!(stats.component_hits > 0);
}

#[test]
fn one_prepared_query_serves_every_snapshot_and_family() {
    let (instance, fds) = example1();
    let query = PreparedQuery::parse(Q2).unwrap();

    let plain = EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap();
    // Example 3's reliability priority via explicit pairs.
    let preferred =
        plain.with_priority_pairs(&[(TupleId(0), TupleId(2)), (TupleId(1), TupleId(3))]).unwrap();

    // Same PreparedQuery object across two snapshots and all five families.
    assert!(query.consistent_answer(&plain, FamilyKind::Rep).unwrap().is_undetermined());
    for kind in FamilyKind::ALL {
        let outcome = query.consistent_answer(&preferred, kind).unwrap();
        match kind {
            FamilyKind::Rep => assert!(outcome.is_undetermined()),
            _ => assert!(outcome.certainly_true, "{} should settle Q2", kind.label()),
        }
    }
    // Fingerprints do not depend on the snapshot.
    assert_eq!(query.fingerprint(), PreparedQuery::parse(Q2).unwrap().fingerprint());
}

#[test]
fn derived_snapshots_agree_with_fresh_builds_on_random_workloads() {
    let mut rng = StdRng::seed_from_u64(7);
    let queries =
        ["EXISTS a,b,c . R(a,b,c)", "EXISTS a,c . R(a,0,c)", "EXISTS a,b,c . R(a,b,c) AND b > 0"];
    for _ in 0..6 {
        let (instance, fds) = random_conflict_instance(7, 0.7, &mut rng);
        let snapshot =
            EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap();
        let priority = random_priority(Arc::clone(snapshot.graph()), 0.5, &mut rng);
        let pairs = priority.edges();
        let snapshot = snapshot.with_priority(priority).unwrap();
        // A fresh build with the same priority pairs: no carried-over memo at all.
        let fresh =
            EngineBuilder::new().relation(instance, fds).priority_pairs(&pairs).build().unwrap();
        for text in queries {
            let prepared = PreparedQuery::parse(text).unwrap();
            for kind in FamilyKind::ALL {
                let piped = prepared.consistent_answer(&snapshot, kind).unwrap();
                let scratch = prepared.consistent_answer(&fresh, kind).unwrap();
                assert_eq!(piped.certainly_true, scratch.certainly_true, "{text} {}", kind.label());
                assert_eq!(
                    piped.certainly_false,
                    scratch.certainly_false,
                    "{text} {}",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn answer_sets_stream_and_expose_columns() {
    let snapshot = example1_snapshot();
    let query = PreparedQuery::parse("EXISTS s,r . Mgr('Mary',x,s,r)").unwrap();
    let mut possible = query.execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
    assert_eq!(possible.columns(), ["x".to_string()]);
    assert_eq!(possible.len(), 2);
    // Streaming: the cursor yields rows one by one, in sorted order.
    let first = possible.next().unwrap();
    assert_eq!(possible.len(), 1);
    let second = possible.next().unwrap();
    assert!(possible.next().is_none());
    assert!(first < second);
}

#[test]
fn multi_relation_snapshots_answer_cross_relation_queries() {
    let (mgr, mgr_fds) = example1();
    let schema = Arc::new(
        RelationSchema::from_pairs("Dept", &[("Name", ValueType::Name), ("Floor", ValueType::Int)])
            .unwrap(),
    );
    let dept = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["R&D".into(), Value::int(1)],
            vec!["R&D".into(), Value::int(2)], // conflicting floor reports
            vec!["IT".into(), Value::int(3)],
        ],
    )
    .unwrap();
    let dept_fds = FdSet::parse(schema, &["Name -> Floor"]).unwrap();
    let snapshot = EngineBuilder::new()
        .relation(mgr, mgr_fds)
        .relation(dept, dept_fds)
        .priority_pairs(&[(TupleId(0), TupleId(1))]) // floor 1 beats floor 2
        .build()
        .unwrap();
    assert_eq!(snapshot.relation_count(), 2);
    // 3 Mgr repairs × 2 Dept repairs.
    assert_eq!(snapshot.count_repairs(), 6);
    assert_eq!(snapshot.preferred_repair_count(FamilyKind::Global), 3);

    // Which floors certainly host a manager's department? Under G-Rep the Dept conflict
    // resolves to floor 1, but Mgr's manager set stays uncertain, so the join is only
    // certain where every Mgr repair supplies the department.
    let query = PreparedQuery::parse("EXISTS n,d,s,r . Mgr(n,d,s,r) AND Dept(d,x)").unwrap();
    let possible = query.possible_answers(&snapshot, FamilyKind::Global).unwrap();
    assert_eq!(possible, vec![vec![Value::int(1)], vec![Value::int(3)]]);
    let certain = query.certain_answers(&snapshot, FamilyKind::Global).unwrap();
    assert!(certain.is_empty());
}

#[test]
fn builder_reports_errors_and_snapshot_rejects_foreign_priorities() {
    let (instance, fds) = example1();
    let err = EngineBuilder::new()
        .relation(instance.clone(), fds.clone())
        .relation(instance.clone(), fds.clone())
        .build();
    assert!(err.is_err());
    let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
    // A priority over a different conflict graph is rejected.
    let (other, other_fds) = {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![vec![Value::int(1), Value::int(1)], vec![Value::int(1), Value::int(2)]],
        )
        .unwrap();
        (instance, FdSet::parse(schema, &["A -> B"]).unwrap())
    };
    let foreign = EngineBuilder::new().relation(other, other_fds).build().unwrap();
    let priority = foreign.context().priority_from_pairs(&[(TupleId(0), TupleId(1))]).unwrap();
    assert!(snapshot.with_priority(priority).is_err());
}
