//! The incremental delta-maintenance subsystem end to end.
//!
//! The pinned acceptance properties:
//!
//! * [`EngineSnapshot::with_mutations`] is **bit-identical to a fresh build** of the
//!   mutated row list — conflict graph, component order and global ids, shard plans,
//!   per-family preferred repairs in enumeration order, open and closed answers
//!   (including `examined`) — at every degree of parallelism, including mutations that
//!   **split** a component (deleting a cut tuple) and **merge** two (inserting a
//!   bridging tuple);
//! * untouched `(component, family)` memo entries carry over (no re-enumeration),
//!   invalidated ones are re-enumerated eagerly, and answers over untouched relations
//!   survive with their global component ids remapped;
//! * readers pinning registry leases while a writer replays a mutation trace through
//!   [`SnapshotRegistry::apply`] observe monotone generations and internally
//!   consistent snapshots, and the final published state equals a fresh build of the
//!   folded row list;
//! * a remote client can `INSERT`/`DELETE` over the wire, with generation-carrying
//!   responses bit-identical to the in-process replay.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::datagen::{multi_chain_instance, multi_chain_relations, mutation_trace, MutationEvent};
use pdqi::server::{serve, Client, ExecMode, ExecOutcome, ServerConfig};
use pdqi::{
    EngineBuilder, EngineSnapshot, FamilyKind, Mutation, Parallelism, PreparedQuery,
    RelationInstance, Semantics, SnapshotRegistry, Value,
};

/// Applies a [`MutationEvent`] stream to a raw row list the way a rebuild would see
/// it: deletes remove every matching row (order-preserving), inserts append.
fn fold_rows(rows: &mut Vec<Vec<Value>>, event: &MutationEvent) {
    match event {
        MutationEvent::Query(_) => {}
        MutationEvent::Insert(inserted) => rows.extend(inserted.iter().cloned()),
        MutationEvent::Delete(deleted) => {
            rows.retain(|row| !deleted.contains(row));
        }
    }
}

/// Converts a [`MutationEvent`] into the [`Mutation`] batch the delta path applies.
fn mutation_of(relation: &str, event: &MutationEvent) -> Option<Mutation> {
    match event {
        MutationEvent::Query(_) => None,
        MutationEvent::Insert(rows) => {
            Some(Mutation::new().insert_rows(relation, rows.iter().cloned()))
        }
        MutationEvent::Delete(rows) => {
            Some(Mutation::new().delete_rows(relation, rows.iter().cloned()))
        }
    }
}

/// Asserts two snapshots are indistinguishable: structure, enumeration and answers.
fn assert_bit_identical(derived: &EngineSnapshot, fresh: &EngineSnapshot, context: &str) {
    assert_eq!(derived.relation_names(), fresh.relation_names(), "{context}: names");
    assert_eq!(derived.component_count(), fresh.component_count(), "{context}: components");
    for name in fresh.relation_names() {
        let d = derived.context_of(&name).unwrap();
        let f = fresh.context_of(&name).unwrap();
        assert_eq!(d.instance().len(), f.instance().len(), "{context}: {name} tuples");
        for (id, tuple) in f.instance().iter() {
            assert_eq!(d.instance().tuple_unchecked(id), tuple, "{context}: {name} tuple {id}");
        }
        assert_eq!(d.graph().edges(), f.graph().edges(), "{context}: {name} edges");
        assert_eq!(derived.shards_of(&name), fresh.shards_of(&name), "{context}: {name} shards");
        assert_eq!(
            derived.priority_of(&name).unwrap().edges(),
            fresh.priority_of(&name).unwrap().edges(),
            "{context}: {name} priority"
        );
    }
    for kind in FamilyKind::ALL {
        assert_eq!(
            derived.preferred_repair_count(kind),
            fresh.preferred_repair_count(kind),
            "{context}: {} count",
            kind.label()
        );
        if fresh.relation_count() == 1 {
            // Not just the same set: the same repairs in the same enumeration order.
            assert_eq!(
                derived.preferred_repairs(kind, usize::MAX),
                fresh.preferred_repairs(kind, usize::MAX),
                "{context}: {} enumeration",
                kind.label()
            );
        }
    }
}

/// Asserts a query answers identically (both semantics and the closed outcome,
/// including `examined`) on both snapshots, at the given parallelism.
fn assert_same_answers(
    derived: &EngineSnapshot,
    fresh: &EngineSnapshot,
    open: &PreparedQuery,
    closed: &PreparedQuery,
    parallelism: Parallelism,
    context: &str,
) {
    for kind in FamilyKind::ALL {
        for semantics in [Semantics::Certain, Semantics::Possible] {
            let d: Vec<_> =
                open.execute_with(derived, kind, semantics, parallelism).unwrap().collect();
            let f: Vec<_> = open.execute(fresh, kind, semantics).unwrap().collect();
            assert_eq!(d, f, "{context}: {} {:?}", kind.label(), semantics);
        }
        let d = closed.consistent_answer_with(derived, kind, parallelism).unwrap();
        let f = closed.consistent_answer(fresh, kind).unwrap();
        assert_eq!(d, f, "{context}: {} closed", kind.label());
    }
}

/// A split (delete a chain-interior tuple) plus a merge (insert a tuple bridging two
/// chains), checked bit-identical to a rebuild at parallelism 1, 2, 4 and 8.
#[test]
fn splits_and_merges_are_bit_identical_to_rebuilds_at_every_parallelism() {
    let (instance, fds) = multi_chain_instance(4, 5);
    let rows: Vec<Vec<Value>> = instance.iter().map(|(_, t)| t.values().to_vec()).collect();
    // Chain 0's middle tuple (index 2) is a cut vertex: deleting it splits the path.
    let split_victim = rows[2].clone();
    // A tuple sharing chain 1's first A-group and chain 2's second C-group conflicts
    // with both chains: inserting it merges their components.
    let bridge = vec![rows[5][0].clone(), Value::int(9), rows[11][2].clone(), Value::int(9)];
    let mutation = Mutation::new().delete("R", split_victim.clone()).insert("R", bridge.clone());

    let mut mutated_rows = rows.clone();
    mutated_rows.retain(|row| *row != split_victim);
    mutated_rows.push(bridge);
    let fresh = EngineBuilder::new()
        .relation(
            RelationInstance::from_rows(Arc::clone(instance.schema()), mutated_rows).unwrap(),
            fds.clone(),
        )
        .build()
        .unwrap();
    // The split adds a component, the merge removes one: still four, but reshaped.
    assert_eq!(fresh.component_count(), 4);

    let open = PreparedQuery::parse("EXISTS b,c,d . R(x,b,c,d)").unwrap();
    let closed = PreparedQuery::parse("EXISTS a,b,c,d . R(a,b,c,d) AND b > 50").unwrap();
    for workers in [1usize, 2, 4, 8] {
        let parallelism = Parallelism::threads(workers);
        let base = EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap();
        // Warm every family so the carry-over path is exercised for all of them.
        for kind in FamilyKind::ALL {
            base.warm_components(kind, parallelism);
        }
        let derived = base.with_mutations(&mutation, parallelism).unwrap();
        assert_bit_identical(&derived, &fresh, &format!("{workers} workers"));
        assert_same_answers(
            &derived,
            &fresh,
            &open,
            &closed,
            parallelism,
            &format!("{workers} workers"),
        );
    }
}

/// Memo-hit accounting: untouched components carry over, the re-partitioned region is
/// re-enumerated eagerly (and only it), and later enumerations are all hits.
#[test]
fn untouched_memo_entries_carry_over_and_invalidated_ones_recompute_eagerly() {
    let (instance, fds) = multi_chain_instance(6, 5);
    let rows: Vec<Vec<Value>> = instance.iter().map(|(_, t)| t.values().to_vec()).collect();
    let base = EngineBuilder::new().relation(instance, fds).build().unwrap();
    for kind in FamilyKind::ALL {
        base.warm_components(kind, Parallelism::sequential());
    }
    assert_eq!(base.memo_stats().component_misses, 30, "6 components × 5 families");

    // Deleting chain 0's middle tuple splits one component into two.
    let mutation = Mutation::new().delete("R", rows[2].clone());
    let (derived, report) =
        base.with_mutations_reported(&mutation, Parallelism::threads(4)).unwrap();
    assert_eq!(report.deleted, 1);
    assert_eq!(report.invalidated_components, 1);
    assert_eq!(report.carried_entries, 25, "5 untouched components × 5 families");
    assert_eq!(report.recomputed_entries, 10, "2 split halves × 5 families");
    assert_eq!(derived.component_count(), 7);
    let eager = derived.memo_stats();
    assert_eq!(eager.component_misses, 10);
    // Everything is warm: re-warming any family computes nothing new, and counting
    // (which walks every component's memoised repairs) is all hits.
    for kind in FamilyKind::ALL {
        assert_eq!(derived.warm_components(kind, Parallelism::sequential()), 0, "{}", kind.label());
        derived.preferred_repair_count(kind);
    }
    assert_eq!(derived.memo_stats().component_misses, eager.component_misses);
}

/// Multi-relation snapshots: answers over untouched relations survive the mutation,
/// even though the mutated relation's component-count change shifts every later
/// relation's global component ids.
#[test]
fn answers_over_untouched_relations_survive_with_remapped_component_ids() {
    let relations = multi_chain_relations(2, 3, 5);
    let mut builder = EngineBuilder::new();
    for (instance, fds) in &relations {
        builder = builder.relation(instance.clone(), fds.clone());
    }
    let base = builder.build().unwrap();
    let query = PreparedQuery::parse("EXISTS b,c,d . R1(x,b,c,d)").unwrap();
    let before: Vec<_> =
        query.execute(&base, FamilyKind::Global, Semantics::Certain).unwrap().collect();

    // Delete the middle tuple of R0's first 5-chain: R0 splits from 3 into 4
    // components, shifting R1's global component ids by one.
    let victim = relations[0].0.tuple_unchecked(pdqi::TupleId(2)).values().to_vec();
    let mutation = Mutation::new().delete("R0", victim);
    let derived = base.with_mutations(&mutation, Parallelism::sequential()).unwrap();
    assert_eq!(derived.component_count(), base.component_count() + 1);

    let misses_before = derived.memo_stats().answer_misses;
    let after: Vec<_> =
        query.execute(&derived, FamilyKind::Global, Semantics::Certain).unwrap().collect();
    assert_eq!(before, after);
    let stats = derived.memo_stats();
    assert_eq!(stats.answer_misses, misses_before, "the carried answer must be a hit");
    assert!(stats.answer_hits >= 1);

    // A query over the *mutated* relation was invalidated and recomputes.
    let mutated_query = PreparedQuery::parse("EXISTS b,c,d . R0(x,b,c,d)").unwrap();
    mutated_query.execute(&base, FamilyKind::Global, Semantics::Certain).unwrap();
    let derived = base.with_mutations(&mutation, Parallelism::sequential()).unwrap();
    let misses = derived.memo_stats().answer_misses;
    mutated_query.execute(&derived, FamilyKind::Global, Semantics::Certain).unwrap();
    assert_eq!(derived.memo_stats().answer_misses, misses + 1);
}

/// Swap-under-load: readers pin leases and query while a writer replays a mutation
/// trace through `SnapshotRegistry::apply`. Generations stay monotone per reader,
/// every pinned snapshot answers self-consistently, and the final published snapshot
/// equals a fresh build of the folded row list.
#[test]
fn readers_pin_leases_while_a_writer_replays_a_mutation_trace() {
    let mut rng = StdRng::seed_from_u64(42);
    let trace = mutation_trace(3, 4, 30, 3, &mut rng);
    let registry = SnapshotRegistry::shared();
    registry.publish(
        "R",
        EngineBuilder::new().relation(trace.instance.clone(), trace.fds.clone()).build().unwrap(),
    );
    let queries: Vec<PreparedQuery> = trace
        .events
        .iter()
        .filter_map(|event| match event {
            MutationEvent::Query(text) => Some(text.clone()),
            _ => None,
        })
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|text| PreparedQuery::parse(&text).unwrap())
        .collect();

    let done = AtomicBool::new(false);
    let mutations = std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let mut last_generation = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let lease = registry.read("R").unwrap();
                    assert!(
                        lease.generation() >= last_generation,
                        "generations must be monotone per reader"
                    );
                    last_generation = lease.generation();
                    for query in &queries {
                        // Twice on one lease: a pinned snapshot never changes answers.
                        let first: Vec<_> = query
                            .execute(lease.snapshot(), FamilyKind::Local, Semantics::Possible)
                            .unwrap()
                            .collect();
                        let second: Vec<_> = query
                            .execute(lease.snapshot(), FamilyKind::Local, Semantics::Possible)
                            .unwrap()
                            .collect();
                        assert_eq!(first, second);
                    }
                }
            });
        }
        let mut applied = 0u64;
        for event in &trace.events {
            if let Some(mutation) = mutation_of("R", event) {
                let (generation, _) =
                    registry.apply("R", &mutation, Parallelism::threads(2)).unwrap();
                applied += 1;
                assert_eq!(generation, 1 + applied, "every mutation gets its own swap");
            }
        }
        done.store(true, Ordering::Relaxed);
        applied
    });

    // The final published snapshot equals a fresh build of the folded rows.
    let mut rows: Vec<Vec<Value>> =
        trace.instance.iter().map(|(_, t)| t.values().to_vec()).collect();
    for event in &trace.events {
        fold_rows(&mut rows, event);
    }
    let fresh = EngineBuilder::new()
        .relation(
            RelationInstance::from_rows(Arc::clone(trace.instance.schema()), rows).unwrap(),
            trace.fds.clone(),
        )
        .build()
        .unwrap();
    let lease = registry.read("R").unwrap();
    assert_eq!(lease.generation(), 1 + mutations);
    assert_bit_identical(lease.snapshot(), &fresh, "post-trace");
}

/// Wire-level mutations: replaying the mutation trace through `INSERT`/`DELETE`
/// frames matches the in-process replay event for event — same counts, same
/// generations, same answers.
#[test]
fn replaying_a_mutation_trace_through_the_wire_matches_the_in_process_replay() {
    let mut rng = StdRng::seed_from_u64(2024);
    let trace = mutation_trace(3, 4, 30, 3, &mut rng);
    let build = || {
        EngineBuilder::new().relation(trace.instance.clone(), trace.fds.clone()).build().unwrap()
    };
    let registry = SnapshotRegistry::shared();
    registry.publish("R", build());
    let shadow = SnapshotRegistry::shared();
    shadow.publish("R", build());

    let handle = serve("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let mut prepared: std::collections::HashMap<String, String> = Default::default();
    for (index, event) in trace.events.iter().enumerate() {
        match event {
            MutationEvent::Query(text) => {
                let id = prepared.entry(text.clone()).or_insert_with(|| {
                    let id = format!("q{index}");
                    client.prepare(&id, text).unwrap();
                    id
                });
                let (outcome, generation) =
                    client.exec(id, FamilyKind::Rep, ExecMode::Possible).unwrap();
                let lease = shadow.read("R").unwrap();
                assert_eq!(generation, lease.generation(), "event {index}");
                let direct = PreparedQuery::parse(text)
                    .unwrap()
                    .execute(lease.snapshot(), FamilyKind::Rep, Semantics::Possible)
                    .unwrap();
                let expected: Vec<Vec<String>> = direct
                    .rows()
                    .iter()
                    .map(|row| row.iter().map(|v| v.to_string()).collect())
                    .collect();
                assert_eq!(
                    outcome,
                    ExecOutcome::Rows { columns: direct.columns().to_vec(), rows: expected },
                    "event {index}: `{text}`"
                );
            }
            mutation_event => {
                let (rows, insert) = match mutation_event {
                    MutationEvent::Insert(rows) => (rows, true),
                    MutationEvent::Delete(rows) => (rows, false),
                    MutationEvent::Query(_) => unreachable!(),
                };
                let wire_rows: Vec<Vec<String>> =
                    rows.iter().map(|row| row.iter().map(|v| v.to_string()).collect()).collect();
                let (count, generation) = if insert {
                    client.insert("R", &wire_rows).unwrap()
                } else {
                    client.delete("R", &wire_rows).unwrap()
                };
                let mutation = mutation_of("R", mutation_event).unwrap();
                let (shadow_generation, report) =
                    shadow.apply("R", &mutation, Parallelism::sequential()).unwrap();
                let expected = if insert { report.inserted } else { report.deleted };
                assert_eq!((count, generation), (expected, shadow_generation), "event {index}");
            }
        }
    }
    assert_eq!(registry.generation("R"), shadow.generation("R"));
    client.shutdown().unwrap();
    handle.wait();
}
