//! The serving core end to end: registry swap-under-load, protocol round-trips over
//! loopback, and the snapshot-consistency guarantee of the network front end.
//!
//! The pinned acceptance properties:
//!
//! * threads serving queries while another thread publishes `with_priority_revalidated`
//!   revisions only ever observe a **fully-built** old or new snapshot — generations
//!   are monotone per reader and every answer is bit-identical to recomputing on a
//!   cold copy of the observed snapshot (a torn priority/memo pair would break that);
//! * a client request is answered entirely against one snapshot generation,
//!   bit-identical to calling `PreparedQuery::execute` directly on that snapshot;
//! * malformed frames answer `ERR` and close; protocol-level errors keep the
//!   connection usable.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::datagen::{revision_trace, TraceEvent};
use pdqi::server::{serve, Client, ExecMode, ExecOutcome, ExecSpec, ServerConfig};
use pdqi::{
    EngineBuilder, FamilyKind, Parallelism, PreparedQuery, Priority, Semantics, SnapshotRegistry,
};

/// A registry serving one multi-chain table, plus the trace that revises it.
fn traced_registry(
    chains: usize,
    length: usize,
    events: usize,
    revision_every: usize,
    seed: u64,
) -> (Arc<SnapshotRegistry>, pdqi::datagen::RevisionTrace) {
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = revision_trace(chains, length, events, revision_every, &mut rng);
    let snapshot =
        EngineBuilder::new().relation(trace.instance.clone(), trace.fds.clone()).build().unwrap();
    let registry = SnapshotRegistry::shared();
    registry.publish("R", snapshot);
    (registry, trace)
}

#[test]
fn swap_under_load_readers_only_observe_fully_built_snapshots() {
    let (registry, trace) = traced_registry(4, 6, 60, 4, 42);
    let queries: Vec<Arc<PreparedQuery>> = trace
        .events
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Query(text) => Some(Arc::new(PreparedQuery::parse(text).unwrap())),
            TraceEvent::Revision(_) => None,
        })
        .take(4)
        .collect();
    let revisions: Vec<_> = trace
        .events
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Revision(pairs) => Some(pairs.clone()),
            TraceEvent::Query(_) => None,
        })
        .collect();
    assert!(revisions.len() >= 10);

    let done = AtomicBool::new(false);
    let violations: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        // Readers: pin a lease, answer against it, and verify the observed snapshot is
        // internally consistent by recomputing the same answer on a cold (empty-memo)
        // copy of the *same* snapshot. Generations must never move backwards.
        for reader in 0..4 {
            let registry = &registry;
            let done = &done;
            let violations = &violations;
            let queries = &queries;
            scope.spawn(move || {
                let mut last_generation = 0u64;
                let mut round = 0usize;
                // Check `done` at the bottom: every reader completes at least one
                // read/verify round even if the publisher finishes first (revisions
                // through the delta path can outrun thread startup).
                loop {
                    let lease = registry.read("R").expect("table is always served");
                    if lease.generation() < last_generation {
                        violations.lock().unwrap().push(format!(
                            "reader {reader}: generation went backwards ({} after {})",
                            lease.generation(),
                            last_generation
                        ));
                        return;
                    }
                    last_generation = lease.generation();
                    let query = &queries[round % queries.len()];
                    round += 1;
                    let snapshot = lease.snapshot();
                    let warm: Vec<Vec<pdqi::Value>> = query
                        .execute(snapshot, FamilyKind::Global, Semantics::Certain)
                        .unwrap()
                        .collect();
                    let cold: Vec<Vec<pdqi::Value>> = query
                        .execute(
                            &snapshot.with_cleared_memo(),
                            FamilyKind::Global,
                            Semantics::Certain,
                        )
                        .unwrap()
                        .collect();
                    if warm != cold {
                        violations.lock().unwrap().push(format!(
                            "reader {reader}: memoised answer diverged from cold recomputation \
                             at generation {last_generation} (torn snapshot?)"
                        ));
                        return;
                    }
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }
        // The publisher: replay every revision through the registry, building each
        // revised snapshot off the serving path with eager revalidation.
        for pairs in &revisions {
            registry
                .revise("R", |current| {
                    let graph = Arc::clone(current.context().graph());
                    let priority = Priority::from_pairs(graph, pairs)?;
                    current.with_priority_revalidated(priority, Parallelism::threads(2))
                })
                .expect("revision builds");
        }
        done.store(true, Ordering::Relaxed);
    });
    let violations = violations.into_inner().unwrap();
    assert!(violations.is_empty(), "{violations:?}");
    // Every revision swapped exactly once, in order.
    assert_eq!(registry.generation("R"), 1 + revisions.len() as u64);
    let stats = registry.table_stats("R").unwrap();
    assert_eq!(stats.swaps, 1 + revisions.len() as u64);
    assert!(stats.reads > 0);
}

#[test]
fn served_answers_are_bit_identical_to_direct_execution_on_the_leased_snapshot() {
    let (registry, _) = traced_registry(3, 5, 10, 5, 7);
    let handle = serve("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let text = "EXISTS b,c,d . R(x,b,c,d)";
    client.prepare("q", text).unwrap();
    for (family, mode, semantics) in [
        (FamilyKind::Rep, ExecMode::Certain, Semantics::Certain),
        (FamilyKind::Rep, ExecMode::Possible, Semantics::Possible),
        (FamilyKind::Global, ExecMode::Certain, Semantics::Certain),
        (FamilyKind::Common, ExecMode::Possible, Semantics::Possible),
    ] {
        let (outcome, generation) = client.exec("q", family, mode).unwrap();
        // Re-read the registry: no revisions run, so this is the served snapshot.
        let lease = registry.read("R").unwrap();
        assert_eq!(generation, lease.generation());
        let direct = PreparedQuery::parse(text)
            .unwrap()
            .execute(lease.snapshot(), family, semantics)
            .unwrap();
        let expected_rows: Vec<Vec<String>> =
            direct.rows().iter().map(|row| row.iter().map(|v| v.to_string()).collect()).collect();
        assert_eq!(
            outcome,
            ExecOutcome::Rows { columns: direct.columns().to_vec(), rows: expected_rows },
            "{} {mode:?}",
            family.label()
        );
    }
    // A closed query through CLOSED matches consistent_answer on the same snapshot.
    client.prepare("ground", "EXISTS b,c,d . R(0,b,c,d)").unwrap();
    let (outcome, _) = client.exec("ground", FamilyKind::Rep, ExecMode::Closed).unwrap();
    let lease = registry.read("R").unwrap();
    let direct = PreparedQuery::parse("EXISTS b,c,d . R(0,b,c,d)")
        .unwrap()
        .consistent_answer(lease.snapshot(), FamilyKind::Rep)
        .unwrap();
    let verdict = if direct.certainly_true {
        "true"
    } else if direct.certainly_false {
        "false"
    } else {
        "undetermined"
    };
    assert_eq!(
        outcome,
        ExecOutcome::Outcome { verdict: verdict.to_string(), examined: direct.examined as u64 }
    );
    handle.shutdown();
}

#[test]
fn explain_over_the_wire_reports_the_plan_and_the_actuals() {
    let (registry, _) = traced_registry(3, 5, 10, 5, 7);
    let handle = serve("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.prepare("q", "EXISTS b,c,d . R(x,b,c,d)").unwrap();
    let (report, generation) = client.explain("q", FamilyKind::Global, Semantics::Certain).unwrap();
    assert_eq!(generation, registry.read("R").unwrap().generation());
    // The report is the deterministic plan tree (or the naive marker when
    // PDQI_FORCE_NAIVE_PLAN is exported into the test environment) plus actuals.
    assert!(report.contains("plan family=G-Rep"), "{report}");
    assert!(report.contains("actual product="), "{report}");
    // Unknown prepared ids error cleanly; the connection stays usable.
    assert!(client.explain("nope", FamilyKind::Rep, Semantics::Certain).is_err());
    // The planner's process-wide counters surface through STATS.
    let stats = client.stats().unwrap();
    assert!(stats.contains("planner planned="), "{stats}");
    handle.shutdown();
}

#[test]
fn a_batch_pins_one_generation_even_while_revisions_swap() {
    let (registry, trace) = traced_registry(3, 5, 40, 3, 99);
    let config =
        ServerConfig { parallelism: Parallelism::threads(2), acceptors: 2, ..Default::default() };
    let handle = serve("127.0.0.1:0", Arc::clone(&registry), config).unwrap();
    let addr = handle.local_addr();

    let mut setup = Client::connect(addr).unwrap();
    setup.prepare("open", "EXISTS b,c,d . R(x,b,c,d)").unwrap();
    setup.prepare("closed", "EXISTS a,b,c,d . R(a,b,c,d)").unwrap();

    let revisions: Vec<_> = trace
        .events
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Revision(pairs) => Some(pairs.clone()),
            TraceEvent::Query(_) => None,
        })
        .collect();

    std::thread::scope(|scope| {
        // One thread hammers BATCH requests; its generations must be monotone and each
        // batch must be answered wholly at one generation.
        let exec_thread = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut last_generation = 0u64;
            for _ in 0..40 {
                let specs = vec![
                    ExecSpec {
                        id: "open".to_string(),
                        family: FamilyKind::Global,
                        mode: ExecMode::Certain,
                    },
                    ExecSpec {
                        id: "closed".to_string(),
                        family: FamilyKind::Global,
                        mode: ExecMode::Closed,
                    },
                ];
                let (outcomes, generation) = client.batch(specs).unwrap();
                assert!(generation >= last_generation, "batch generations must be monotone");
                last_generation = generation;
                assert_eq!(outcomes.len(), 2);
                assert!(matches!(outcomes[0], ExecOutcome::Rows { .. }));
                assert!(matches!(outcomes[1], ExecOutcome::Outcome { .. }));
            }
        });
        // Another connection publishes every revision through SET-PRIORITY.
        let revise_thread = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut last_generation = 1u64;
            for pairs in &revisions {
                let wire: Vec<(u32, u32)> = pairs.iter().map(|&(w, l)| (w.0, l.0)).collect();
                let generation = client.set_priority("R", &wire).unwrap();
                assert_eq!(generation, last_generation + 1, "swaps are serialised");
                last_generation = generation;
            }
            last_generation
        });
        exec_thread.join().unwrap();
        let final_generation = revise_thread.join().unwrap();
        assert_eq!(registry.generation("R"), final_generation);
    });
    handle.shutdown();
}

#[test]
fn malformed_frames_close_the_connection_but_errors_do_not() {
    let (registry, _) = traced_registry(2, 4, 5, 3, 1);
    let handle = serve("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // Protocol-level errors: the connection answers ERR and stays usable.
    let mut client = Client::connect(addr).unwrap();
    for (request, expected) in [
        ("NONSENSE", "ERR unknown command"),
        ("EXEC ghost ALL CERTAIN", "ERR unknown prepared query"),
        ("PREPARE bad ((", "ERR query error"),
        ("PREPARE multi EXISTS b . R(x,b,0,0) AND S(x)", "ERR"),
        ("SET-PRIORITY Ghost 0>1", "ERR registry serves no table"),
        ("SET-PRIORITY R 0>999", "ERR revision failed: priority cannot be installed"),
        ("BATCH", "ERR BATCH needs"),
    ] {
        let response = client.request_raw(request).unwrap();
        assert!(response.starts_with(expected), "{request} -> {response}");
    }
    client.ping().unwrap();

    // An oversized announcement: ERR frame, then EOF.
    let mut oversized = TcpStream::connect(addr).unwrap();
    oversized.write_all(&(u32::MAX).to_be_bytes()).unwrap();
    let mut response = Vec::new();
    oversized.read_to_end(&mut response).unwrap();
    assert!(String::from_utf8_lossy(&response).contains("ERR frame too large"));

    // Binary junk that is not UTF-8: ERR frame, then EOF.
    let mut binary = TcpStream::connect(addr).unwrap();
    binary.write_all(&3u32.to_be_bytes()).unwrap();
    binary.write_all(&[0xff, 0x00, 0xfe]).unwrap();
    let mut response = Vec::new();
    binary.read_to_end(&mut response).unwrap();
    assert!(String::from_utf8_lossy(&response).contains("ERR frame payload is not valid UTF-8"));

    // A peer that vanishes mid-frame just drops; the server keeps serving others.
    let mut truncated = TcpStream::connect(addr).unwrap();
    truncated.write_all(&100u32.to_be_bytes()).unwrap();
    truncated.write_all(b"partial").unwrap();
    drop(truncated);
    client.ping().unwrap();

    handle.shutdown();
}

#[test]
fn frames_split_across_poll_timeouts_are_reassembled_not_dropped() {
    let (registry, _) = traced_registry(2, 4, 5, 3, 3);
    let handle = serve("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    // Deliver one PING frame in three slow pieces: length prefix, then the payload in
    // two halves, each gap longer than the server's 50ms shutdown-poll timeout. The
    // server must keep waiting for the remainder instead of re-parsing mid-frame.
    let mut stream = TcpStream::connect(addr).unwrap();
    let payload = b"PING";
    stream.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(120));
    stream.write_all(&payload[..2]).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(120));
    stream.write_all(&payload[2..]).unwrap();
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).unwrap();
    let mut response = vec![0u8; u32::from_be_bytes(prefix) as usize];
    stream.read_exact(&mut response).unwrap();
    assert_eq!(String::from_utf8(response).unwrap(), "OK pong");
    handle.shutdown();
}

#[test]
fn remote_shutdown_drains_every_acceptor_thread() {
    let (registry, _) = traced_registry(2, 4, 5, 3, 4);
    let config =
        ServerConfig { parallelism: Parallelism::sequential(), acceptors: 3, ..Default::default() };
    let handle = serve("127.0.0.1:0", registry, config).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.shutdown().unwrap();
    // With 3 acceptors blocked in accept(), wait() only returns if the remote
    // SHUTDOWN woke all of them (the regression hung here).
    handle.wait();
}

#[test]
fn values_with_tabs_and_newlines_survive_the_wire() {
    use pdqi::{FdSet, RelationInstance, RelationSchema, ValueType};
    let schema = Arc::new(
        RelationSchema::from_pairs("Notes", &[("Id", ValueType::Int), ("Text", ValueType::Name)])
            .unwrap(),
    );
    let tricky = "a\tb\nc\\d";
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec![pdqi::Value::int(1), pdqi::Value::name(tricky)],
            vec![pdqi::Value::int(2), pdqi::Value::name("plain")],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &[]).unwrap();
    let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
    let registry = SnapshotRegistry::shared();
    registry.publish("Notes", snapshot);
    let handle = serve("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.prepare("notes", "EXISTS i . Notes(i,x)").unwrap();
    let (outcome, _) = client.exec("notes", FamilyKind::Rep, ExecMode::Certain).unwrap();
    let ExecOutcome::Rows { columns, rows } = outcome else {
        panic!("expected rows, got {outcome:?}");
    };
    assert_eq!(columns, vec!["x".to_string()]);
    // The embedded tab, newline and backslash come back intact, one value per row.
    assert_eq!(rows, vec![vec![tricky.to_string()], vec!["plain".to_string()]]);
    handle.shutdown();
}

#[test]
fn replaying_a_revision_trace_through_the_wire_matches_the_in_process_replay() {
    let (registry, trace) = traced_registry(3, 4, 24, 4, 123);
    // In-process replay: registry + prepared queries directly.
    let shadow = {
        let snapshot = EngineBuilder::new()
            .relation(trace.instance.clone(), trace.fds.clone())
            .build()
            .unwrap();
        let registry = SnapshotRegistry::shared();
        registry.publish("R", snapshot);
        registry
    };
    let handle = serve("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let mut prepared_ids: std::collections::HashMap<String, String> =
        std::collections::HashMap::new();
    for (index, event) in trace.events.iter().enumerate() {
        match event {
            TraceEvent::Query(text) => {
                let id = prepared_ids.entry(text.clone()).or_insert_with(|| {
                    let id = format!("q{index}");
                    client.prepare(&id, text).unwrap();
                    id
                });
                let (outcome, _) = client.exec(id, FamilyKind::Global, ExecMode::Certain).unwrap();
                // Shadow execution against the in-process registry.
                let lease = shadow.read("R").unwrap();
                let direct = PreparedQuery::parse(text)
                    .unwrap()
                    .execute(lease.snapshot(), FamilyKind::Global, Semantics::Certain)
                    .unwrap();
                let expected: Vec<Vec<String>> = direct
                    .rows()
                    .iter()
                    .map(|row| row.iter().map(|v| v.to_string()).collect())
                    .collect();
                assert_eq!(
                    outcome,
                    ExecOutcome::Rows { columns: direct.columns().to_vec(), rows: expected },
                    "event {index}: `{text}`"
                );
            }
            TraceEvent::Revision(pairs) => {
                let wire: Vec<(u32, u32)> = pairs.iter().map(|&(w, l)| (w.0, l.0)).collect();
                client.set_priority("R", &wire).unwrap();
                shadow
                    .revise("R", |current| {
                        let graph = Arc::clone(current.context().graph());
                        let priority = Priority::from_pairs(graph, pairs)?;
                        current.with_priority_revalidated(priority, Parallelism::sequential())
                    })
                    .unwrap();
            }
        }
    }
    assert_eq!(registry.generation("R"), shadow.generation("R"));
    client.shutdown().unwrap();
    handle.wait();
}
