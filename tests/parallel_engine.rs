//! Concurrency contracts of the parallel snapshot engine.
//!
//! Three families of guarantees:
//!
//! * **thread-safety by type** — `EngineSnapshot`, `PreparedQuery` and friends are
//!   `Send + Sync` (asserted statically, so a regression is a compile error);
//! * **shared-snapshot serving** — one snapshot answering interleaved queries from many
//!   threads produces exactly the single-threaded answers;
//! * **determinism** — parallel execution (`execute_with`, `consistent_answer_with`,
//!   `warm_components`, `BatchExecutor`) is bit-identical to sequential execution,
//!   including row order and the `examined` counter, for all five families.

use std::sync::Arc;

use pdqi::datagen::{example4_instance, multi_chain_instance};
use pdqi::{
    AnswerSet, BatchExecutor, BatchRequest, EngineBuilder, EngineSnapshot, FamilyKind, Parallelism,
    PreparedQuery, Semantics, Value,
};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn engine_types_are_send_and_sync() {
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<AnswerSet>();
    assert_send_sync::<BatchExecutor>();
    assert_send_sync::<BatchRequest>();
    assert_send_sync::<Parallelism>();
}

/// Example 4 with `n` independent components and a score-derived priority, so every
/// family is non-trivial.
fn prioritised_snapshot(n: usize) -> EngineSnapshot {
    let (instance, fds) = example4_instance(n);
    let scores: Vec<i64> = (0..2 * n as i64).map(|i| if i % 4 == 0 { 5 } else { i % 3 }).collect();
    EngineBuilder::new().relation(instance, fds).priority_from_scores(&scores).build().unwrap()
}

const QUERIES: [&str; 4] = [
    "EXISTS y . R(x,y)",
    "R(x,0)",
    "EXISTS x . R(x,1) AND x < 3",
    "EXISTS x,y . R(x,y) AND x >= 2",
];

#[test]
fn one_snapshot_shared_across_four_threads_answers_interleaved_queries() {
    let snapshot = prioritised_snapshot(6);
    // Single-threaded reference answers, computed on a separate snapshot so the shared
    // one starts cold.
    let reference = prioritised_snapshot(6);
    let mut expected: Vec<Vec<Vec<Value>>> = Vec::new();
    for text in QUERIES {
        let query = PreparedQuery::parse(text).unwrap();
        for kind in FamilyKind::ALL {
            for semantics in [Semantics::Certain, Semantics::Possible] {
                expected.push(query.execute(&reference, kind, semantics).unwrap().collect());
            }
        }
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|worker| {
                let snapshot = snapshot.clone();
                scope.spawn(move || {
                    // Each thread interleaves queries, families and semantics in a
                    // different order (rotated by its index).
                    let mut results = Vec::new();
                    let mut index = 0usize;
                    for text in QUERIES {
                        let query = PreparedQuery::parse(text).unwrap();
                        for kind in FamilyKind::ALL {
                            for semantics in [Semantics::Certain, Semantics::Possible] {
                                results.push((index, query.clone(), kind, semantics));
                                index += 1;
                            }
                        }
                    }
                    let rotation = worker * 7 % results.len();
                    results.rotate_left(rotation);
                    results
                        .into_iter()
                        .map(|(index, query, kind, semantics)| {
                            let rows: Vec<Vec<Value>> =
                                query.execute(&snapshot, kind, semantics).unwrap().collect();
                            (index, rows)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (index, rows) in handle.join().unwrap() {
                assert_eq!(rows, expected[index], "query #{index}");
            }
        }
    });
    // Sanity: the shared memo actually served concurrent executions.
    let stats = snapshot.memo_stats();
    assert!(stats.answer_hits + stats.answer_misses >= 4 * 40);
}

#[test]
fn parallel_answer_sets_are_bit_identical_to_sequential_for_all_families() {
    let snapshot = prioritised_snapshot(6);
    for text in QUERIES {
        let query = PreparedQuery::parse(text).unwrap();
        for kind in FamilyKind::ALL {
            for semantics in [Semantics::Certain, Semantics::Possible] {
                let sequential = query
                    .execute_with(
                        &snapshot.with_cleared_memo(),
                        kind,
                        semantics,
                        Parallelism::sequential(),
                    )
                    .unwrap();
                let parallel = query
                    .execute_with(
                        &snapshot.with_cleared_memo(),
                        kind,
                        semantics,
                        Parallelism::threads(4),
                    )
                    .unwrap();
                assert_eq!(sequential.columns(), parallel.columns());
                // Bit-identical including order: compare the streamed row sequences.
                let sequential: Vec<Vec<Value>> = sequential.collect();
                let parallel: Vec<Vec<Value>> = parallel.collect();
                assert_eq!(sequential, parallel, "{text} / {} / {semantics:?}", kind.label());
            }
        }
    }
}

#[test]
fn parallel_closed_outcomes_match_sequential_including_examined() {
    let snapshot = prioritised_snapshot(5);
    for text in ["EXISTS x . R(x,0)", "R(0,0)", "EXISTS x . R(x,0) AND x > 99"] {
        let query = PreparedQuery::parse(text).unwrap();
        for kind in FamilyKind::ALL {
            let sequential = query
                .consistent_answer_with(
                    &snapshot.with_cleared_memo(),
                    kind,
                    Parallelism::sequential(),
                )
                .unwrap();
            let parallel = query
                .consistent_answer_with(
                    &snapshot.with_cleared_memo(),
                    kind,
                    Parallelism::threads(4),
                )
                .unwrap();
            assert_eq!(sequential, parallel, "{text} / {}", kind.label());
        }
    }
}

#[test]
fn warm_components_is_deterministic_on_a_64_component_instance() {
    let (instance, fds) = multi_chain_instance(64, 8);
    let base = EngineBuilder::new().relation(instance, fds).build().unwrap();
    assert!(base.component_count() >= 64);
    for kind in FamilyKind::ALL {
        let sequential = base.with_cleared_memo();
        sequential.warm_components(kind, Parallelism::sequential());
        let parallel = base.with_cleared_memo();
        parallel.warm_components(kind, Parallelism::threads(4));
        // The memoised per-component enumerations agree exactly: identical counts...
        assert_eq!(
            sequential.preferred_repair_count(kind),
            parallel.preferred_repair_count(kind),
            "{}",
            kind.label()
        );
        // ...and the warmed memo satisfies every later read without recomputation.
        assert_eq!(parallel.warm_components(kind, Parallelism::threads(4)), 0);
        assert_eq!(parallel.memo_stats().component_misses, 64);
    }
}

#[test]
fn batch_executor_serves_interleaved_requests_in_order() {
    let snapshot = prioritised_snapshot(6);
    let reference = prioritised_snapshot(6);
    let mut requests = Vec::new();
    for text in QUERIES {
        let query = Arc::new(PreparedQuery::parse(text).unwrap());
        for kind in FamilyKind::ALL {
            requests.push(BatchRequest::execute(Arc::clone(&query), kind, Semantics::Certain));
        }
    }
    let executor = BatchExecutor::with_parallelism(snapshot, Parallelism::threads(4));
    let responses = executor.run(&requests);
    assert_eq!(responses.len(), requests.len());
    for (request, response) in requests.iter().zip(responses) {
        let BatchRequest::Execute { query, family, semantics } = request else {
            unreachable!("only Execute requests were enqueued")
        };
        let direct: Vec<Vec<Value>> =
            query.execute(&reference, *family, *semantics).unwrap().collect();
        let batched: Vec<Vec<Value>> = response.unwrap().rows().unwrap().clone().collect();
        assert_eq!(direct, batched);
    }
}
