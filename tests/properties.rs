//! Property-based tests: the P1–P4 axioms and the core structural invariants, driven by
//! randomly generated instances, priorities and priority-extension chains.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::core::properties::{check_p1, check_p2, check_p3, check_p4};
use pdqi::datagen::{random_conflict_instance, random_priority, random_total_priority};
use pdqi::priority::winnow;
use pdqi::{FamilyKind, RepairContext};

/// A small random repair context (kept small so exhaustive repair enumeration stays cheap).
fn small_context(seed: u64, n: usize, conflict_rate: f64) -> RepairContext {
    let mut rng = StdRng::seed_from_u64(seed);
    let (instance, fds) = random_conflict_instance(n, conflict_rate, &mut rng);
    RepairContext::new(instance, fds)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every repair is a maximal independent set of the conflict graph, and the
    /// repair-checking predicate recognises exactly the enumerated repairs.
    #[test]
    fn repairs_are_maximal_independent_sets(seed in 0u64..1_000, n in 4usize..14, rate in 0.0f64..1.0) {
        let ctx = small_context(seed, n, rate);
        let repairs = ctx.repairs(1_000);
        prop_assert!(!repairs.is_empty());
        for repair in &repairs {
            prop_assert!(ctx.graph().is_maximal_independent(repair));
            prop_assert!(ctx.is_repair(repair));
            prop_assert!(pdqi::constraints::is_consistent(&ctx.materialise(repair), ctx.fds()));
        }
        prop_assert_eq!(repairs.len() as u128, ctx.count_repairs());
    }

    /// P1 and P3 hold for every family on random instances and priorities.
    #[test]
    fn p1_and_p3_hold_for_every_family(seed in 0u64..1_000, n in 4usize..12, completeness in 0.0f64..1.0) {
        let ctx = small_context(seed, n, 0.7);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let priority = random_priority(Arc::clone(ctx.graph()), completeness, &mut rng);
        for kind in FamilyKind::ALL {
            let family = kind.family();
            prop_assert!(check_p1(family.as_ref(), &ctx, &priority), "{} violates P1", kind.label());
            prop_assert!(check_p3(family.as_ref(), &ctx), "{} violates P3", kind.label());
        }
    }

    /// P2 (monotonicity) holds along random extension chains for Rep, G-Rep and C-Rep —
    /// the families the paper proves monotone. (L- and S-Rep satisfy P2 as well; they are
    /// covered by the same check.)
    #[test]
    fn p2_holds_along_random_extension_chains(seed in 0u64..1_000, n in 4usize..12) {
        let ctx = small_context(seed, n, 0.7);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let partial = random_priority(Arc::clone(ctx.graph()), 0.4, &mut rng);
        let total = pdqi::priority::random_total_extension(&partial, &mut rng);
        prop_assert!(total.is_extension_of(&partial));
        for kind in FamilyKind::ALL {
            let family = kind.family();
            prop_assert!(
                check_p2(family.as_ref(), &ctx, &partial, &total),
                "{} violates P2",
                kind.label()
            );
        }
    }

    /// P4 (categoricity) holds for G-Rep and C-Rep on random total priorities, and the
    /// unique preferred repair is the output of Algorithm 1.
    #[test]
    fn p4_holds_for_g_and_c_rep_on_total_priorities(seed in 0u64..1_000, n in 4usize..12) {
        let ctx = small_context(seed, n, 0.8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let total = random_total_priority(Arc::clone(ctx.graph()), &mut rng);
        for kind in [FamilyKind::Global, FamilyKind::Common] {
            prop_assert!(check_p4(kind.family().as_ref(), &ctx, &total), "{} violates P4", kind.label());
        }
        let cleaned = pdqi::core::clean_with_total_priority(ctx.graph(), &total).unwrap();
        prop_assert_eq!(
            FamilyKind::Common.family().preferred_repairs(&ctx, &total, 10),
            vec![cleaned]
        );
    }

    /// The winnow operator returns exactly the undominated active tuples, and Algorithm 1
    /// (for total priorities) is independent of the choice order (Prop. 1).
    #[test]
    fn winnow_soundness_and_algorithm_1_confluence(seed in 0u64..1_000, n in 4usize..12) {
        let ctx = small_context(seed, n, 0.8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
        let total = random_total_priority(Arc::clone(ctx.graph()), &mut rng);
        let active = ctx.instance().all_ids();
        let undominated = winnow(&total, &active);
        for tuple in active.iter() {
            let dominated = total.dominators_of(tuple).iter().any(|d| active.contains(d));
            prop_assert_eq!(undominated.contains(tuple), !dominated);
        }
        let lowest = pdqi::core::clean::clean_with_chooser(ctx.graph(), &total, |c| c.first().unwrap());
        let highest = pdqi::core::clean::clean_with_chooser(ctx.graph(), &total, |c| c.iter().last().unwrap());
        prop_assert_eq!(lowest, highest);
    }

    /// Priorities generated by the random generators are acyclic and only orient conflict
    /// edges; extending them preserves both invariants.
    #[test]
    fn random_priorities_respect_definition_2(seed in 0u64..1_000, n in 4usize..14, completeness in 0.0f64..1.0) {
        let ctx = small_context(seed, n, 0.6);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
        let priority = random_priority(Arc::clone(ctx.graph()), completeness, &mut rng);
        prop_assert!(priority.check_acyclic());
        for (winner, loser) in priority.edges() {
            prop_assert!(ctx.graph().are_conflicting(winner, loser));
        }
        let extension = pdqi::priority::random_total_extension(&priority, &mut rng);
        prop_assert!(extension.check_acyclic());
        prop_assert!(extension.is_total());
        prop_assert!(extension.is_extension_of(&priority));
    }
}
