//! Failure injection across the public surface: malformed queries, malformed SQL,
//! schema violations, illegal priorities and unsupported closed-form requests must all
//! surface as errors (never panics) and must leave the surrounding state usable.

use std::sync::Arc;

use pdqi::aggregate::{range_closed_form, AggregateFunction, AggregateQuery, ClosedFormError};
use pdqi::core::cqa::preferred_consistent_answer;
use pdqi::priority::PriorityError;
use pdqi::query::parse_formula;
use pdqi::sql::Session;
use pdqi::{
    EngineBuilder, FamilyKind, FdSet, RelationInstance, RelationSchema, RepairContext, TupleId,
    Value, ValueType,
};

fn mgr_context() -> RepairContext {
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[("Name", ValueType::Name), ("Dept", ValueType::Name), ("Salary", ValueType::Int)],
        )
        .unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40)],
            vec!["Mary".into(), "IT".into(), Value::int(20)],
            vec!["John".into(), "PR".into(), Value::int(30)],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["Name -> Dept Salary"]).unwrap();
    RepairContext::new(instance, fds)
}

#[test]
fn malformed_formulas_are_parse_errors_not_panics() {
    for text in [
        "",
        "EXISTS . R(x)",
        "R(x,, y)",
        "EXISTS x R(x)",       // missing the dot
        "R(x) AND",            // dangling connective
        "FORALL x . R(x",      // unbalanced parenthesis
        "R('unterminated, 3)", // unterminated string literal
        "1 <",                 // incomplete comparison
    ] {
        assert!(parse_formula(text).is_err(), "`{text}` should not parse");
    }
}

#[test]
fn open_formulas_are_rejected_by_closed_query_answering() {
    let ctx = mgr_context();
    let open = parse_formula("Mgr(x, 'R&D', s)").unwrap();
    let result = preferred_consistent_answer(
        &ctx,
        &ctx.empty_priority(),
        FamilyKind::Rep.family().as_ref(),
        &open,
    );
    assert!(result.is_err());
}

#[test]
fn queries_over_unknown_relations_or_wrong_arity_fail_cleanly() {
    let ctx = mgr_context();
    for text in [
        "EXISTS x . Unknown(x)",
        "EXISTS x . Mgr(x)",                        // wrong arity
        "EXISTS x, y, z . Mgr(x, y, z) AND y < 10", // name attribute compared to an int
    ] {
        let query = parse_formula(text).unwrap();
        let result = preferred_consistent_answer(
            &ctx,
            &ctx.empty_priority(),
            FamilyKind::Rep.family().as_ref(),
            &query,
        );
        assert!(result.is_err(), "`{text}` should fail to evaluate");
    }
}

#[test]
fn illegal_priorities_are_rejected_with_specific_errors() {
    let ctx = mgr_context();
    // t0 and t2 belong to different key groups: not conflicting.
    assert!(matches!(
        ctx.priority_from_pairs(&[(TupleId(0), TupleId(2))]),
        Err(PriorityError::NotConflicting { .. })
    ));
    // A cycle on the only conflicting pair.
    assert!(matches!(
        ctx.priority_from_pairs(&[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(0))]),
        Err(PriorityError::WouldCreateCycle { .. })
    ));
    // Unknown tuple ids.
    assert!(matches!(
        ctx.priority_from_pairs(&[(TupleId(0), TupleId(77))]),
        Err(PriorityError::UnknownTuple { .. })
    ));
    // The builder surfaces the same failures.
    let build = EngineBuilder::new()
        .relation(ctx.instance().clone(), ctx.fds().clone())
        .priority_pairs(&[(TupleId(0), TupleId(2))])
        .build();
    assert!(build.is_err());
}

#[test]
fn schema_violations_are_rejected_at_insertion_and_at_fd_parsing() {
    let schema = Arc::new(
        RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Name)]).unwrap(),
    );
    let mut instance = RelationInstance::new(Arc::clone(&schema));
    assert!(instance.insert(vec![Value::int(1)]).is_err()); // wrong arity
    assert!(instance.insert(vec![Value::name("x"), Value::name("y")]).is_err()); // wrong type
    assert!(instance.insert(vec![Value::int(1), Value::name("y")]).is_ok());
    // FDs over unknown attributes or without an arrow are rejected.
    assert!(FdSet::parse(Arc::clone(&schema), &["A -> Nope"]).is_err());
    assert!(FdSet::parse(Arc::clone(&schema), &["Nope -> B"]).is_err());
    assert!(FdSet::parse(Arc::clone(&schema), &["A B"]).is_err());
    // Duplicate attribute names are rejected when the schema is built.
    assert!(
        RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("A", ValueType::Int)]).is_err()
    );
}

#[test]
fn the_sql_session_reports_errors_and_stays_usable() {
    let mut session = Session::new();
    session.execute("CREATE TABLE T (A INT, B TEXT)").unwrap();
    // Re-creating, unknown tables, bad FDs, bad rows, bad family names.
    assert!(session.execute("CREATE TABLE T (A INT)").is_err());
    assert!(session.execute("INSERT INTO Nope VALUES (1, 'x')").is_err());
    assert!(session.execute("ALTER TABLE T ADD FD A -> Nope").is_err());
    assert!(session.execute("INSERT INTO T VALUES (1)").is_err());
    assert!(session.execute("INSERT INTO T VALUES ('text', 'x')").is_err());
    assert!(session.execute("SELECT A FROM T WITH REPAIRS NOPE").is_err());
    assert!(session.execute("PREFER (1, 'x') OVER (2, 'y') IN T").is_err());
    assert!(session.execute("completely not sql").is_err());
    // The session is still fully usable after all of the failures above.
    session.execute("ALTER TABLE T ADD FD A -> B").unwrap();
    session.execute("INSERT INTO T VALUES (1, 'x'), (1, 'y')").unwrap();
    let snapshot = session.snapshot("T").unwrap();
    assert_eq!(snapshot.count_repairs(), 2);
}

#[test]
fn closed_form_refusals_name_the_reason() {
    let ctx = mgr_context();
    let schema = ctx.instance().schema();
    // COUNT DISTINCT has no closed form.
    let distinct =
        AggregateQuery::over(schema, AggregateFunction::CountDistinct, "Salary").unwrap();
    assert_eq!(range_closed_form(&ctx, &distinct), Err(ClosedFormError::CountDistinctUnsupported));
    // AVG under a selection that only part of a clique satisfies.
    let avg = AggregateQuery::over(schema, AggregateFunction::Avg, "Salary")
        .unwrap()
        .filtered(schema, "Dept", Value::name("R&D"))
        .unwrap();
    assert_eq!(range_closed_form(&ctx, &avg), Err(ClosedFormError::AvgSelectionUnsupported));
    // Aggregating a name attribute is a validation error.
    let bad = AggregateQuery::over(schema, AggregateFunction::Sum, "Dept").unwrap();
    assert!(bad.validate(schema).is_err());
}

#[test]
fn cleaning_without_a_total_priority_is_an_error_not_a_guess() {
    let ctx = mgr_context();
    let snapshot =
        EngineBuilder::new().relation(ctx.instance().clone(), ctx.fds().clone()).build().unwrap();
    assert!(snapshot.clean().is_err());
    let scored = EngineBuilder::new()
        .relation(ctx.instance().clone(), ctx.fds().clone())
        .priority_from_scores(&[2, 1, 0])
        .build()
        .unwrap();
    assert!(scored.priority().is_total());
    assert!(scored.clean().is_ok());
}
