//! Property-based checks for the aggregation subsystem: the closed form agrees with the
//! enumeration evaluator on key-induced conflicts, ranges behave monotonically under
//! priority extension, and preferred families always produce sub-ranges of the plain
//! repair range.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::aggregate::{
    is_clique_partition, range_by_enumeration, range_closed_form, AggregateFunction, AggregateQuery,
};
use pdqi::core::FamilyKind;
use pdqi::priority::random_total_extension;
use pdqi::{FdSet, RelationInstance, RelationSchema, RepairContext, Value, ValueType};

/// Builds an employee instance with the key dependency `Name → Salary Dept` from a list
/// of (name index, dept index, salary) triples.
fn employee_context(rows: &[(u8, u8, i16)]) -> RepairContext {
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Emp",
            &[("Name", ValueType::Name), ("Dept", ValueType::Name), ("Salary", ValueType::Int)],
        )
        .unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        rows.iter()
            .map(|&(n, d, s)| {
                vec![
                    Value::name(&format!("n{n}")),
                    Value::name(&format!("d{d}")),
                    Value::int(s as i64),
                ]
            })
            .collect(),
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["Name -> Dept Salary"]).unwrap();
    RepairContext::new(instance, fds)
}

fn rows_strategy() -> impl Strategy<Value = Vec<(u8, u8, i16)>> {
    prop::collection::vec((0u8..5, 0u8..3, -50i16..100), 1..12)
}

fn functions() -> [AggregateFunction; 5] {
    [
        AggregateFunction::Count,
        AggregateFunction::Sum,
        AggregateFunction::Min,
        AggregateFunction::Max,
        AggregateFunction::Avg,
    ]
}

fn query_for(ctx: &RepairContext, function: AggregateFunction, filtered: bool) -> AggregateQuery {
    let schema = ctx.instance().schema();
    let base = if function == AggregateFunction::Count {
        AggregateQuery::count()
    } else {
        AggregateQuery::over(schema, function, "Salary").unwrap()
    };
    if filtered {
        base.filtered(schema, "Dept", Value::name("d0")).unwrap()
    } else {
        base
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Key-induced conflicts always form a clique partition, and on them the closed form
    /// agrees with the enumeration-based evaluator for every aggregate (and selection)
    /// it supports.
    #[test]
    fn closed_form_agrees_with_enumeration(rows in rows_strategy(), filtered in any::<bool>()) {
        let ctx = employee_context(&rows);
        prop_assert!(is_clique_partition(ctx.graph()));
        let empty = ctx.empty_priority();
        let family = FamilyKind::Rep.family();
        for function in functions() {
            let query = query_for(&ctx, function, filtered);
            match range_closed_form(&ctx, &query) {
                Err(_) => continue, // AVG under a skippable selection: enumeration only.
                Ok(closed) => {
                    let brute = range_by_enumeration(&ctx, &empty, family.as_ref(), &query);
                    prop_assert_eq!(closed.glb, brute.glb, "{} glb", function);
                    prop_assert_eq!(closed.lub, brute.lub, "{} lub", function);
                    prop_assert_eq!(
                        closed.undefined_somewhere,
                        brute.undefined_somewhere,
                        "{} definedness",
                        function
                    );
                }
            }
        }
    }

    /// Extending the priority to a total one narrows every family's range to (at most)
    /// the plain range, and the preferred range of any family is contained in Rep's.
    #[test]
    fn preferred_ranges_are_contained_in_the_plain_range(
        rows in rows_strategy(),
        seed in any::<u64>(),
    ) {
        let ctx = employee_context(&rows);
        let empty = ctx.empty_priority();
        let mut rng = StdRng::seed_from_u64(seed);
        let total = random_total_extension(&empty, &mut rng);
        let query = query_for(&ctx, AggregateFunction::Sum, false);
        let plain = range_by_enumeration(&ctx, &empty, FamilyKind::Rep.family().as_ref(), &query);
        for kind in FamilyKind::ALL {
            for priority in [&empty, &total] {
                let range =
                    range_by_enumeration(&ctx, priority, kind.family().as_ref(), &query);
                prop_assert!(range.examined >= 1, "P1: at least one preferred repair");
                if let (Some(lo), Some(hi), Some(plo), Some(phi)) =
                    (range.glb, range.lub, plain.glb, plain.lub)
                {
                    prop_assert!(lo >= plo && hi <= phi, "{} out of hull", kind.label());
                }
            }
            // Under a total priority G-Rep and C-Rep are categorical, so their range is
            // a single point.
            if matches!(kind, FamilyKind::Global | FamilyKind::Common) {
                let range =
                    range_by_enumeration(&ctx, &total, kind.family().as_ref(), &query);
                prop_assert_eq!(range.examined, 1);
                prop_assert!(range.is_exact());
            }
        }
    }

    /// COUNT(*) is invariant across repairs exactly when conflicts are key-induced, and
    /// equals the number of conflict-graph components.
    #[test]
    fn count_is_determined_by_the_component_structure(rows in rows_strategy()) {
        let ctx = employee_context(&rows);
        let query = AggregateQuery::count();
        let range = range_closed_form(&ctx, &query).unwrap();
        prop_assert!(range.is_exact());
        let components = ctx.graph().connected_components().len() as f64;
        prop_assert_eq!(range.glb, Some(components));
    }
}
