//! Property-based checks for the future-work extensions: condensing a cyclic preference
//! always yields a legal Definition 2 priority, cycle-free extension steps preserve
//! monotonicity, and the hypergraph lifting of `≪` keeps the repair-subset structure.

use std::sync::Arc;

use proptest::prelude::*;

use pdqi::constraints::ConflictHypergraph;
use pdqi::core::FamilyKind;
use pdqi::ext::{hyper_globally_optimal_repairs, CyclicPreference, HyperPriority};
use pdqi::solve::HypergraphMisEnumerator;
use pdqi::{ConflictGraph, TupleId, TupleSet};

/// A random conflict graph over `n` vertices plus a list of raw (possibly cyclic)
/// preference statements among its edges.
#[allow(clippy::type_complexity)]
fn preference_strategy() -> impl Strategy<Value = (usize, Vec<(u8, u8)>, Vec<(bool, usize)>)> {
    // (vertex count, undirected conflict edges, raw statements as (direction, edge index))
    (3usize..9).prop_flat_map(|n| {
        let edges = prop::collection::vec((0u8..n as u8, 0u8..n as u8), 1..12);
        let statements = prop::collection::vec((any::<bool>(), 0usize..24), 0..16);
        (Just(n), edges, statements)
    })
}

fn build_graph(n: usize, raw_edges: &[(u8, u8)]) -> Arc<ConflictGraph> {
    let edges: Vec<(TupleId, TupleId)> = raw_edges
        .iter()
        .filter(|(a, b)| a != b)
        .map(|&(a, b)| (TupleId(a as u32), TupleId(b as u32)))
        .collect();
    Arc::new(ConflictGraph::from_edges(n, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Condensation always produces an acyclic orientation of conflict edges, every raw
    /// statement is either kept or dropped, and acyclic inputs are kept in full.
    #[test]
    fn condensation_yields_a_legal_priority((n, edges, statements) in preference_strategy()) {
        let graph = build_graph(n, &edges);
        if graph.edge_count() == 0 {
            return Ok(());
        }
        let conflict_edges = graph.edges().to_vec();
        let mut preference = CyclicPreference::new(Arc::clone(&graph));
        for (flip, index) in statements {
            let (a, b) = conflict_edges[index % conflict_edges.len()];
            let (winner, loser) = if flip { (a, b) } else { (b, a) };
            preference.add(winner, loser).unwrap();
        }
        let (priority, report) = preference.condense();
        prop_assert!(priority.check_acyclic());
        prop_assert_eq!(report.kept_edges + report.dropped_edges, report.raw_edges);
        prop_assert_eq!(priority.edge_count(), report.kept_edges);
        // Every kept orientation was actually stated by the user.
        for (winner, loser) in priority.edges() {
            prop_assert!(preference.prefers(winner, loser));
        }
        if preference.is_acyclic() {
            prop_assert_eq!(report.dropped_edges, 0);
            prop_assert_eq!(report.cycles, 0);
        }
        prop_assert!(report.cycles <= n);
    }

    /// Hypergraph preferred repairs are always a non-empty subset of the hypergraph
    /// repairs, and they shrink (never grow) when the priority is extended edge by edge.
    #[test]
    fn hyper_preferred_repairs_are_a_shrinking_subset(
        hyperedges in prop::collection::vec(prop::collection::btree_set(0u32..6, 2..4), 1..4),
        orientations in prop::collection::vec(any::<bool>(), 0..8),
    ) {
        let edges: Vec<TupleSet> = hyperedges
            .iter()
            .map(|edge| TupleSet::from_ids(edge.iter().map(|&i| TupleId(i))))
            .collect();
        let hypergraph = ConflictHypergraph::from_hyperedges(6, edges);
        let all_repairs = HypergraphMisEnumerator::new(&hypergraph).collect(usize::MAX);
        let mut priority = HyperPriority::new(&hypergraph);
        // Walk over co-occurring pairs in a fixed order, orienting some of them.
        let mut pairs = Vec::new();
        for edge in hypergraph.hyperedges() {
            let members: Vec<TupleId> = edge.iter().collect();
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    pairs.push((members[i], members[j]));
                }
            }
        }
        let mut previous = hyper_globally_optimal_repairs(&hypergraph, &priority, usize::MAX);
        prop_assert_eq!(previous.len(), all_repairs.len());
        for (pair, flip) in pairs.iter().zip(orientations.iter()) {
            let (winner, loser) = if *flip { (pair.0, pair.1) } else { (pair.1, pair.0) };
            if priority.add(winner, loser).is_err() {
                continue; // would close a cycle: skip, the priority is unchanged
            }
            let current = hyper_globally_optimal_repairs(&hypergraph, &priority, usize::MAX);
            prop_assert!(!current.is_empty(), "P1 fails");
            for repair in &current {
                prop_assert!(hypergraph.is_maximal_independent(repair));
                prop_assert!(previous.contains(repair), "monotonicity fails");
            }
            previous = current;
        }
    }
}

/// The binary special case: when every hyperedge has exactly two tuples, the hypergraph
/// machinery coincides with the paper's G-Rep.
#[test]
fn binary_hyperedges_reduce_to_g_rep() {
    let schema = Arc::new(
        pdqi::RelationSchema::from_pairs(
            "R",
            &[("A", pdqi::ValueType::Int), ("B", pdqi::ValueType::Int)],
        )
        .unwrap(),
    );
    let instance = pdqi::RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec![pdqi::Value::int(1), pdqi::Value::int(1)],
            vec![pdqi::Value::int(1), pdqi::Value::int(2)],
            vec![pdqi::Value::int(2), pdqi::Value::int(1)],
            vec![pdqi::Value::int(2), pdqi::Value::int(2)],
        ],
    )
    .unwrap();
    let fds = pdqi::FdSet::parse(Arc::clone(&schema), &["A -> B"]).unwrap();
    let ctx = pdqi::RepairContext::new(instance, fds);
    // The same conflicts as a hypergraph with binary hyperedges.
    let hyperedges: Vec<TupleSet> =
        ctx.graph().edges().iter().map(|&(a, b)| TupleSet::from_ids([a, b])).collect();
    let hypergraph = ConflictHypergraph::from_hyperedges(ctx.instance().len(), hyperedges);
    let pairs = [(TupleId(0), TupleId(1)), (TupleId(3), TupleId(2))];
    let graph_priority = ctx.priority_from_pairs(&pairs).unwrap();
    let hyper_priority = HyperPriority::from_pairs(&hypergraph, &pairs).unwrap();
    let mut from_graph =
        FamilyKind::Global.family().preferred_repairs(&ctx, &graph_priority, usize::MAX);
    let mut from_hyper = hyper_globally_optimal_repairs(&hypergraph, &hyper_priority, usize::MAX);
    let key = |s: &TupleSet| s.iter().map(|t| t.0).collect::<Vec<_>>();
    from_graph.sort_by_key(key);
    from_hyper.sort_by_key(key);
    assert_eq!(from_graph, from_hyper);
}
