//! The scatter-gather coordinator end to end: bit-identity to single-snapshot
//! execution across shard counts, mutation routing, failure surfacing, and
//! generation-vector monotonicity.
//!
//! The pinned acceptance property is the coordinator's whole reason to exist: for
//! every query family and both semantics, a coordinator over 2, 3 or 4 key-range
//! shards answers **bit-identically** (rows, order, verdicts, examined counts) to
//! executing the same prepared query on one snapshot holding all the rows — and the
//! identity survives interleaved cross-shard INSERT/DELETE and priority revisions.

use std::sync::Arc;

use pdqi::datagen::{key_range_split, multi_chain_instance};
use pdqi::server::{
    coordinate, serve, Client, ClientError, CoordinatorConfig, CoordinatorHandle, ExecMode,
    ExecOutcome, ServerConfig, ServerHandle,
};
use pdqi::{
    EngineBuilder, EngineSnapshot, FamilyKind, FdSet, PreparedQuery, RelationInstance, RouteSpec,
    Semantics, ShardPlan, SnapshotRegistry, TupleId, Value,
};

const FAMILIES: [FamilyKind; 5] = [
    FamilyKind::Rep,
    FamilyKind::Local,
    FamilyKind::SemiGlobal,
    FamilyKind::Global,
    FamilyKind::Common,
];

/// Free-variable queries the coordinator can distribute (one positive atom each).
const OPEN_QUERIES: [(&str, &str); 2] =
    [("open_a", "EXISTS b,c,d . R(x,b,c,d)"), ("open_bd", "EXISTS a,c . R(a,x,c,y)")];

/// Closed queries: one ground (the `ALL` fast path answers it with `examined=0`) and
/// one quantified (merged through per-shard `PROFILE` folds).
const CLOSED_QUERIES: [(&str, &str); 2] =
    [("ground", "R(0,0,1000000,1)"), ("closed_q", "EXISTS b,c,d . R(1,b,c,d)")];

/// A running cluster: one serving process (thread) per shard plus the coordinator.
struct Cluster {
    shard_handles: Vec<ServerHandle>,
    shard_addrs: Vec<String>,
    coordinator: CoordinatorHandle,
}

impl Cluster {
    /// Serves each part on its own loopback endpoint and a coordinator over them.
    fn launch(parts: &[RelationInstance], fds: &FdSet, plan: &ShardPlan) -> Cluster {
        let mut shard_handles = Vec::new();
        let mut shard_addrs = Vec::new();
        for part in parts {
            let snapshot =
                EngineBuilder::new().relation(part.clone(), fds.clone()).build().unwrap();
            let registry = SnapshotRegistry::shared();
            registry.publish("R", snapshot);
            let handle = serve("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
            shard_addrs.push(handle.local_addr().to_string());
            shard_handles.push(handle);
        }
        let route = RouteSpec {
            table: "R".to_string(),
            key_column: "A".to_string(),
            splits: plan.splits().iter().map(Value::to_string).collect(),
        };
        let coordinator =
            coordinate("127.0.0.1:0", &shard_addrs, &[route], CoordinatorConfig::default())
                .unwrap();
        Cluster { shard_handles, shard_addrs, coordinator }
    }

    fn client(&self) -> Client {
        Client::connect(self.coordinator.local_addr()).unwrap()
    }

    fn stop(self) {
        self.coordinator.shutdown();
        for handle in self.shard_handles {
            handle.shutdown();
        }
    }
}

/// The single-snapshot mirror the coordinator must match: all tracked rows, in
/// shard-concatenation order (which is exactly the coordinator's global id space).
fn mirror_snapshot(tracked: &[Vec<Vec<Value>>], fds: &FdSet) -> EngineSnapshot {
    let rows: Vec<Vec<Value>> = tracked.iter().flatten().cloned().collect();
    let schema = Arc::clone(fds.schema());
    let instance = RelationInstance::from_rows(schema, rows).unwrap();
    EngineBuilder::new().relation(instance, fds.clone()).build().unwrap()
}

fn verdict_of(outcome: &pdqi::CqaOutcome) -> &'static str {
    if outcome.certainly_true {
        "true"
    } else if outcome.certainly_false {
        "false"
    } else {
        "undetermined"
    }
}

/// Asserts every family × semantics × query answered through `client` equals direct
/// execution on `mirror`, bit for bit.
fn assert_bit_identical(client: &mut Client, mirror: &EngineSnapshot, context: &str) {
    for family in FAMILIES {
        for (id, text) in OPEN_QUERIES {
            for (mode, semantics) in
                [(ExecMode::Certain, Semantics::Certain), (ExecMode::Possible, Semantics::Possible)]
            {
                let (outcome, _) = client.exec(id, family, mode).unwrap();
                let direct =
                    PreparedQuery::parse(text).unwrap().execute(mirror, family, semantics).unwrap();
                let expected: Vec<Vec<String>> = direct
                    .rows()
                    .iter()
                    .map(|row| row.iter().map(Value::to_string).collect())
                    .collect();
                assert_eq!(
                    outcome,
                    ExecOutcome::Rows { columns: direct.columns().to_vec(), rows: expected },
                    "{context}: {id} {} {mode:?}",
                    family.label()
                );
            }
        }
        for (id, text) in CLOSED_QUERIES {
            let (outcome, _) = client.exec(id, family, ExecMode::Closed).unwrap();
            let direct =
                PreparedQuery::parse(text).unwrap().consistent_answer(mirror, family).unwrap();
            assert_eq!(
                outcome,
                ExecOutcome::Outcome {
                    verdict: verdict_of(&direct).to_string(),
                    examined: direct.examined as u64,
                },
                "{context}: {id} {}",
                family.label()
            );
        }
    }
}

fn as_strings(row: &[Value]) -> Vec<String> {
    row.iter().map(Value::to_string).collect()
}

/// The global (mirror) tuple id of `row` within the tracked shard-concatenation.
fn global_id_of(tracked: &[Vec<Vec<Value>>], row: &[Value]) -> u32 {
    let mut id = 0u32;
    for shard in tracked {
        for held in shard {
            if held == row {
                return id;
            }
            id += 1;
        }
    }
    panic!("row {row:?} is not tracked");
}

#[test]
fn coordinator_answers_are_bit_identical_across_shard_counts() {
    // 4 chains of 3 rows: enough for 4 shards (3 chain boundaries) and real conflicts,
    // small enough that the two-free-variable mirror executions stay fast in debug.
    let (instance, fds) = multi_chain_instance(4, 3);
    for shards in [2usize, 3, 4] {
        let (parts, plan) = key_range_split(&instance, &fds, "A", shards).unwrap();
        let cluster = Cluster::launch(&parts, &fds, &plan);
        let mut client = cluster.client();
        for (id, text) in OPEN_QUERIES.iter().chain(CLOSED_QUERIES.iter()) {
            client.prepare(id, text).unwrap();
        }

        // Tracked per-shard rows: the model of what each shard serves. The mirror is
        // their concatenation — one snapshot over all rows in shard order.
        let mut tracked: Vec<Vec<Vec<Value>>> = parts
            .iter()
            .map(|part| part.iter().map(|(_, tuple)| tuple.values().to_vec()).collect())
            .collect();
        assert_bit_identical(
            &mut client,
            &mirror_snapshot(&tracked, &fds),
            &format!("{shards} shards, initial"),
        );

        // Cross-shard INSERT in one request: a conflicting row on the first shard
        // (duplicate A-key of chain 0) and a conflict-free row on the last shard.
        let conflicting = vec![Value::int(0), Value::int(7), Value::int(5_000_000), Value::int(0)];
        let last_key = tracked.last().unwrap()[0][0].clone();
        let fresh = vec![last_key.clone(), Value::int(9), Value::int(5_000_001), Value::int(9)];
        let (inserted, _) =
            client.insert("R", &[as_strings(&conflicting), as_strings(&fresh)]).unwrap();
        assert_eq!(inserted, 2);
        tracked[0].push(conflicting.clone());
        tracked[shards - 1].push(fresh.clone());
        assert_bit_identical(
            &mut client,
            &mirror_snapshot(&tracked, &fds),
            &format!("{shards} shards, after insert"),
        );

        // A priority revision through the coordinator: global ids against the tracked
        // concatenation, translated to per-shard local ids by the coordinator. The
        // inserted conflicting row beats both chain-0 rows it conflicts with.
        let winner = global_id_of(&tracked, &conflicting);
        let pairs = [
            (winner, global_id_of(&tracked, &tracked[0][0].clone())),
            (winner, global_id_of(&tracked, &tracked[0][1].clone())),
        ];
        client.set_priority("R", &pairs).unwrap();
        let prioritised = {
            let base = mirror_snapshot(&tracked, &fds);
            let typed: Vec<(TupleId, TupleId)> =
                pairs.iter().map(|&(w, l)| (TupleId(w), TupleId(l))).collect();
            base.with_priority_pairs(&typed).unwrap()
        };
        assert_bit_identical(
            &mut client,
            &prioritised,
            &format!("{shards} shards, after priority"),
        );

        // Cross-shard DELETE of both inserted rows in one request: the priority pairs
        // reference the deleted winner, so clear the priority first (same replace
        // semantics on the mirror: an empty pair list).
        client.set_priority("R", &[]).unwrap();
        let (deleted, _) =
            client.delete("R", &[as_strings(&conflicting), as_strings(&fresh)]).unwrap();
        assert_eq!(deleted, 2);
        tracked[0].pop();
        tracked[shards - 1].pop();
        assert_bit_identical(
            &mut client,
            &mirror_snapshot(&tracked, &fds),
            &format!("{shards} shards, after delete"),
        );

        cluster.stop();
    }
}

#[test]
fn mutations_route_to_the_owning_shard_only() {
    let (instance, fds) = multi_chain_instance(4, 4);
    let (parts, plan) = key_range_split(&instance, &fds, "A", 2).unwrap();
    let cluster = Cluster::launch(&parts, &fds, &plan);
    let mut coord = cluster.client();
    let mut shard0 = Client::connect(cluster.shard_addrs[0].as_str()).unwrap();
    let mut shard1 = Client::connect(cluster.shard_addrs[1].as_str()).unwrap();
    let before = (shard0.describe("R").unwrap().rows, shard1.describe("R").unwrap().rows);

    // A key in the second shard's range: only shard 1 gains a row.
    let high_key = parts[1].iter().next().unwrap().1.values()[0].clone();
    let row = vec![high_key, Value::int(9), Value::int(6_000_000), Value::int(9)];
    let (inserted, _) = coord.insert("R", &[as_strings(&row)]).unwrap();
    assert_eq!(inserted, 1);
    assert_eq!(shard0.describe("R").unwrap().rows, before.0, "shard 0 must be untouched");
    assert_eq!(shard1.describe("R").unwrap().rows, before.1 + 1);

    // The coordinator's own DESCRIBE sums the shards.
    let described = coord.describe("R").unwrap();
    assert_eq!(described.rows, before.0 + before.1 + 1);
    assert_eq!(described.columns.len(), 4);

    // Cross-shard priority pairs are rejected outright: such tuples never conflict.
    let crossing = coord.set_priority("R", &[(0, before.0 as u32)]);
    let Err(ClientError::Server(message)) = crossing else {
        panic!("a cross-shard priority pair must be rejected, got {crossing:?}");
    };
    assert!(message.contains("crosses shards"), "{message}");

    cluster.stop();
}

#[test]
fn a_dead_shard_surfaces_as_an_error_naming_it() {
    let (instance, fds) = multi_chain_instance(4, 4);
    let (parts, plan) = key_range_split(&instance, &fds, "A", 2).unwrap();
    let mut cluster = Cluster::launch(&parts, &fds, &plan);
    let mut client = cluster.client();
    client.prepare("q", "EXISTS b,c,d . R(x,b,c,d)").unwrap();
    client.exec("q", FamilyKind::Global, ExecMode::Certain).unwrap();

    // Kill shard 1; the scatter must fail loudly, naming the dead endpoint, rather
    // than silently answering from the surviving shard.
    cluster.shard_handles.remove(1).shutdown();
    let result = client.exec("q", FamilyKind::Global, ExecMode::Certain);
    let Err(ClientError::Server(message)) = result else {
        panic!("a dead shard must surface as an error, got {result:?}");
    };
    assert!(message.contains("shard 1"), "{message}");
    assert!(message.contains(&cluster.shard_addrs[1]), "{message}");

    // Mutations routed to the dead shard fail the same way; the coordinator itself
    // stays up and still answers PING.
    let dead_key = parts[1].iter().next().unwrap().1.values()[0].clone();
    let row = vec![dead_key, Value::int(9), Value::int(7_000_000), Value::int(9)];
    assert!(client.insert("R", &[as_strings(&row)]).is_err());
    client.ping().unwrap();

    cluster.stop();
}

#[test]
fn generation_vectors_are_per_shard_monotone_under_a_concurrent_writer() {
    let (instance, fds) = multi_chain_instance(4, 4);
    let (parts, plan) = key_range_split(&instance, &fds, "A", 2).unwrap();
    let cluster = Cluster::launch(&parts, &fds, &plan);
    let mut setup = cluster.client();
    setup.prepare("q", "EXISTS b,c,d . R(x,b,c,d)").unwrap();
    let low_key = parts[0].iter().next().unwrap().1.values()[0].clone();
    let high_key = parts[1].iter().next().unwrap().1.values()[0].clone();

    std::thread::scope(|scope| {
        // The writer alternates shards through the coordinator, each round a fresh row.
        let writer = scope.spawn(|| {
            let mut client = cluster.client();
            for round in 0..12i64 {
                let key = if round % 2 == 0 { low_key.clone() } else { high_key.clone() };
                let row = vec![key, Value::int(9), Value::int(8_000_000 + round), Value::int(9)];
                client.insert("R", &[as_strings(&row)]).unwrap();
                client.delete("R", &[as_strings(&row)]).unwrap();
            }
        });
        // The reader parses the per-shard generation vector off every response head;
        // each component must be non-decreasing even while the writer swaps shards.
        let reader = scope.spawn(|| {
            let mut client = cluster.client();
            let mut last = [0u64; 2];
            for _ in 0..40 {
                let response = client.request_raw("EXEC q ALL CERTAIN").unwrap();
                let head = response.lines().next().unwrap();
                let gens: Vec<u64> = head
                    .split_whitespace()
                    .find_map(|token| token.strip_prefix("gens="))
                    .unwrap_or_else(|| panic!("no gens= vector in `{head}`"))
                    .split(',')
                    .map(|g| g.parse().unwrap())
                    .collect();
                assert_eq!(gens.len(), 2, "{head}");
                for (shard, (&now, seen)) in gens.iter().zip(last.iter_mut()).enumerate() {
                    assert!(
                        now >= *seen,
                        "shard {shard} generation went backwards ({now} after {seen})"
                    );
                    *seen = now;
                }
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
    cluster.stop();
}
