//! Cross-checks between independently implemented consistent-query-answering procedures:
//! the polynomial ground-query algorithm vs. naive repair enumeration, the engine's fast
//! path vs. the generic path, and the SAT reduction vs. the DPLL oracle.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pdqi::core::cqa::preferred_consistent_answer;
use pdqi::core::cqa_ground::ground_consistent_answer;
use pdqi::core::AllRepairs;
use pdqi::datagen::{random_3cnf, random_conflict_instance, random_ground_query};
use pdqi::solve::cqa_instance_from_3sat;
use pdqi::{EngineBuilder, EngineSnapshot, FamilyKind, PreparedQuery, RepairContext, Semantics};

fn snapshot_of(instance: pdqi::RelationInstance, fds: pdqi::FdSet) -> EngineSnapshot {
    EngineBuilder::new().relation(instance, fds).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The polynomial-time ground-query algorithm agrees with naive repair enumeration.
    #[test]
    fn ground_cqa_agrees_with_enumeration(seed in 0u64..1_000, n in 3usize..12, literals in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, fds) = random_conflict_instance(n, 0.8, &mut rng);
        let ctx = RepairContext::new(instance, fds);
        let query = random_ground_query(ctx.instance(), literals, &mut rng);
        let fast = ground_consistent_answer(&ctx, &query).unwrap();
        let empty = ctx.empty_priority();
        let naive = preferred_consistent_answer(&ctx, &empty, &AllRepairs, &query)
            .unwrap()
            .certainly_true;
        prop_assert_eq!(fast, naive, "disagreement on {}", query);
    }

    /// The engine's automatic fast path produces the same outcome as forcing the generic
    /// enumeration through a non-Rep family with the empty priority (P3 makes them the
    /// same set of repairs).
    #[test]
    fn engine_fast_path_matches_generic_path(seed in 0u64..1_000, n in 3usize..10, literals in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, fds) = random_conflict_instance(n, 0.7, &mut rng);
        let snapshot = snapshot_of(instance, fds);
        let query = random_ground_query(snapshot.context().instance(), literals, &mut rng);
        let prepared = PreparedQuery::from_formula(query);
        let fast = prepared.consistent_answer(&snapshot, FamilyKind::Rep).unwrap();
        let generic = prepared.consistent_answer(&snapshot, FamilyKind::Global).unwrap();
        prop_assert_eq!(fast.certainly_true, generic.certainly_true);
        prop_assert_eq!(fast.certainly_false, generic.certainly_false);
    }
}

/// The reduction's defining property checked against the DPLL oracle on random 3-CNF
/// formulas around the satisfiability threshold (small sizes keep enumeration feasible).
#[test]
fn sat_reduction_agrees_with_the_dpll_oracle() {
    let mut rng = StdRng::seed_from_u64(2006);
    for case in 0..10 {
        let variables = 4 + case % 3;
        let clauses = variables * 4;
        let formula = random_3cnf(variables, clauses, &mut rng);
        let reduction = cqa_instance_from_3sat(&formula);
        let ctx = RepairContext::new(reduction.instance.clone(), reduction.fds.clone());
        let empty = ctx.empty_priority();
        let outcome =
            preferred_consistent_answer(&ctx, &empty, &AllRepairs, &reduction.query).unwrap();
        assert_eq!(
            outcome.certainly_true,
            !formula.solve().is_sat(),
            "reduction and oracle disagree on case {case}"
        );
    }
}

/// Open-query certain answers shrink (or stay equal) as the family becomes more
/// selective, mirroring the inclusion chain of the families.
#[test]
fn certain_answers_grow_with_more_selective_families() {
    let mut rng = StdRng::seed_from_u64(99);
    let (instance, fds) = random_conflict_instance(10, 0.8, &mut rng);
    let scores: Vec<i64> = (0..instance.len() as i64).collect();
    let snapshot =
        EngineBuilder::new().relation(instance, fds).priority_from_scores(&scores).build().unwrap();
    let query = pdqi::query::builder::exists(
        &["b", "c"],
        pdqi::query::builder::atom(
            "R",
            vec![
                pdqi::query::builder::var("a"),
                pdqi::query::builder::var("b"),
                pdqi::query::builder::var("c"),
            ],
        ),
    );
    // Fewer preferred repairs ⇒ the intersection of answer sets can only grow.
    let prepared = PreparedQuery::from_formula(query);
    let answers = |kind: FamilyKind| -> Vec<Vec<pdqi::Value>> {
        prepared.execute(&snapshot, kind, Semantics::Certain).unwrap().collect()
    };
    let rep = answers(FamilyKind::Rep);
    let global = answers(FamilyKind::Global);
    let common = answers(FamilyKind::Common);
    for row in &rep {
        assert!(global.contains(row), "a Rep-certain answer must stay certain under G-Rep");
    }
    for row in &global {
        assert!(common.contains(row), "a G-certain answer must stay certain under C-Rep");
    }
}
