//! End-to-end test of the SQL front end against the core engine: the same scenario
//! expressed through SQL statements and through the programmatic API must agree.

use std::sync::Arc;

use pdqi::priority::SourceOrder;
use pdqi::sql::{Session, StatementOutcome};
use pdqi::{
    EngineBuilder, FamilyKind, FdSet, PreparedQuery, RelationInstance, RelationSchema, Semantics,
    Value, ValueType,
};

fn rows(outcome: StatementOutcome) -> Vec<Vec<Value>> {
    match outcome {
        StatementOutcome::Rows(result) => result.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn sql_and_programmatic_answers_agree_on_the_paper_scenario() {
    // --- SQL side -------------------------------------------------------------------
    let mut session = Session::new();
    session
        .execute_script(
            "CREATE TABLE Mgr (Name TEXT, Dept TEXT, Salary INT, Reports INT);\
             ALTER TABLE Mgr ADD FD Dept -> Name Salary Reports;\
             ALTER TABLE Mgr ADD FD Name -> Dept Salary Reports;\
             INSERT INTO Mgr VALUES ('Mary', 'R&D', 40, 3), ('John', 'R&D', 10, 2);\
             INSERT INTO Mgr VALUES ('Mary', 'IT', 20, 1), ('John', 'PR', 30, 4);\
             PREFER ('Mary', 'R&D', 40, 3) OVER ('Mary', 'IT', 20, 1) IN Mgr;\
             PREFER ('John', 'R&D', 10, 2) OVER ('John', 'PR', 30, 4) IN Mgr",
        )
        .unwrap();
    let sql_depts = rows(session.execute("SELECT Dept FROM Mgr WITH REPAIRS GLOBAL").unwrap());

    // --- programmatic side ------------------------------------------------------------
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
        .unwrap();
    let mut order = SourceOrder::new();
    order.prefer("s1", "s3").prefer("s2", "s3");
    let sources = vec!["s1".to_string(), "s2".to_string(), "s3".to_string(), "s3".to_string()];
    let snapshot = EngineBuilder::new()
        .relation(instance, fds)
        .priority_from_sources(&sources, &order)
        .build()
        .unwrap();
    let query = PreparedQuery::parse("EXISTS n,s,r . Mgr(n,d,s,r)").unwrap();
    let api_depts: Vec<Vec<Value>> =
        query.execute(&snapshot, FamilyKind::Global, Semantics::Certain).unwrap().collect();

    // Both report exactly {R&D} as the certainly-managed department.
    assert_eq!(sql_depts, vec![vec![Value::name("R&D")]]);
    assert_eq!(api_depts, vec![vec![Value::name("R&D")]]);

    // The SQL session's published snapshot agrees with the programmatic snapshot on
    // repair counts and preferred repairs.
    let sql_snapshot = session.snapshot("Mgr").unwrap();
    assert_eq!(sql_snapshot.count_repairs(), snapshot.count_repairs());
    assert_eq!(
        sql_snapshot.preferred_repairs(FamilyKind::Global, 10).len(),
        snapshot.preferred_repairs(FamilyKind::Global, 10).len()
    );
}

#[test]
fn plain_sql_select_matches_direct_evaluation() {
    let mut session = Session::new();
    session
        .execute_script(
            "CREATE TABLE T (A INT, B INT);\
             ALTER TABLE T ADD FD A -> B;\
             INSERT INTO T VALUES (1, 1), (1, 2), (2, 5)",
        )
        .unwrap();
    // Plain evaluation sees everything, including both conflicting tuples.
    let all = rows(session.execute("SELECT A, B FROM T").unwrap());
    assert_eq!(all.len(), 3);
    // Under classic CQA only the non-conflicting tuple is certain.
    let certain = rows(session.execute("SELECT A, B FROM T WITH REPAIRS ALL").unwrap());
    assert_eq!(certain, vec![vec![Value::int(2), Value::int(5)]]);
    // Column-to-column comparisons work in WHERE.
    let diagonal = rows(session.execute("SELECT A FROM T WHERE A = B").unwrap());
    assert_eq!(diagonal, vec![vec![Value::int(1)]]);
}
