//! Integration tests replaying every worked example and figure of the paper end to end,
//! through the public façade API only.

use std::sync::Arc;

use pdqi::core::clean_with_total_priority;
use pdqi::priority::priority_from_source_reliability;
use pdqi::priority::SourceOrder;
use pdqi::{
    ConflictGraph, EngineBuilder, EngineSnapshot, FamilyKind, FdSet, PreparedQuery,
    RelationInstance, RelationSchema, TupleId, TupleSet, Value, ValueType,
};

const Q1: &str =
    "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";
const Q2: &str = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2";

fn mgr_schema() -> Arc<RelationSchema> {
    Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .unwrap(),
    )
}

fn example1_snapshot() -> EngineSnapshot {
    let schema = mgr_schema();
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
        .unwrap();
    EngineBuilder::new().relation(instance, fds).build().unwrap()
}

/// The Example 3 reliability priority (`s3` below `s1` and `s2`) over a snapshot's
/// conflict graph.
fn example3_priority(snapshot: &EngineSnapshot) -> pdqi::Priority {
    let mut order = SourceOrder::new();
    order.prefer("s1", "s3").prefer("s2", "s3");
    let sources = vec!["s1".to_string(), "s2".to_string(), "s3".to_string(), "s3".to_string()];
    priority_from_source_reliability(Arc::clone(snapshot.graph()), &sources, &order)
}

fn answer(snapshot: &EngineSnapshot, query: &str, kind: FamilyKind) -> pdqi::CqaOutcome {
    PreparedQuery::parse(query).unwrap().consistent_answer(snapshot, kind).unwrap()
}

#[test]
fn example_1_the_integrated_instance_has_three_conflicts_and_a_misleading_q1() {
    let snapshot = example1_snapshot();
    assert!(!snapshot.is_consistent());
    assert_eq!(snapshot.graph().edge_count(), 3);
    // Evaluating Q1 directly over the inconsistent instance yields the misleading `true`.
    let direct = pdqi::Evaluator::with_relation(snapshot.context().instance())
        .eval_closed(&pdqi::parse_formula(Q1).unwrap())
        .unwrap();
    assert!(direct);
}

#[test]
fn example_2_the_three_repairs_and_the_classic_consistent_answer_to_q1() {
    let snapshot = example1_snapshot();
    assert_eq!(snapshot.count_repairs(), 3);
    let outcome = answer(&snapshot, Q1, FamilyKind::Rep);
    assert!(!outcome.certainly_true, "true is not a consistent answer to Q1");
}

#[test]
fn example_3_partial_reliability_makes_q2_certainly_true_under_preferred_repairs() {
    let snapshot = example1_snapshot();
    // Without preferences neither true nor false is a consistent answer to Q2.
    let before = answer(&snapshot, Q2, FamilyKind::Rep);
    assert!(before.is_undetermined());

    // Revising the priority derives a snapshot sharing the graph and components.
    let revised = snapshot.with_priority(example3_priority(&snapshot)).unwrap();

    // The preferred repairs are r1 and r2 of Example 2 (r3 uses only the unreliable s3).
    let preferred = revised.preferred_repairs(FamilyKind::Global, 10);
    assert_eq!(preferred.len(), 2);
    let r3 = TupleSet::from_ids([TupleId(2), TupleId(3)]);
    assert!(!preferred.contains(&r3));

    let after = answer(&revised, Q2, FamilyKind::Global);
    assert!(after.certainly_true, "true is the preferred consistent answer to Q2");
}

#[test]
fn example_4_and_figure_1_the_repair_space_is_two_to_the_n() {
    let schema = Arc::new(
        RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap(),
    );
    for n in [1i64, 4, 12] {
        let mut rows = Vec::new();
        for i in 0..n {
            rows.push(vec![Value::int(i), Value::int(0)]);
            rows.push(vec![Value::int(i), Value::int(1)]);
        }
        let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
        let fds = FdSet::parse(Arc::clone(&schema), &["A -> B"]).unwrap();
        let graph = ConflictGraph::build(&instance, &fds);
        // Figure 1: the conflict graph is a perfect matching of n edges.
        assert_eq!(graph.edge_count(), n as usize);
        assert_eq!(graph.max_degree(), 1);
        let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
        assert_eq!(snapshot.count_repairs(), 1u128 << n);
    }
    // A consistent relation has exactly one repair: itself.
    let consistent = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![vec![Value::int(0), Value::int(0)], vec![Value::int(1), Value::int(1)]],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
    let snapshot = EngineBuilder::new().relation(consistent, fds).build().unwrap();
    assert_eq!(snapshot.count_repairs(), 1);
}

#[test]
fn example_7_and_figure_2_local_optimality_uses_the_priority_on_a_key_relation() {
    let schema = Arc::new(
        RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec![Value::int(1), Value::int(1)], // ta
            vec![Value::int(1), Value::int(2)], // tb
            vec![Value::int(1), Value::int(3)], // tc
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
    let snapshot = EngineBuilder::new()
        .relation(instance, fds)
        .priority_pairs(&[(TupleId(0), TupleId(2)), (TupleId(0), TupleId(1))])
        .build()
        .unwrap();
    // Figure 2: the conflict graph is a triangle; the three singletons are the repairs.
    assert_eq!(snapshot.graph().edge_count(), 3);
    assert_eq!(snapshot.count_repairs(), 3);
    // Only r1 = {ta} is locally preferred.
    assert_eq!(
        snapshot.preferred_repairs(FamilyKind::Local, 10),
        vec![TupleSet::from_ids([TupleId(0)])]
    );
}

#[test]
fn example_8_and_figure_3_non_categoricity_of_l_rep_but_not_of_s_rep() {
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "R",
            &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
        )
        .unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec![Value::int(1), Value::int(1), Value::int(1)], // ta
            vec![Value::int(1), Value::int(1), Value::int(2)], // tb
            vec![Value::int(1), Value::int(2), Value::int(3)], // tc
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
    let snapshot = EngineBuilder::new()
        .relation(instance, fds)
        .priority_pairs(&[(TupleId(2), TupleId(0)), (TupleId(2), TupleId(1))])
        .build()
        .unwrap();
    assert!(snapshot.priority().is_total());
    // Figure 3: tc conflicts with both ta and tb; the repairs are {ta,tb} and {tc}.
    assert_eq!(snapshot.count_repairs(), 2);
    // Both repairs are locally optimal (P4 fails for L-Rep) ...
    assert_eq!(snapshot.preferred_repairs(FamilyKind::Local, 10).len(), 2);
    // ... but S-Rep, G-Rep and C-Rep all select only {tc}.
    let tc_only = vec![TupleSet::from_ids([TupleId(2)])];
    assert_eq!(snapshot.preferred_repairs(FamilyKind::SemiGlobal, 10), tc_only);
    assert_eq!(snapshot.preferred_repairs(FamilyKind::Global, 10), tc_only);
    assert_eq!(snapshot.preferred_repairs(FamilyKind::Common, 10), tc_only);
}

#[test]
fn example_9_and_figure_4_the_path_conflict_graph_and_the_family_hierarchy() {
    // The literal tuple data of Example 9 (see EXPERIMENTS.md for the erratum note: the
    // printed repair list of the paper omits two of the path's maximal independent sets).
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "R",
            &[
                ("A", ValueType::Int),
                ("B", ValueType::Int),
                ("C", ValueType::Int),
                ("D", ValueType::Int),
            ],
        )
        .unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec![Value::int(1), Value::int(1), Value::int(0), Value::int(0)], // ta
            vec![Value::int(1), Value::int(2), Value::int(1), Value::int(1)], // tb
            vec![Value::int(2), Value::int(1), Value::int(1), Value::int(2)], // tc
            vec![Value::int(2), Value::int(2), Value::int(2), Value::int(1)], // td
            vec![Value::int(0), Value::int(0), Value::int(2), Value::int(2)], // te
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["A -> B", "C -> D"]).unwrap();
    let snapshot = EngineBuilder::new()
        .relation(instance, fds)
        .priority_pairs(&[
            (TupleId(0), TupleId(1)),
            (TupleId(1), TupleId(2)),
            (TupleId(2), TupleId(3)),
            (TupleId(3), TupleId(4)),
        ])
        .build()
        .unwrap();
    // Figure 4: the conflict graph is the path ta – tb – tc – td – te.
    assert_eq!(snapshot.graph().edge_count(), 4);
    assert_eq!(snapshot.graph().max_degree(), 2);
    // The paper's r1 and r2 are repairs; the alternating r1 is the preferred one for
    // every optimality-based family, and Algorithm 1 computes exactly r1.
    let r1 = TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(4)]);
    let r2 = TupleSet::from_ids([TupleId(1), TupleId(3)]);
    let repairs = snapshot.repairs(10);
    assert!(repairs.contains(&r1) && repairs.contains(&r2));
    assert_eq!(snapshot.preferred_repairs(FamilyKind::Global, 10), vec![r1.clone()]);
    assert_eq!(snapshot.preferred_repairs(FamilyKind::Common, 10), vec![r1.clone()]);
    let cleaned = clean_with_total_priority(snapshot.graph(), snapshot.priority()).unwrap();
    assert_eq!(cleaned, r1);
}

#[test]
fn figure_5_family_inclusion_chain_on_the_motivating_instance() {
    // C-Rep ⊆ G-Rep ⊆ S-Rep ⊆ L-Rep ⊆ Rep under the Example 3 priority.
    let base = example1_snapshot();
    let snapshot = base.with_priority(example3_priority(&base)).unwrap();
    let by_kind: Vec<Vec<TupleSet>> =
        FamilyKind::ALL.iter().map(|kind| snapshot.preferred_repairs(*kind, 100)).collect();
    let [rep, local, semi, global, common] = &by_kind[..] else { unreachable!() };
    for set in local {
        assert!(rep.contains(set));
    }
    for set in semi {
        assert!(local.contains(set));
    }
    for set in global {
        assert!(semi.contains(set));
    }
    for set in common {
        assert!(global.contains(set));
    }
}
