//! A minimal, dependency-free stand-in for the `criterion` benchmarking crate.
//!
//! The build environment of this repository has no access to a crate registry, so the
//! workspace vendors the slice of the criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark warms up for the configured
//! warm-up time, then runs timed batches until the measurement time is spent, and the
//! mean, minimum and maximum per-iteration wall-clock times are printed in a
//! criterion-like format. Passing `--test` (as `cargo test` does for bench targets) or
//! setting `CRITERION_SMOKE=1` runs every benchmark exactly once, so benches double as
//! smoke tests (`CRITERION_SMOKE=0` or an empty value turns smoke mode back off).
//!
//! Two environment knobs support the CI bench-regression harness:
//!
//! * `CRITERION_JSON=<path>` — append one JSON line `{"id":"…","median_ns":…}` per
//!   benchmark (median of the per-batch per-iteration times; in smoke mode, the one
//!   measured run). `bench_diff collect` merges these lines into a JSON map.
//! * `CRITERION_MEASURE_MS` / `CRITERION_WARMUP_MS` — override every benchmark's
//!   measurement/warm-up budget, so CI can run the full suite briefly.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimiser from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id shown as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id shown as the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId { id: text.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { id: text }
    }
}

/// The timing loop handed to every benchmark closure.
pub struct Bencher {
    smoke: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean/min/max per-iteration nanoseconds of the last `iter` call.
    last: Option<(f64, f64, f64)>,
    /// Per-batch per-iteration nanoseconds of the last `iter` call (median source).
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics for the caller to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        if self.smoke {
            let start = Instant::now();
            black_box(routine());
            let ns = start.elapsed().as_nanos() as f64;
            self.samples.push(ns);
            self.last = Some((0.0, 0.0, 0.0));
            return;
        }
        // Warm-up: run until the warm-up budget is spent and estimate the iteration cost.
        let warm_start = Instant::now();
        black_box(routine());
        let first = warm_start.elapsed();
        // A single iteration that already exceeds the measurement budget is its own
        // measurement: long-running benches cost exactly one iteration instead of one
        // per warm-up plus one per batch.
        if first >= self.measurement_time {
            let ns = first.as_nanos() as f64;
            self.samples.push(ns);
            self.last = Some((ns, ns, ns));
            return;
        }
        let mut warm_iters = 1u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Measurement: batches of roughly 1/20th of the budget each.
        let batch = ((self.measurement_time.as_nanos() as f64 / 20.0 / est.max(1.0)) as u64)
            .clamp(1, 10_000_000);
        let deadline = Instant::now() + self.measurement_time;
        let (mut total_ns, mut total_iters) = (0f64, 0u64);
        let (mut min_ns, mut max_ns) = (f64::INFINITY, 0f64);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            let per_iter = elapsed / batch as f64;
            total_ns += elapsed;
            total_iters += batch;
            min_ns = min_ns.min(per_iter);
            max_ns = max_ns.max(per_iter);
            self.samples.push(per_iter);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.last = Some((total_ns / total_iters as f64, min_ns, max_ns));
    }

    /// The median per-iteration nanoseconds of the last `iter` call (in smoke mode, the
    /// wall-clock of the single run).
    fn median_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let mid = sorted.len() / 2;
        Some(if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        })
    }
}

/// Escapes a benchmark id for inclusion in a JSON string literal.
fn json_escape(id: &str) -> String {
    let mut out = String::with_capacity(id.len());
    for c in id.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

#[derive(Debug, Clone)]
struct Config {
    smoke: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Hard budget overrides from `CRITERION_MEASURE_MS` / `CRITERION_WARMUP_MS`.
    measure_override: Option<Duration>,
    warmup_override: Option<Duration>,
    /// Append-path for per-bench JSON lines (`CRITERION_JSON`).
    json_path: Option<std::path::PathBuf>,
}

impl Config {
    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            smoke: self.smoke,
            measurement_time: self.measure_override.unwrap_or(self.measurement_time),
            warm_up_time: self.warmup_override.unwrap_or(self.warm_up_time),
            last: None,
            samples: Vec::new(),
        };
        f(&mut bencher);
        match bencher.last {
            Some(_) if self.smoke => println!("{id:<40} ... ok (smoke)"),
            Some((mean, min, max)) => println!(
                "{id:<40} time: [{} {} {}]",
                render_ns(min),
                render_ns(mean),
                render_ns(max)
            ),
            None => println!("{id:<40} ... no measurement"),
        }
        if let (Some(path), Some(median)) = (&self.json_path, bencher.median_ns()) {
            let line = format!("{{\"id\":\"{}\",\"median_ns\":{median:.1}}}\n", json_escape(id));
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut file| file.write_all(line.as_bytes()));
            if let Err(e) = appended {
                eprintln!("warning: cannot append to {}: {e}", path.display());
            }
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    config: Config,
}

/// Reads a millisecond duration from the environment (`None` when unset or invalid).
fn env_millis(name: &str) -> Option<Duration> {
    std::env::var(name).ok()?.trim().parse::<u64>().ok().map(Duration::from_millis)
}

impl Default for Criterion {
    fn default() -> Self {
        // Smoke mode: `--test` (as `cargo test` passes to bench targets), or
        // CRITERION_SMOKE set to anything but "0"/"" (so CI can override a globally
        // exported CRITERION_SMOKE=1 per step).
        let smoke_env = std::env::var("CRITERION_SMOKE")
            .map(|v| !v.trim().is_empty() && v.trim() != "0")
            .unwrap_or(false);
        let smoke = std::env::args().any(|a| a == "--test") || smoke_env;
        Criterion {
            config: Config {
                smoke,
                measurement_time: Duration::from_secs(1),
                warm_up_time: Duration::from_millis(300),
                measure_override: env_millis("CRITERION_MEASURE_MS"),
                warmup_override: env_millis("CRITERION_WARMUP_MS"),
                json_path: std::env::var_os("CRITERION_JSON").map(std::path::PathBuf::from),
            },
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.config.clone().run(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), config: self.config.clone(), _parent: self }
    }
}

/// A group of benchmarks sharing a name prefix and measurement configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) the target sample count, for API compatibility.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.config.warm_up_time = time;
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        self.config.run(&id, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        self.config.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_benchmark_once() {
        let mut criterion = Criterion::default();
        criterion.config.smoke = true;
        let mut runs = 0;
        criterion.bench_function("counter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut group = criterion.benchmark_group("group");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut with_input = 0;
        group
            .bench_with_input(BenchmarkId::new("bench", 3), &3, |b, &n| b.iter(|| with_input += n));
        group.finish();
        assert_eq!(with_input, 3);
    }

    #[test]
    fn measurement_mode_reports_statistics() {
        let mut criterion = Criterion::default();
        criterion.config.smoke = false;
        criterion.config.measurement_time = Duration::from_millis(5);
        criterion.config.warm_up_time = Duration::from_millis(1);
        let mut group = criterion.benchmark_group("g");
        let mut total = 0u64;
        group.bench_function("sum", |b| b.iter(|| total = total.wrapping_add(1)));
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn medians_come_from_the_recorded_samples() {
        let mut bencher = Bencher {
            smoke: false,
            measurement_time: Duration::from_millis(1),
            warm_up_time: Duration::from_millis(1),
            last: None,
            samples: vec![30.0, 10.0, 20.0],
        };
        assert_eq!(bencher.median_ns(), Some(20.0));
        bencher.samples = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(bencher.median_ns(), Some(25.0));
        bencher.samples.clear();
        assert_eq!(bencher.median_ns(), None);
    }

    #[test]
    fn json_ids_are_escaped() {
        assert_eq!(json_escape("plain/bench"), "plain/bench");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn smoke_mode_still_records_one_sample() {
        let mut criterion = Criterion::default();
        criterion.config.smoke = true;
        let mut ran = false;
        criterion.config.clone().run("probe", |b| {
            b.iter(|| ran = true);
            assert_eq!(b.samples.len(), 1);
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_render_name_and_parameter() {
        assert_eq!(BenchmarkId::new("check", 42).id, "check/42");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
