//! A minimal, dependency-free stand-in for the `criterion` benchmarking crate.
//!
//! The build environment of this repository has no access to a crate registry, so the
//! workspace vendors the slice of the criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark warms up for the configured
//! warm-up time, then runs timed batches until the measurement time is spent, and the
//! mean, minimum and maximum per-iteration wall-clock times are printed in a
//! criterion-like format. Passing `--test` (as `cargo test` does for bench targets) or
//! setting `CRITERION_SMOKE=1` runs every benchmark exactly once, so benches double as
//! smoke tests.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimiser from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id shown as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id shown as the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId { id: text.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { id: text }
    }
}

/// The timing loop handed to every benchmark closure.
pub struct Bencher {
    smoke: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean/min/max per-iteration nanoseconds of the last `iter` call.
    last: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics for the caller to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            black_box(routine());
            self.last = Some((0.0, 0.0, 0.0));
            return;
        }
        // Warm-up: run until the warm-up budget is spent and estimate the iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Measurement: batches of roughly 1/20th of the budget each.
        let batch = ((self.measurement_time.as_nanos() as f64 / 20.0 / est.max(1.0)) as u64)
            .clamp(1, 10_000_000);
        let deadline = Instant::now() + self.measurement_time;
        let (mut total_ns, mut total_iters) = (0f64, 0u64);
        let (mut min_ns, mut max_ns) = (f64::INFINITY, 0f64);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            let per_iter = elapsed / batch as f64;
            total_ns += elapsed;
            total_iters += batch;
            min_ns = min_ns.min(per_iter);
            max_ns = max_ns.max(per_iter);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.last = Some((total_ns / total_iters as f64, min_ns, max_ns));
    }
}

fn render_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

#[derive(Debug, Clone)]
struct Config {
    smoke: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Config {
    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            smoke: self.smoke,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            last: None,
        };
        f(&mut bencher);
        match bencher.last {
            Some(_) if self.smoke => println!("{id:<40} ... ok (smoke)"),
            Some((mean, min, max)) => println!(
                "{id:<40} time: [{} {} {}]",
                render_ns(min),
                render_ns(mean),
                render_ns(max)
            ),
            None => println!("{id:<40} ... no measurement"),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Criterion {
            config: Config {
                smoke,
                measurement_time: Duration::from_secs(1),
                warm_up_time: Duration::from_millis(300),
            },
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.config.clone().run(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), config: self.config.clone(), _parent: self }
    }
}

/// A group of benchmarks sharing a name prefix and measurement configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) the target sample count, for API compatibility.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.config.warm_up_time = time;
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        self.config.run(&id, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        self.config.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_benchmark_once() {
        let mut criterion = Criterion::default();
        criterion.config.smoke = true;
        let mut runs = 0;
        criterion.bench_function("counter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut group = criterion.benchmark_group("group");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut with_input = 0;
        group
            .bench_with_input(BenchmarkId::new("bench", 3), &3, |b, &n| b.iter(|| with_input += n));
        group.finish();
        assert_eq!(with_input, 3);
    }

    #[test]
    fn measurement_mode_reports_statistics() {
        let mut criterion = Criterion::default();
        criterion.config.smoke = false;
        criterion.config.measurement_time = Duration::from_millis(5);
        criterion.config.warm_up_time = Duration::from_millis(1);
        let mut group = criterion.benchmark_group("g");
        let mut total = 0u64;
        group.bench_function("sum", |b| b.iter(|| total = total.wrapping_add(1)));
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn benchmark_ids_render_name_and_parameter() {
        assert_eq!(BenchmarkId::new("check", 42).id, "check/42");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
