//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment of this repository has no access to a crate registry, so the
//! workspace vendors the slice of the proptest 1.x API its test suites use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]` attribute and
//!   `pattern in strategy` parameters,
//! * [`Strategy`] implemented for numeric ranges, [`Just`], tuples, `prop_flat_map` and
//!   `prop_map`, plus [`collection::vec`] / [`collection::btree_set`] and [`any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] and the [`test_runner`] plumbing they need.
//!
//! Inputs are generated from a deterministic per-case seed (override the base seed with
//! `PROPTEST_SEED`). There is **no shrinking**: a failing case reports the generated
//! value as-is, which is enough for the reproducible suites in this workspace.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Test-runner configuration (the `cases` knob is the only one the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value<R: RngCore>(&self, rng: &mut R) -> Self::Value;

    /// A strategy generating `f(v)` for values `v` of `self`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// A strategy drawing from the strategy `f(v)` built from a value `v` of `self`.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value<R: RngCore>(&self, rng: &mut R) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value<R: RngCore>(&self, rng: &mut R) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// The constant strategy: always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value<R: RngCore>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value<R: RngCore>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value<R: RngCore>(&self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value<RNG: RngCore>(&self, rng: &mut RNG) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait ArbitraryValue: Sized {
    /// Draws one uniform value.
    fn arbitrary<R: RngCore>(rng: &mut R) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn new_value<R: RngCore>(&self, rng: &mut R) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: uniform over its values.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection` in the prelude).
pub mod collection {
    use super::*;

    /// Strategy for vectors with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values of `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value<R: RngCore>(&self, rng: &mut R) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for ordered sets with a target size drawn from `len`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `BTreeSet` of values of `element` with a size in `len` (best effort: if the
    /// element domain is too small to reach the drawn size, the set is as large as the
    /// domain allows).
    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value<R: RngCore>(&self, rng: &mut R) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.len.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 64 + 16 * target {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The failure plumbing behind [`prop_assert!`] and the [`proptest!`] runner.
pub mod test_runner {
    use super::*;
    use std::fmt;

    /// A failed test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// What a property body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs `config.cases` random cases of `body` over inputs drawn from `strategy`,
    /// panicking (with the offending input) on the first failure.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        strategy: &S,
        mut body: impl FnMut(S::Value) -> TestCaseResult,
    ) where
        S::Value: fmt::Debug + Clone,
    {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5DEECE66Du64);
        for case in 0..config.cases {
            let mut rng =
                StdRng::seed_from_u64(base ^ (0x9E3779B97F4A7C15u64.wrapping_mul(case as u64 + 1)));
            let value = strategy.new_value(&mut rng);
            if let Err(error) = body(value.clone()) {
                panic!(
                    "proptest case {case}/{} failed: {error}\n    input: {value:?}\n    (re-run with PROPTEST_SEED={base})",
                    config.cases
                );
            }
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};

    /// Mirrors the `prop` module alias of the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares `#[test]` functions running a property over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                #[allow(unreachable_code)]
                $crate::test_runner::run(&config, &strategy, |($($pat,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case instead of
/// panicking so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "{left:?} != {right:?}");
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "{left:?} != {right:?}: {}", format!($($fmt)*));
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strategies_respect_their_domains() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let v = (2usize..7).new_value(&mut rng);
            assert!((2..7).contains(&v));
            let f = (0.0f64..1.0).new_value(&mut rng);
            assert!((0.0..1.0).contains(&f));
            let items = prop::collection::vec(0u8..4, 1..5).new_value(&mut rng);
            assert!(!items.is_empty() && items.len() < 5 && items.iter().all(|&i| i < 4));
            let set = prop::collection::btree_set(0u32..10, 2..4).new_value(&mut rng);
            assert!(set.len() >= 2 && set.len() < 4);
            let (just, flag) = (Just(9i32), any::<bool>()).new_value(&mut rng);
            assert_eq!(just, 9);
            let _: bool = flag;
        }
    }

    #[test]
    fn flat_map_feeds_outer_values_into_inner_strategies() {
        let mut rng = StdRng::seed_from_u64(6);
        let strategy =
            (1usize..4).prop_flat_map(|n| (Just(n), prop::collection::vec(0usize..n, 1..3)));
        for _ in 0..50 {
            let (n, items) = strategy.new_value(&mut rng);
            assert!(items.iter().all(|&i| i < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_runs_and_reports_through_prop_assert(x in 0u64..100, flip in any::<bool>()) {
            if flip {
                // Exercise the early-return path of real property bodies.
                return Ok(());
            }
            prop_assert!(x < 100, "x = {x}");
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_the_offending_input() {
        let config = ProptestConfig::with_cases(8);
        crate::test_runner::run(&config, &(0u8..10,), |(v,)| {
            crate::prop_assert!(v > 100, "v = {v}");
            Ok(())
        });
    }
}
