//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to a crate registry, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually uses:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] (the only construction path the
//!   workspace uses — every random computation here is seeded and reproducible),
//! * [`Rng::gen_range`] over half-open integer ranges, [`Rng::gen_bool`], [`Rng::gen`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is SplitMix64 feeding a xoshiro256++ state — deterministic, fast and
//! statistically solid for test-data generation, which is all this workspace needs. It is
//! **not** the same stream as the real `StdRng`, and it is not cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform value of type `T` (only the integer types the workspace samples).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the half-open range `low..high`. Panics if the range is empty,
    /// matching the real `rand`.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, as the real implementation effectively does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u64, i64, u32, i32, usize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types [`Rng::gen_range`] can sample over a half-open range.
pub trait UniformInt: Copy + PartialOrd {
    /// Draws a uniform value in `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u128;
                let offset = (rng.next_u64() as u128 % span) as $wide;
                ((range.start as $wide).wrapping_add(offset)) as $t
            }
        }
    )*};
}

uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => i8, i16 => i16, i32 => i32, i64 => i64
);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: SplitMix64-initialised xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.state = n;
            result
        }
    }
}

/// Sequence-related sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_the_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "got {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut items: Vec<u32> = (0..20).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(items.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
