//! The [`Priority`] relation (Definition 2).

use std::fmt;
use std::sync::Arc;

use pdqi_constraints::ConflictGraph;
use pdqi_relation::{TupleId, TupleSet};

/// Errors raised while building or extending a priority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriorityError {
    /// An edge was added between tuples that are not conflicting.
    NotConflicting {
        /// The dominating tuple of the rejected edge.
        winner: TupleId,
        /// The dominated tuple of the rejected edge.
        loser: TupleId,
    },
    /// Adding the edge would create a cycle in `≻`.
    WouldCreateCycle {
        /// The dominating tuple of the rejected edge.
        winner: TupleId,
        /// The dominated tuple of the rejected edge.
        loser: TupleId,
    },
    /// An edge between a tuple and itself was added.
    SelfEdge {
        /// The offending tuple.
        tuple: TupleId,
    },
    /// A tuple id was outside the conflict graph's vertex range.
    UnknownTuple {
        /// The offending tuple id.
        tuple: TupleId,
    },
}

impl fmt::Display for PriorityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityError::NotConflicting { winner, loser } => {
                write!(
                    f,
                    "{winner} and {loser} are not conflicting, so no priority may relate them"
                )
            }
            PriorityError::WouldCreateCycle { winner, loser } => {
                write!(f, "adding {winner} ≻ {loser} would make the priority cyclic")
            }
            PriorityError::SelfEdge { tuple } => write!(f, "{tuple} cannot dominate itself"),
            PriorityError::UnknownTuple { tuple } => {
                write!(f, "{tuple} is not a vertex of the conflict graph")
            }
        }
    }
}

impl std::error::Error for PriorityError {}

/// A priority `≻`: an acyclic orientation of a (subset of the) conflict graph.
///
/// The priority keeps a shared handle to the conflict graph it orients so that the
/// "defined only on conflicting tuples" invariant of Definition 2 can be enforced on
/// every insertion; acyclicity is enforced by a reachability check before each insertion.
#[derive(Clone)]
pub struct Priority {
    graph: Arc<ConflictGraph>,
    /// `dominates[x]` = the set of tuples y with `x ≻ y`.
    dominates: Vec<TupleSet>,
    /// `dominators[y]` = the set of tuples x with `x ≻ y`.
    dominators: Vec<TupleSet>,
    edge_count: usize,
}

impl Priority {
    /// The empty priority over `graph` (no conflict edge is oriented).
    pub fn empty(graph: Arc<ConflictGraph>) -> Self {
        let n = graph.vertex_count();
        Priority {
            graph,
            dominates: vec![TupleSet::with_capacity(n); n],
            dominators: vec![TupleSet::with_capacity(n); n],
            edge_count: 0,
        }
    }

    /// Builds a priority from explicit `winner ≻ loser` pairs, rejecting pairs that are
    /// not conflicting or that would create a cycle.
    pub fn from_pairs(
        graph: Arc<ConflictGraph>,
        pairs: &[(TupleId, TupleId)],
    ) -> Result<Self, PriorityError> {
        let mut priority = Priority::empty(graph);
        for &(winner, loser) in pairs {
            priority.add(winner, loser)?;
        }
        Ok(priority)
    }

    /// Builds a priority from an *arbitrary* acyclic relation on the tuples by keeping
    /// only the pairs that are conflicting (the paper notes this user-interface variant
    /// is equivalent). Pairs between non-conflicting tuples are silently dropped; cycles
    /// among the remaining pairs are still rejected.
    pub fn from_relation(
        graph: Arc<ConflictGraph>,
        pairs: &[(TupleId, TupleId)],
    ) -> Result<Self, PriorityError> {
        let mut priority = Priority::empty(graph);
        for &(winner, loser) in pairs {
            match priority.add(winner, loser) {
                Ok(()) | Err(PriorityError::NotConflicting { .. }) => {}
                Err(other) => return Err(other),
            }
        }
        Ok(priority)
    }

    /// The conflict graph this priority orients.
    pub fn graph(&self) -> &Arc<ConflictGraph> {
        &self.graph
    }

    /// Number of oriented conflict edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether no conflict edge is oriented (the empty priority `∅`).
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Adds `winner ≻ loser`, enforcing Definition 2. Adding an edge that is already
    /// present is a no-op.
    pub fn add(&mut self, winner: TupleId, loser: TupleId) -> Result<(), PriorityError> {
        let n = self.graph.vertex_count();
        for t in [winner, loser] {
            if t.index() >= n {
                return Err(PriorityError::UnknownTuple { tuple: t });
            }
        }
        if winner == loser {
            return Err(PriorityError::SelfEdge { tuple: winner });
        }
        if !self.graph.are_conflicting(winner, loser) {
            return Err(PriorityError::NotConflicting { winner, loser });
        }
        if self.dominates[winner.index()].contains(loser) {
            return Ok(());
        }
        // Acyclicity: the new edge winner→loser closes a cycle iff loser already reaches
        // winner through existing ≻ edges.
        if self.reaches(loser, winner) {
            return Err(PriorityError::WouldCreateCycle { winner, loser });
        }
        self.dominates[winner.index()].insert(loser);
        self.dominators[loser.index()].insert(winner);
        self.edge_count += 1;
        Ok(())
    }

    /// Whether `x ≻ y`.
    pub fn dominates(&self, x: TupleId, y: TupleId) -> bool {
        self.dominates[x.index()].contains(y)
    }

    /// All tuples dominated by `x` (`{y | x ≻ y}`).
    pub fn dominated_by(&self, x: TupleId) -> &TupleSet {
        &self.dominates[x.index()]
    }

    /// All tuples dominating `y` (`{x | x ≻ y}`).
    pub fn dominators_of(&self, y: TupleId) -> &TupleSet {
        &self.dominators[y.index()]
    }

    /// Whether the conflict edge between `a` and `b` is oriented (in either direction).
    pub fn orients_edge(&self, a: TupleId, b: TupleId) -> bool {
        self.dominates(a, b) || self.dominates(b, a)
    }

    /// Whether the priority is total: every conflict edge is oriented.
    pub fn is_total(&self) -> bool {
        self.edge_count == self.graph.edge_count()
    }

    /// The conflict edges not yet oriented.
    pub fn unoriented_edges(&self) -> Vec<(TupleId, TupleId)> {
        self.graph.edges().iter().copied().filter(|&(a, b)| !self.orients_edge(a, b)).collect()
    }

    /// All oriented edges as `(winner, loser)` pairs, in ascending order.
    pub fn edges(&self) -> Vec<(TupleId, TupleId)> {
        let mut edges = Vec::with_capacity(self.edge_count);
        for (i, dominated) in self.dominates.iter().enumerate() {
            let winner = TupleId(i as u32);
            for loser in dominated.iter() {
                edges.push((winner, loser));
            }
        }
        edges
    }

    /// Whether `self` is an extension of `other` (`other ⊆ self`): every pair oriented by
    /// `other` is oriented the same way by `self`.
    pub fn is_extension_of(&self, other: &Priority) -> bool {
        other.edges().into_iter().all(|(winner, loser)| self.dominates(winner, loser))
    }

    /// Merges every edge of `other` into `self`. Fails if a merged edge is not a conflict
    /// edge of *this* priority's graph or would create a cycle.
    pub fn extend_with(&mut self, other: &Priority) -> Result<(), PriorityError> {
        for (winner, loser) in other.edges() {
            self.add(winner, loser)?;
        }
        Ok(())
    }

    /// Whether `from` reaches `to` following `≻` edges (transitive domination).
    pub fn reaches(&self, from: TupleId, to: TupleId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = TupleSet::with_capacity(self.graph.vertex_count());
        let mut stack = vec![from];
        visited.insert(from);
        while let Some(v) = stack.pop() {
            for next in self.dominates[v.index()].iter() {
                if next == to {
                    return true;
                }
                if visited.insert(next) {
                    stack.push(next);
                }
            }
        }
        false
    }

    /// Verifies the acyclicity invariant from scratch (used by property tests; insertion
    /// already maintains it incrementally).
    pub fn check_acyclic(&self) -> bool {
        // Kahn-style topological sort over the oriented edges only.
        let n = self.graph.vertex_count();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.dominators[i].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for w in self.dominates[v].iter() {
                indegree[w.index()] -= 1;
                if indegree[w.index()] == 0 {
                    queue.push(w.index());
                }
            }
        }
        seen == n
    }
}

impl fmt::Debug for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Priority{{")?;
        for (i, (winner, loser)) in self.edges().into_iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{winner} ≻ {loser}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A triangle conflict graph t0 – t1 – t2 – t0 (Example 7's shape).
    fn triangle() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        ))
    }

    /// The path graph of Example 9: ta – tb – tc – td – te.
    fn path5() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            5,
            &[
                (TupleId(0), TupleId(1)),
                (TupleId(1), TupleId(2)),
                (TupleId(2), TupleId(3)),
                (TupleId(3), TupleId(4)),
            ],
        ))
    }

    #[test]
    fn example_7_priority_is_accepted() {
        // ≻ = {(ta,tc),(ta,tb)} on the triangle.
        let p =
            Priority::from_pairs(triangle(), &[(TupleId(0), TupleId(2)), (TupleId(0), TupleId(1))])
                .unwrap();
        assert!(p.dominates(TupleId(0), TupleId(2)));
        assert!(!p.dominates(TupleId(2), TupleId(0)));
        assert_eq!(p.edge_count(), 2);
        assert!(!p.is_total());
        assert_eq!(p.unoriented_edges(), vec![(TupleId(1), TupleId(2))]);
    }

    #[test]
    fn non_conflicting_pairs_are_rejected() {
        let graph = Arc::new(ConflictGraph::from_edges(3, &[(TupleId(0), TupleId(1))]));
        let mut p = Priority::empty(graph);
        assert!(matches!(p.add(TupleId(0), TupleId(2)), Err(PriorityError::NotConflicting { .. })));
        assert!(matches!(p.add(TupleId(0), TupleId(0)), Err(PriorityError::SelfEdge { .. })));
        assert!(matches!(p.add(TupleId(0), TupleId(9)), Err(PriorityError::UnknownTuple { .. })));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut p = Priority::empty(triangle());
        p.add(TupleId(0), TupleId(1)).unwrap();
        p.add(TupleId(1), TupleId(2)).unwrap();
        // 2 ≻ 0 would close a directed cycle through the transitive closure.
        assert!(matches!(
            p.add(TupleId(2), TupleId(0)),
            Err(PriorityError::WouldCreateCycle { .. })
        ));
        // The opposite orientation is fine and makes the priority total.
        p.add(TupleId(0), TupleId(2)).unwrap();
        assert!(p.is_total());
        assert!(p.check_acyclic());
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut p = Priority::empty(triangle());
        p.add(TupleId(0), TupleId(1)).unwrap();
        p.add(TupleId(0), TupleId(1)).unwrap();
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    fn from_relation_drops_non_conflicting_pairs() {
        let p = Priority::from_relation(
            path5(),
            &[
                (TupleId(0), TupleId(1)),
                (TupleId(0), TupleId(4)), // not a conflict edge: dropped
                (TupleId(3), TupleId(2)),
            ],
        )
        .unwrap();
        assert_eq!(p.edge_count(), 2);
        assert!(!p.dominates(TupleId(0), TupleId(4)));
    }

    #[test]
    fn extension_relation() {
        let smaller = Priority::from_pairs(path5(), &[(TupleId(0), TupleId(1))]).unwrap();
        let larger =
            Priority::from_pairs(path5(), &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2))])
                .unwrap();
        assert!(larger.is_extension_of(&smaller));
        assert!(!smaller.is_extension_of(&larger));
        // Every priority extends the empty priority and itself.
        let empty = Priority::empty(path5());
        assert!(smaller.is_extension_of(&empty));
        assert!(smaller.is_extension_of(&smaller));
    }

    #[test]
    fn extend_with_merges_edges() {
        let mut p = Priority::from_pairs(path5(), &[(TupleId(0), TupleId(1))]).unwrap();
        let q = Priority::from_pairs(path5(), &[(TupleId(2), TupleId(1))]).unwrap();
        p.extend_with(&q).unwrap();
        assert_eq!(p.edge_count(), 2);
        assert!(p.is_extension_of(&q));
    }

    #[test]
    fn example_9_total_priority_on_the_path() {
        // ≻ = {(ta,tb),(tb,tc),(tc,td),(td,te)}: total and acyclic.
        let p = Priority::from_pairs(
            path5(),
            &[
                (TupleId(0), TupleId(1)),
                (TupleId(1), TupleId(2)),
                (TupleId(2), TupleId(3)),
                (TupleId(3), TupleId(4)),
            ],
        )
        .unwrap();
        assert!(p.is_total());
        assert!(p.reaches(TupleId(0), TupleId(4)));
        assert!(!p.reaches(TupleId(4), TupleId(0)));
        assert_eq!(p.dominators_of(TupleId(1)).len(), 1);
        assert_eq!(p.dominated_by(TupleId(1)).len(), 1);
    }

    #[test]
    fn debug_rendering_lists_oriented_edges() {
        let p = Priority::from_pairs(triangle(), &[(TupleId(0), TupleId(1))]).unwrap();
        assert_eq!(format!("{p:?}"), "Priority{t0 ≻ t1}");
    }
}
