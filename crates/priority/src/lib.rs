//! Priorities — the preference input of the paper.
//!
//! A **priority** (Definition 2 of the paper) is a binary relation `≻` on the tuples of
//! an inconsistent instance that is (i) defined only on *conflicting* tuples and (ii)
//! acyclic. Equivalently, it is a (possibly partial) acyclic orientation of the conflict
//! graph. Extending a priority means orienting further conflict edges; a priority that
//! cannot be extended is *total*.
//!
//! This crate provides:
//!
//! * [`Priority`] — construction, cycle-safe edge insertion, extension/totality tests,
//! * [`winnow`](mod@winnow) — the winnow operator `ω_≻` of Chomicki's preference
//!   queries \[5\], used by the paper's Algorithm 1,
//! * [`orientation`] — total extensions (enumeration and random sampling) and the
//!   "can the priority be extended to a cyclic orientation?" test used by Theorem 2,
//! * [`generators`] — priorities derived from ranking information: per-tuple scores,
//!   source reliability and timestamps (the kinds of information the paper's
//!   introduction says data-cleaning tools typically rely on).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generators;
pub mod orientation;
pub mod priority;
pub mod winnow;

pub use generators::{priority_from_scores, priority_from_source_reliability, SourceOrder};
pub use orientation::{has_cyclic_extension, random_total_extension, total_extensions};
pub use priority::{Priority, PriorityError};
pub use winnow::winnow;
