//! The winnow operator `ω_≻`.
//!
//! Algorithm 1 of the paper repeatedly selects tuples via the *winnow* operator of
//! preference queries \[5\]: `ω_≻(r) = { t ∈ r | ¬∃ t' ∈ r . t' ≻ t }`, i.e. the tuples
//! not dominated by any other tuple still under consideration.

use pdqi_relation::TupleSet;

use crate::priority::Priority;

/// The winnow operator restricted to the `active` tuples: the members of `active` that
/// are not dominated (w.r.t. `priority`) by any other member of `active`.
pub fn winnow(priority: &Priority, active: &TupleSet) -> TupleSet {
    active.iter().filter(|&t| priority.dominators_of(t).is_disjoint_from(active)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::ConflictGraph;
    use pdqi_relation::TupleId;
    use std::sync::Arc;

    fn path5_priority() -> Priority {
        // Example 9: ta ≻ tb ≻ tc ≻ td ≻ te on the path conflict graph.
        let graph = Arc::new(ConflictGraph::from_edges(
            5,
            &[
                (TupleId(0), TupleId(1)),
                (TupleId(1), TupleId(2)),
                (TupleId(2), TupleId(3)),
                (TupleId(3), TupleId(4)),
            ],
        ));
        Priority::from_pairs(
            graph,
            &[
                (TupleId(0), TupleId(1)),
                (TupleId(1), TupleId(2)),
                (TupleId(2), TupleId(3)),
                (TupleId(3), TupleId(4)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn winnow_keeps_undominated_tuples_only() {
        let p = path5_priority();
        let all = TupleSet::from_ids((0..5).map(TupleId));
        assert_eq!(winnow(&p, &all), TupleSet::from_ids([TupleId(0)]));
    }

    #[test]
    fn winnow_is_relative_to_the_active_set() {
        let p = path5_priority();
        // With ta removed, tb and also td's dominator tc... only tb and tc's situation changes:
        // active = {tb, tc, td, te}: tb is undominated (its only dominator ta is inactive).
        let active = TupleSet::from_ids([TupleId(1), TupleId(2), TupleId(3), TupleId(4)]);
        assert_eq!(winnow(&p, &active), TupleSet::from_ids([TupleId(1)]));
        // active = {tc, te}: tc's dominator tb is inactive and te's dominator td is inactive.
        let active = TupleSet::from_ids([TupleId(2), TupleId(4)]);
        assert_eq!(winnow(&p, &active), active);
    }

    #[test]
    fn winnow_of_the_empty_priority_is_the_identity() {
        let graph = Arc::new(ConflictGraph::from_edges(3, &[(TupleId(0), TupleId(1))]));
        let p = Priority::empty(graph);
        let active = TupleSet::from_ids([TupleId(0), TupleId(1), TupleId(2)]);
        assert_eq!(winnow(&p, &active), active);
    }

    #[test]
    fn winnow_of_the_empty_set_is_empty() {
        let p = path5_priority();
        assert!(winnow(&p, &TupleSet::new()).is_empty());
    }
}
