//! Deriving priorities from ranking information.
//!
//! The paper's introduction lists the information data-cleaning systems typically use to
//! resolve conflicts: timestamps ("remove outdated tuples") and the source of each tuple
//! ("one source is more reliable than another"). Both induce priorities: orient every
//! conflict edge towards the tuple with the strictly better grade and leave edges between
//! equally-graded or incomparable tuples unoriented. Because the grade strictly improves
//! along every oriented edge, the resulting relation is automatically acyclic.

use std::collections::HashMap;
use std::sync::Arc;

use pdqi_constraints::ConflictGraph;
use pdqi_relation::TupleId;

use crate::priority::Priority;

/// Builds a priority from per-tuple numeric scores (e.g. freshness timestamps or ranking
/// functions à la Motro et al. \[17\]): on every conflict edge the strictly higher-scored
/// tuple dominates; ties are left unoriented. `scores` is indexed by `TupleId::index()`.
pub fn priority_from_scores(graph: Arc<ConflictGraph>, scores: &[i64]) -> Priority {
    assert_eq!(
        scores.len(),
        graph.vertex_count(),
        "one score per tuple of the conflict graph is required"
    );
    let mut priority = Priority::empty(Arc::clone(&graph));
    for &(a, b) in graph.edges() {
        let (sa, sb) = (scores[a.index()], scores[b.index()]);
        let result = match sa.cmp(&sb) {
            std::cmp::Ordering::Greater => priority.add(a, b),
            std::cmp::Ordering::Less => priority.add(b, a),
            std::cmp::Ordering::Equal => Ok(()),
        };
        result.expect("score-monotone orientations are acyclic and only touch conflict edges");
    }
    priority
}

/// A strict partial order on data sources, given by its `more_reliable > less_reliable`
/// pairs (transitively closed internally).
#[derive(Debug, Clone, Default)]
pub struct SourceOrder {
    better_than: HashMap<String, Vec<String>>,
}

impl SourceOrder {
    /// Creates an empty order (no source is comparable to any other).
    pub fn new() -> Self {
        SourceOrder::default()
    }

    /// Declares `better` to be strictly more reliable than `worse`.
    pub fn prefer(&mut self, better: impl Into<String>, worse: impl Into<String>) -> &mut Self {
        self.better_than.entry(better.into()).or_default().push(worse.into());
        self
    }

    /// Whether `a` is (transitively) strictly more reliable than `b`.
    pub fn is_better(&self, a: &str, b: &str) -> bool {
        if a == b {
            return false;
        }
        let mut stack = vec![a.to_string()];
        let mut seen = vec![a.to_string()];
        while let Some(current) = stack.pop() {
            if let Some(worse) = self.better_than.get(&current) {
                for w in worse {
                    if w == b {
                        return true;
                    }
                    if !seen.contains(w) {
                        seen.push(w.clone());
                        stack.push(w.clone());
                    }
                }
            }
        }
        false
    }
}

/// Builds a priority from source provenance (Example 3): `source_of[t]` names the source
/// each tuple came from, and `order` is a strict partial order of source reliability. A
/// conflict edge is oriented towards the tuple whose source is strictly more reliable;
/// edges between tuples of incomparable or identical sources stay unoriented.
pub fn priority_from_source_reliability(
    graph: Arc<ConflictGraph>,
    source_of: &[String],
    order: &SourceOrder,
) -> Priority {
    assert_eq!(
        source_of.len(),
        graph.vertex_count(),
        "one source per tuple of the conflict graph is required"
    );
    let mut priority = Priority::empty(Arc::clone(&graph));
    let edge_for = |winner: TupleId, loser: TupleId, p: &mut Priority| {
        p.add(winner, loser)
            .expect("reliability-monotone orientations are acyclic and only touch conflict edges");
    };
    for &(a, b) in graph.edges() {
        let (sa, sb) = (&source_of[a.index()], &source_of[b.index()]);
        if order.is_better(sa, sb) {
            edge_for(a, b, &mut priority);
        } else if order.is_better(sb, sa) {
            edge_for(b, a, &mut priority);
        }
    }
    priority
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Example 1 conflict graph: vertices 0 = (Mary,R&D), 1 = (John,R&D),
    /// 2 = (Mary,IT), 3 = (John,PR); edges 0–1, 0–2, 1–3.
    fn example1_graph() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            4,
            &[(TupleId(0), TupleId(1)), (TupleId(0), TupleId(2)), (TupleId(1), TupleId(3))],
        ))
    }

    #[test]
    fn score_based_priority_orients_towards_higher_scores() {
        let graph = example1_graph();
        // Treat salary as the score.
        let p = priority_from_scores(Arc::clone(&graph), &[40, 10, 20, 30]);
        assert!(p.dominates(TupleId(0), TupleId(1)));
        assert!(p.dominates(TupleId(0), TupleId(2)));
        assert!(p.dominates(TupleId(3), TupleId(1)));
        assert!(p.is_total());
        assert!(p.check_acyclic());
    }

    #[test]
    fn equal_scores_leave_edges_unoriented() {
        let graph = example1_graph();
        let p = priority_from_scores(Arc::clone(&graph), &[5, 5, 1, 5]);
        assert!(!p.orients_edge(TupleId(0), TupleId(1)));
        assert!(!p.orients_edge(TupleId(1), TupleId(3)));
        assert!(p.dominates(TupleId(0), TupleId(2)));
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    fn source_order_is_transitive_and_irreflexive() {
        let mut order = SourceOrder::new();
        order.prefer("s1", "s2").prefer("s2", "s3");
        assert!(order.is_better("s1", "s3"));
        assert!(!order.is_better("s3", "s1"));
        assert!(!order.is_better("s1", "s1"));
        assert!(!order.is_better("s1", "unknown"));
    }

    #[test]
    fn example_3_reliability_priority() {
        // s3 is less reliable than s1 and than s2; s1 vs s2 unknown.
        // Tuples: 0 from s1, 1 from s2, 2 and 3 from s3.
        let graph = example1_graph();
        let mut order = SourceOrder::new();
        order.prefer("s1", "s3").prefer("s2", "s3");
        let sources = vec!["s1".to_string(), "s2".to_string(), "s3".to_string(), "s3".to_string()];
        let p = priority_from_source_reliability(Arc::clone(&graph), &sources, &order);
        // (Mary,R&D) from s1 dominates (Mary,IT) from s3; (John,R&D) from s2 dominates (John,PR) from s3.
        assert!(p.dominates(TupleId(0), TupleId(2)));
        assert!(p.dominates(TupleId(1), TupleId(3)));
        // The s1-vs-s2 conflict stays unoriented.
        assert!(!p.orients_edge(TupleId(0), TupleId(1)));
        assert_eq!(p.edge_count(), 2);
        assert!(!p.is_total());
    }

    #[test]
    #[should_panic(expected = "one score per tuple")]
    fn score_vector_length_is_checked() {
        priority_from_scores(example1_graph(), &[1, 2]);
    }
}
