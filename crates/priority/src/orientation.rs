//! Orientations of the conflict graph: total extensions and cyclic-extension tests.
//!
//! A priority is a partial acyclic orientation of the conflict graph. Two questions about
//! the remaining, unoriented edges matter in the paper:
//!
//! * enumerating / sampling **total acyclic extensions** (total priorities are the input
//!   of Algorithm 1 and the hypothesis of categoricity P4),
//! * whether the priority **can be extended to a cyclic orientation** of the conflict
//!   graph — Theorem 2 states that `C-Rep` and `G-Rep` coincide exactly when it cannot.

use rand::seq::SliceRandom;
use rand::Rng;

use pdqi_relation::{TupleId, TupleSet};

use crate::priority::Priority;

/// Enumerates total acyclic extensions of `priority`, stopping after at most `limit`
/// extensions have been produced (the number of total extensions is exponential in the
/// number of unoriented edges). Returns the extensions found.
pub fn total_extensions(priority: &Priority, limit: usize) -> Vec<Priority> {
    let mut result = Vec::new();
    let unoriented = priority.unoriented_edges();
    let mut current = priority.clone();
    extend_rec(&mut current, &unoriented, 0, limit, &mut result);
    result
}

fn extend_rec(
    current: &mut Priority,
    edges: &[(TupleId, TupleId)],
    next: usize,
    limit: usize,
    out: &mut Vec<Priority>,
) {
    if out.len() >= limit {
        return;
    }
    if next == edges.len() {
        out.push(current.clone());
        return;
    }
    let (a, b) = edges[next];
    for (winner, loser) in [(a, b), (b, a)] {
        let mut candidate = current.clone();
        if candidate.add(winner, loser).is_ok() {
            extend_rec(&mut candidate, edges, next + 1, limit, out);
        }
        if out.len() >= limit {
            return;
        }
    }
}

/// Produces one uniformly-shuffled total acyclic extension of `priority`.
///
/// Unoriented edges are visited in random order and oriented in a random direction; if
/// that direction would create a cycle the opposite direction is used (one of the two
/// directions is always acyclic, because both being cyclic would require a pre-existing
/// cycle).
pub fn random_total_extension<R: Rng>(priority: &Priority, rng: &mut R) -> Priority {
    let mut extension = priority.clone();
    let mut edges = extension.unoriented_edges();
    edges.shuffle(rng);
    for (a, b) in edges {
        let (first, second) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
        if extension.add(first, second).is_err() {
            extension
                .add(second, first)
                .expect("one direction of an unoriented edge is always acyclic");
        }
    }
    extension
}

/// Whether `priority` can be extended to a **cyclic** orientation of the conflict graph.
///
/// Theorem 2 of the paper: `C-Rep` and `G-Rep` coincide for priorities that *cannot* be
/// extended to a cyclic orientation. An extension with a directed cycle exists exactly
/// when the mixed graph — oriented edges directed as in the priority, unoriented conflict
/// edges usable in either direction — contains a simple cycle that traverses every
/// oriented edge forwards.
///
/// The search enumerates simple paths and is exponential in the worst case; it is meant
/// for the moderately-sized instances where Theorem 2 is being checked or exploited, not
/// for the large benchmark instances.
pub fn has_cyclic_extension(priority: &Priority) -> bool {
    let graph = priority.graph();
    let n = graph.vertex_count();
    for start in 0..n {
        let start = TupleId(start as u32);
        let mut visited = TupleSet::with_capacity(n);
        visited.insert(start);
        if cycle_search(priority, start, start, &mut visited, 0) {
            return true;
        }
    }
    false
}

/// Depth-first search for a simple cycle through `start`. From `current` we may move to a
/// neighbour `next` when the conflict edge {current,next} is unoriented or oriented
/// `current ≻ next`; closing the cycle requires at least 3 edges (the conflict graph is
/// simple, so no shorter directed cycle can exist in any orientation).
fn cycle_search(
    priority: &Priority,
    start: TupleId,
    current: TupleId,
    visited: &mut TupleSet,
    depth: usize,
) -> bool {
    let graph = priority.graph();
    for next in graph.neighbors(current).iter() {
        // The edge must be traversable from `current` to `next`.
        if priority.dominates(next, current) {
            continue;
        }
        if next == start && depth >= 2 {
            return true;
        }
        if visited.contains(next) {
            continue;
        }
        visited.insert(next);
        if cycle_search(priority, start, next, visited, depth + 1) {
            return true;
        }
        visited.remove(next);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn triangle() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        ))
    }

    fn path4() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            4,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(2), TupleId(3))],
        ))
    }

    #[test]
    fn total_extensions_of_the_empty_priority_on_a_path_are_all_orientations() {
        // A path (a forest) has no cycles, so every orientation is acyclic: 2^3 = 8.
        let p = Priority::empty(path4());
        let extensions = total_extensions(&p, 100);
        assert_eq!(extensions.len(), 8);
        assert!(extensions.iter().all(Priority::is_total));
        assert!(extensions.iter().all(|e| e.is_extension_of(&p)));
    }

    #[test]
    fn total_extensions_of_a_triangle_exclude_the_two_cyclic_orientations() {
        let p = Priority::empty(triangle());
        let extensions = total_extensions(&p, 100);
        // 2^3 = 8 orientations, 2 of which are directed cycles.
        assert_eq!(extensions.len(), 6);
        assert!(extensions.iter().all(|e| e.check_acyclic()));
    }

    #[test]
    fn extension_limit_is_respected() {
        let p = Priority::empty(path4());
        assert_eq!(total_extensions(&p, 3).len(), 3);
    }

    #[test]
    fn partial_priorities_constrain_their_extensions() {
        let p = Priority::from_pairs(triangle(), &[(TupleId(0), TupleId(1))]).unwrap();
        let extensions = total_extensions(&p, 100);
        assert!(extensions.iter().all(|e| e.dominates(TupleId(0), TupleId(1))));
        // Of the 4 orientations of the remaining 2 edges, 1 is cyclic: 3 remain.
        assert_eq!(extensions.len(), 3);
    }

    #[test]
    fn random_total_extension_is_total_acyclic_and_extends_the_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Priority::from_pairs(triangle(), &[(TupleId(0), TupleId(1))]).unwrap();
        for _ in 0..20 {
            let ext = random_total_extension(&p, &mut rng);
            assert!(ext.is_total());
            assert!(ext.check_acyclic());
            assert!(ext.is_extension_of(&p));
        }
    }

    #[test]
    fn acyclic_graphs_never_admit_cyclic_extensions() {
        let p = Priority::empty(path4());
        assert!(!has_cyclic_extension(&p));
    }

    #[test]
    fn empty_priority_on_a_triangle_admits_a_cyclic_extension() {
        assert!(has_cyclic_extension(&Priority::empty(triangle())));
    }

    #[test]
    fn sufficiently_oriented_triangle_cannot_become_cyclic() {
        // Orienting two edges out of the same vertex leaves no way to close a directed cycle.
        let p =
            Priority::from_pairs(triangle(), &[(TupleId(0), TupleId(1)), (TupleId(0), TupleId(2))])
                .unwrap();
        assert!(!has_cyclic_extension(&p));
        // But a "chain" of two edges still can be closed by the third.
        let q =
            Priority::from_pairs(triangle(), &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2))])
                .unwrap();
        assert!(has_cyclic_extension(&q));
    }
}
