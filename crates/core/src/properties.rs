//! Executable checks of the paper's desirable properties P1–P4.
//!
//! Section 1 of the paper postulates four properties of a family of preferred repairs:
//!
//! * **P1 (non-emptiness)** — `X-Rep ≠ ∅`;
//! * **P2 (monotonicity)** — extending the priority can only narrow the set of preferred
//!   repairs: `Φ ⊆ Ψ ⇒ X-Rep_Ψ ⊆ X-Rep_Φ`;
//! * **P3 (non-discrimination)** — with the empty priority no repair is excluded:
//!   `X-Rep_∅ = Rep`;
//! * **P4 (categoricity)** — a total priority selects exactly one repair.
//!
//! These checkers evaluate the properties on *concrete* inputs (an instance, a priority
//! and, for P2, an extension); the property-based test-suites drive them over randomly
//! generated instances and priority chains. [`check_profile`] bundles them into the
//! per-family profile reported by the paper (L and S satisfy P1–P3; G and C satisfy
//! P1–P4; Rep satisfies P1–P3 trivially and P4 never — except degenerate repair spaces).

use pdqi_priority::{random_total_extension, Priority};
use rand::Rng;

use crate::families::RepairFamily;
use crate::repair::RepairContext;

/// P1: the family selects at least one preferred repair.
pub fn check_p1(family: &dyn RepairFamily, ctx: &RepairContext, priority: &Priority) -> bool {
    !family.preferred_repairs(ctx, priority, 1).is_empty()
}

/// P2: every repair preferred under the extension `larger` is also preferred under
/// `smaller`. The caller must pass priorities with `smaller ⊆ larger`.
///
/// # Panics
/// Panics if `larger` is not an extension of `smaller` (a misuse, not a property failure).
pub fn check_p2(
    family: &dyn RepairFamily,
    ctx: &RepairContext,
    smaller: &Priority,
    larger: &Priority,
) -> bool {
    assert!(
        larger.is_extension_of(smaller),
        "P2 is only meaningful when the second priority extends the first"
    );
    family
        .preferred_repairs(ctx, larger, usize::MAX)
        .iter()
        .all(|repair| family.is_preferred(ctx, smaller, repair))
}

/// P3: with the empty priority the family selects exactly the set of all repairs.
pub fn check_p3(family: &dyn RepairFamily, ctx: &RepairContext) -> bool {
    let empty = ctx.empty_priority();
    let preferred = family.preferred_repairs(ctx, &empty, usize::MAX);
    if preferred.len() as u128 != ctx.count_repairs() {
        return false;
    }
    preferred.iter().all(|repair| ctx.is_repair(repair))
}

/// P4: the given total priority selects exactly one preferred repair.
///
/// # Panics
/// Panics if `total` is not a total priority (a misuse, not a property failure).
pub fn check_p4(family: &dyn RepairFamily, ctx: &RepairContext, total: &Priority) -> bool {
    assert!(total.is_total(), "P4 is only meaningful for total priorities");
    family.preferred_repairs(ctx, total, 2).len() == 1
}

/// The outcome of evaluating all four properties on one concrete input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyProfile {
    /// P1 on the given priority.
    pub p1: bool,
    /// P2 on the given priority and `samples` random total extensions of it.
    pub p2: bool,
    /// P3 (uses the empty priority).
    pub p3: bool,
    /// P4 on `samples` random total extensions of the given priority.
    pub p4: bool,
}

/// Evaluates P1–P4 for `family` on the given instance and priority, sampling `samples`
/// random total extensions for the monotonicity and categoricity checks.
pub fn check_profile<R: Rng>(
    family: &dyn RepairFamily,
    ctx: &RepairContext,
    priority: &Priority,
    samples: usize,
    rng: &mut R,
) -> PropertyProfile {
    let p1 = check_p1(family, ctx, priority);
    let p3 = check_p3(family, ctx);
    let mut p2 = true;
    let mut p4 = true;
    for _ in 0..samples {
        let total = random_total_extension(priority, rng);
        p2 &= check_p2(family, ctx, priority, &total);
        p4 &= check_p4(family, ctx, &total);
    }
    PropertyProfile { p1, p2, p3, p4 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{
        AllRepairs, CommonOptimal, FamilyKind, GlobalOptimal, LocalOptimal, SemiGlobalOptimal,
    };
    use crate::repair::fixtures::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_families_satisfy_p1_and_p3_on_the_paper_examples() {
        for (ctx, priority) in [example7(), example8(), example9()] {
            for kind in FamilyKind::ALL {
                let family = kind.family();
                assert!(check_p1(family.as_ref(), &ctx, &priority), "{} fails P1", kind.label());
                assert!(check_p3(family.as_ref(), &ctx), "{} fails P3", kind.label());
            }
        }
    }

    #[test]
    fn monotonicity_holds_along_a_concrete_extension_chain() {
        let (ctx, full_priority) = example9();
        // Build the chain ∅ ⊆ {ta≻tb} ⊆ {ta≻tb, tb≻tc} ⊆ full.
        let empty = ctx.empty_priority();
        let edges = full_priority.edges();
        let mut one = ctx.empty_priority();
        one.add(edges[0].0, edges[0].1).unwrap();
        let mut two = one.clone();
        two.add(edges[1].0, edges[1].1).unwrap();
        let chain = [empty, one, two, full_priority];
        for kind in FamilyKind::ALL {
            let family = kind.family();
            for pair in chain.windows(2) {
                assert!(
                    check_p2(family.as_ref(), &ctx, &pair[0], &pair[1]),
                    "{} fails P2 along the chain",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn categoricity_separates_the_families_on_example_8() {
        // Example 8's priority is total. L-Rep keeps two repairs (no P4); S, G and C keep one.
        let (ctx, priority) = example8();
        assert!(!check_p4(&LocalOptimal, &ctx, &priority));
        assert!(check_p4(&SemiGlobalOptimal, &ctx, &priority));
        assert!(check_p4(&GlobalOptimal, &ctx, &priority));
        assert!(check_p4(&CommonOptimal, &ctx, &priority));
        assert!(!check_p4(&AllRepairs, &ctx, &priority));
    }

    #[test]
    fn categoricity_on_example_9_literal_data() {
        // With the literal Example 9 data the priority is total and S, G and C all select
        // exactly one repair (see the erratum note on the fixture); the intended
        // S-vs-G separation is exercised on `example9_intended`, whose priority is not
        // total and therefore outside P4's scope.
        let (ctx, priority) = example9();
        assert!(check_p4(&SemiGlobalOptimal, &ctx, &priority));
        assert!(check_p4(&GlobalOptimal, &ctx, &priority));
        assert!(check_p4(&CommonOptimal, &ctx, &priority));
        assert!(!check_p4(&AllRepairs, &ctx, &priority));
    }

    #[test]
    fn profiles_of_g_and_c_rep_report_all_four_properties() {
        let mut rng = StdRng::seed_from_u64(42);
        for (ctx, priority) in [example7(), example8(), example9()] {
            for kind in [FamilyKind::Global, FamilyKind::Common] {
                let profile = check_profile(kind.family().as_ref(), &ctx, &priority, 4, &mut rng);
                assert!(
                    profile.p1 && profile.p2 && profile.p3 && profile.p4,
                    "{} fails its expected profile: {profile:?}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "only meaningful for total priorities")]
    fn p4_rejects_partial_priorities() {
        let (ctx, priority) = example7();
        check_p4(&GlobalOptimal, &ctx, &priority);
    }

    #[test]
    #[should_panic(expected = "extends the first")]
    fn p2_rejects_non_extensions() {
        let (ctx, priority) = example8();
        let empty = ctx.empty_priority();
        check_p2(&GlobalOptimal, &ctx, &priority, &empty);
    }
}
