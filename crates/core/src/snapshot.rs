//! The prepared-query engine: [`EngineBuilder`] and [`EngineSnapshot`].
//!
//! The paper's framework fixes the database, its constraints and the priority once and
//! then answers *many* queries against the induced families of preferred repairs. The
//! snapshot API mirrors that shape:
//!
//! * [`EngineBuilder`] assembles one or more relations (each with its functional
//!   dependencies and a priority source) and freezes them into an immutable
//!   [`EngineSnapshot`]. Building computes each relation's conflict graph and its
//!   connected components once; everything is shared behind [`Arc`]s, so cloning a
//!   snapshot and deriving new snapshots is cheap.
//! * [`EngineSnapshot`] answers repair-space questions (counts, enumeration, checking,
//!   cleaning) through a **per-component memo**: for every connected component of a
//!   conflict graph and every [`FamilyKind`], the component's preferred repairs are
//!   enumerated at most once per snapshot and reused by every later operation — repeated
//!   queries, overlapping queries, counting, enumeration. The memo is safe because every
//!   family of the paper factorises over connected components: conflicts and priority
//!   edges never cross components, so a repair is preferred iff its restriction to each
//!   component is preferred within that component (see `component_preferred` below for
//!   the per-family component tests).
//! * [`EngineSnapshot::with_priority`] derives a snapshot with a revised priority
//!   without rebuilding: the conflict graph, components and instance are shared, and only
//!   the memo entries of components actually touched by the priority change are dropped.
//!   [`EngineSnapshot::with_priority_revalidated`] additionally re-enumerates exactly
//!   those dropped entries across workers before handing the snapshot out.
//!
//! # The shard layer
//!
//! Construction and revalidation are **sharded** so they fan out over the
//! [`crate::parallel`] pool, exploiting the same observation that makes the memo safe:
//! conflicts and priority edges never cross connected components. The decomposition,
//! from coarse to fine:
//!
//! ```text
//! instance ──(per-FD conflict scans, one shard job per (relation, FD))──► conflict graph
//!    │                                                                        │
//!    └► relation entry ◄──(per-relation assembly: priority + components)──────┘
//!            │
//!            ├── components [c₀, c₁, …]      (global ids assigned via comp_offset)
//!            ├── shards     [Shard {components: i..j, tuples}]   (contiguous,
//!            │                tuple-balanced runs of components — the unit of
//!            │                revalidation fan-out and adaptive chunk estimates)
//!            └── memo       component id → stripe (id mod STRIPES) → preferred repairs
//! ```
//!
//! Every parallel path is **bit-identical** to its sequential counterpart: per-FD edge
//! shards merge by set union, component order is a deterministic function of the graph,
//! and `comp_offset` is assigned in relation insertion order after the fan-out — so a
//! snapshot built with any [`Parallelism`] has the same components, the same global
//! component ids, the same repairs and the same answers as a sequential build.
//!
//! Queries are executed against snapshots through [`crate::prepared::PreparedQuery`],
//! which adds a second memo level keyed by `(component set, family, query fingerprint)`.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::ops::{ControlFlow, Range};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use pdqi_constraints::{fd_conflict_edges, ConflictGraph, FdSet};
use pdqi_priority::{
    priority_from_scores, priority_from_source_reliability, Priority, PriorityError, SourceOrder,
};
use pdqi_relation::{RelationError, RelationInstance, TupleId, TupleSet, Value};
use pdqi_solve::maximal_independent_sets_within;

use crate::clean::{clean_with_total_priority, common_repairs_within, CleaningError};
use crate::cqa::CqaOutcome;
use crate::families::FamilyKind;
use crate::optimality::{is_locally_optimal, is_semi_globally_optimal, preferred_over};
use crate::parallel::Parallelism;
use crate::repair::RepairContext;

/// Errors raised while assembling a snapshot.
#[derive(Debug)]
pub enum BuildError {
    /// Two relations with the same name were added.
    DuplicateRelation {
        /// The offending relation name.
        relation: String,
    },
    /// A priority source was declared before any relation.
    PriorityWithoutRelation,
    /// A priority source referenced a relation the builder does not know.
    UnknownRelation {
        /// The offending relation name.
        relation: String,
    },
    /// A priority source did not fit its relation (bad pair, cycle, ...).
    Priority(PriorityError),
    /// A priority was built over a different conflict graph than the relation's.
    GraphMismatch {
        /// The relation whose graph the priority should have oriented.
        relation: String,
    },
    /// A per-tuple annotation (scores, provenance) had the wrong length.
    AnnotationLength {
        /// The relation the annotation was attached to.
        relation: String,
        /// Number of annotations supplied.
        supplied: usize,
        /// Number of tuples in the relation.
        expected: usize,
    },
    /// An underlying relation error.
    Relation(RelationError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` was added twice")
            }
            BuildError::PriorityWithoutRelation => {
                f.write_str("a priority source must follow the relation it applies to")
            }
            BuildError::UnknownRelation { relation } => {
                write!(f, "snapshot has no relation `{relation}`")
            }
            BuildError::Priority(e) => write!(f, "priority cannot be installed: {e}"),
            BuildError::GraphMismatch { relation } => {
                write!(f, "the priority orients a different conflict graph than relation `{relation}`'s")
            }
            BuildError::AnnotationLength { relation, supplied, expected } => write!(
                f,
                "relation `{relation}` has {expected} tuples but {supplied} annotations were supplied"
            ),
            BuildError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<PriorityError> for BuildError {
    fn from(e: PriorityError) -> Self {
        BuildError::Priority(e)
    }
}

impl BuildError {
    /// The underlying [`PriorityError`], if that is what went wrong.
    pub fn as_priority_error(&self) -> Option<&PriorityError> {
        match self {
            BuildError::Priority(e) => Some(e),
            _ => None,
        }
    }
}

/// How a relation's priority is derived when the snapshot is built.
#[derive(Debug, Clone)]
enum PrioritySource {
    Empty,
    Pairs(Vec<(TupleId, TupleId)>),
    Scores(Vec<i64>),
    Sources(Vec<String>, SourceOrder),
}

#[derive(Debug, Clone)]
struct RelationSpec {
    instance: RelationInstance,
    fds: FdSet,
    priority: PrioritySource,
}

/// Conflict edges (smaller tuple id first), as produced by one per-FD shard scan.
type EdgeList = Vec<(TupleId, TupleId)>;

/// One relation's per-FD edge shards, in FD order.
type EdgeShards = Vec<EdgeList>;

/// Assembles relations, constraints and priority sources into an [`EngineSnapshot`].
///
/// ```
/// use pdqi_core::{EngineBuilder, FamilyKind};
/// # use std::sync::Arc;
/// # use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
/// # use pdqi_constraints::FdSet;
/// # let schema = Arc::new(RelationSchema::from_pairs(
/// #     "R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap());
/// # let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
/// #     vec![Value::int(1), Value::int(1)], vec![Value::int(1), Value::int(2)],
/// # ]).unwrap();
/// # let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
/// let snapshot = EngineBuilder::new()
///     .relation(instance, fds)
///     .priority_from_scores(&[5, 3])
///     .build()
///     .unwrap();
/// assert_eq!(snapshot.preferred_repair_count(FamilyKind::Global), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    relations: Vec<RelationSpec>,
    orphan_priority: bool,
    parallelism: Parallelism,
}

impl EngineBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Sets the degree of parallelism [`EngineBuilder::build`] fans shard jobs out with
    /// (sequential by default). Parallel builds are **bit-identical** to sequential
    /// builds — same components, same `comp_offset` assignment, same repairs and
    /// answers; the degree only trades threads for build latency.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Adds a relation with its functional dependencies (and, initially, the empty
    /// priority). Priority-source methods apply to the most recently added relation.
    pub fn relation(mut self, instance: RelationInstance, fds: FdSet) -> Self {
        self.relations.push(RelationSpec { instance, fds, priority: PrioritySource::Empty });
        self
    }

    fn set_priority(mut self, priority: PrioritySource) -> Self {
        match self.relations.last_mut() {
            Some(spec) => spec.priority = priority,
            // Remembered and reported as an error by `build` so the fluent chain
            // stays ergonomic.
            None => self.orphan_priority = true,
        }
        self
    }

    /// Installs explicit `winner ≻ loser` tuple-id pairs for the last added relation.
    pub fn priority_pairs(self, pairs: &[(TupleId, TupleId)]) -> Self {
        self.set_priority(PrioritySource::Pairs(pairs.to_vec()))
    }

    /// Installs a priority derived from per-tuple scores (higher score wins each
    /// conflict) for the last added relation.
    pub fn priority_from_scores(self, scores: &[i64]) -> Self {
        self.set_priority(PrioritySource::Scores(scores.to_vec()))
    }

    /// Installs a priority derived from per-tuple provenance and a source-reliability
    /// order (the paper's Example 3 scenario) for the last added relation.
    pub fn priority_from_sources(self, source_of: &[String], order: &SourceOrder) -> Self {
        self.set_priority(PrioritySource::Sources(source_of.to_vec(), order.clone()))
    }

    /// Freezes the builder into an immutable snapshot, computing every relation's
    /// conflict graph and connected components once.
    ///
    /// The build runs in three stages. With a parallel configuration (see
    /// [`EngineBuilder::parallelism`]) the first two fan out over the worker pool; the
    /// result is bit-identical either way:
    ///
    /// 1. **edge shards** — one job per `(relation, FD)` pair scans that FD's conflict
    ///    pairs (per-FD scans only compare tuples agreeing on the FD's left-hand side,
    ///    so they are independent);
    /// 2. **relation assembly** — one job per relation merges its edge shards into the
    ///    conflict graph (a set union, order-insensitive), orients the priority and
    ///    partitions the graph into components;
    /// 3. **sequential stitching** — duplicate checks, error selection, `comp_offset`
    ///    assignment and shard planning walk the relations in insertion order, so names,
    ///    global component ids and reported errors match the sequential build exactly.
    ///
    /// Stages 1–2 run speculatively for *every* relation so that stage 3 can replay the
    /// sequential walk's error selection verbatim: a failing build therefore pays the
    /// full fan-out cost before reporting. That trade (cold error path for exact error
    /// parity) is deliberate — callers feeding invalid specs get the same error at any
    /// parallelism degree.
    pub fn build(self) -> Result<EngineSnapshot, BuildError> {
        let parallelism = self.parallelism;
        self.build_with(parallelism)
    }

    /// [`EngineBuilder::build`] with an explicit degree of parallelism (overriding
    /// [`EngineBuilder::parallelism`]).
    pub fn build_with(self, parallelism: Parallelism) -> Result<EngineSnapshot, BuildError> {
        if self.orphan_priority {
            return Err(BuildError::PriorityWithoutRelation);
        }
        let specs = self.relations;
        let names: Vec<String> =
            specs.iter().map(|spec| spec.instance.schema().name().to_string()).collect();

        // Stage 1 — per-(relation, FD) conflict-edge shards, heaviest relations first so
        // the atomic work index keeps workers balanced.
        let mut edge_jobs: Vec<(usize, usize)> = Vec::new();
        for (rel, spec) in specs.iter().enumerate() {
            for fd in 0..spec.fds.fds().len() {
                edge_jobs.push((rel, fd));
            }
        }
        let weights: Vec<u128> =
            edge_jobs.iter().map(|&(rel, _)| specs[rel].instance.len() as u128).collect();
        let order = pdqi_solve::mis::schedule_by_descending_weight(&weights);
        let edge_jobs: Vec<(usize, usize)> = order.into_iter().map(|i| edge_jobs[i]).collect();
        let edge_shards: Vec<((usize, usize), EdgeList)> =
            crate::parallel::run_jobs(parallelism, edge_jobs.len(), |i| {
                let (rel, fd) = edge_jobs[i];
                let spec = &specs[rel];
                ((rel, fd), fd_conflict_edges(&spec.instance, &spec.fds.fds()[fd]))
            });
        let mut edge_lists: Vec<EdgeShards> =
            specs.iter().map(|spec| vec![Vec::new(); spec.fds.fds().len()]).collect();
        for ((rel, fd), edges) in edge_shards {
            edge_lists[rel][fd] = edges;
        }

        // Stage 2 — per-relation assembly. Each slot hands its job ownership of the spec
        // and edge shards without cloning; jobs run heaviest relation first.
        let rel_weights: Vec<u128> = specs.iter().map(|spec| spec.instance.len() as u128).collect();
        let slots: Vec<Mutex<Option<(RelationSpec, EdgeShards)>>> = specs
            .into_iter()
            .zip(edge_lists)
            .map(|(spec, lists)| Mutex::new(Some((spec, lists))))
            .collect();
        let rel_jobs = pdqi_solve::mis::schedule_by_descending_weight(&rel_weights);
        let assembled: Vec<(usize, Result<RelationEntry, BuildError>)> =
            crate::parallel::run_jobs(parallelism, rel_jobs.len(), |i| {
                let rel = rel_jobs[i];
                let (spec, lists) =
                    slots[rel].lock().expect("builder slot").take().expect("slot taken once");
                (rel, assemble_relation(spec, &lists))
            });
        let mut by_relation: Vec<Option<Result<RelationEntry, BuildError>>> =
            (0..names.len()).map(|_| None).collect();
        for (rel, result) in assembled {
            by_relation[rel] = Some(result);
        }

        // Stage 3 — sequential stitching in insertion order: the duplicate check and the
        // first reported error interleave per relation exactly like the sequential
        // single-pass build, and `comp_offset` / shard plans are assigned in order.
        let mut entries = Vec::with_capacity(names.len());
        let mut by_name = BTreeMap::new();
        let mut comp_offset = 0usize;
        for (rel, result) in by_relation.into_iter().enumerate() {
            if by_name.insert(names[rel].clone(), entries.len()).is_some() {
                return Err(BuildError::DuplicateRelation { relation: names[rel].clone() });
            }
            let entry = result.expect("every relation was assembled")?;
            let entry = entry.with_offset(rel, comp_offset);
            comp_offset += entry.components.len();
            entries.push(entry);
        }
        Ok(EngineSnapshot {
            inner: Arc::new(SnapshotInner { relations: entries, by_name, memo: Memo::default() }),
        })
    }
}

/// Stage-2 assembly of one relation: merge its per-FD edge shards into the conflict
/// graph, orient the priority source over it, and partition the components (the
/// `comp_offset` and shard plan are stitched in afterwards, in relation order).
fn assemble_relation(
    spec: RelationSpec,
    edge_lists: &[EdgeList],
) -> Result<RelationEntry, BuildError> {
    let name = spec.instance.schema().name().to_string();
    let graph = Arc::new(ConflictGraph::from_edge_lists(spec.instance.len(), edge_lists));
    let priority = match spec.priority {
        PrioritySource::Empty => Priority::empty(Arc::clone(&graph)),
        PrioritySource::Pairs(pairs) => Priority::from_pairs(Arc::clone(&graph), &pairs)?,
        PrioritySource::Scores(scores) => {
            if scores.len() != graph.vertex_count() {
                return Err(BuildError::AnnotationLength {
                    relation: name,
                    supplied: scores.len(),
                    expected: graph.vertex_count(),
                });
            }
            priority_from_scores(Arc::clone(&graph), &scores)
        }
        PrioritySource::Sources(sources, order) => {
            if sources.len() != graph.vertex_count() {
                return Err(BuildError::AnnotationLength {
                    relation: name,
                    supplied: sources.len(),
                    expected: graph.vertex_count(),
                });
            }
            priority_from_source_reliability(Arc::clone(&graph), &sources, &order)
        }
    };
    let ctx = RepairContext::with_graph(spec.instance, spec.fds, Arc::clone(&graph));
    Ok(RelationEntry::new(Arc::new(ctx), priority))
}

/// One shard of a relation's conflict structure: a contiguous, tuple-balanced run of the
/// relation's non-trivial connected components.
///
/// Shards are planned deterministically at build time (a pure function of the component
/// partition, independent of the build's parallelism) and are the coarse unit of the
/// shard layer described in the [module docs](self): builds fan out per `(relation,
/// FD)` and per relation, revalidation and warming fan out per component, and the
/// component memo is striped by global component id. Shard metadata is what ties those
/// levels together for observability (`.shards` in the CLI) and for the adaptive
/// chunking estimates of [`crate::PreparedQuery::execute_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Index of the relation inside its snapshot.
    relation: usize,
    /// Local (per-relation) component indices covered by this shard.
    local_components: Range<usize>,
    /// Global id of the shard's first component.
    comp_offset: usize,
    /// Total tuples across the shard's components.
    tuples: usize,
}

impl Shard {
    /// Index of the relation this shard belongs to (snapshot entry order).
    pub fn relation(&self) -> usize {
        self.relation
    }

    /// The **global** component ids covered by this shard (contiguous by construction).
    pub fn component_range(&self) -> Range<usize> {
        self.comp_offset..self.comp_offset + self.local_components.len()
    }

    /// Number of components in this shard (always at least 1).
    pub fn component_count(&self) -> usize {
        self.local_components.len()
    }

    /// Total tuples across this shard's components.
    pub fn tuple_count(&self) -> usize {
        self.tuples
    }
}

/// Upper bound on the number of shards one relation's components are partitioned into.
/// Shards are scheduling metadata, not storage: a small fixed fan-out keeps planning
/// O(components) while still feeding enough independent units to the worker pool.
const MAX_SHARDS_PER_RELATION: usize = 16;

/// Partitions `components` into at most [`MAX_SHARDS_PER_RELATION`] contiguous shards
/// balancing tuple counts (components stay in component-id order, so shard boundaries
/// are deterministic and independent of parallelism).
pub(crate) fn plan_shards(
    relation: usize,
    comp_offset: usize,
    components: &[TupleSet],
) -> Vec<Shard> {
    if components.is_empty() {
        return Vec::new();
    }
    let shard_count = components.len().min(MAX_SHARDS_PER_RELATION);
    let total_tuples: usize = components.iter().map(TupleSet::len).sum();
    let target = total_tuples.div_ceil(shard_count);
    let mut shards = Vec::with_capacity(shard_count);
    let mut start = 0usize;
    let mut tuples = 0usize;
    for (index, component) in components.iter().enumerate() {
        tuples += component.len();
        let remaining_components = components.len() - index - 1;
        let remaining_shards = shard_count - shards.len() - 1;
        // Close the shard once it reaches the tuple target — but never leave fewer
        // components than shards still to fill, and never close the last shard early.
        let must_close = remaining_components == remaining_shards;
        if remaining_shards > 0
            && remaining_components >= remaining_shards
            && (tuples >= target || must_close)
        {
            shards.push(Shard {
                relation,
                local_components: start..index + 1,
                comp_offset: comp_offset + start,
                tuples,
            });
            start = index + 1;
            tuples = 0;
        }
    }
    shards.push(Shard {
        relation,
        local_components: start..components.len(),
        comp_offset: comp_offset + start,
        tuples,
    });
    shards
}

/// One relation frozen inside a snapshot.
pub(crate) struct RelationEntry {
    /// Instance, constraints and conflict graph (shared with derived snapshots).
    pub(crate) ctx: Arc<RepairContext>,
    /// The priority orienting this relation's conflict graph.
    pub(crate) priority: Priority,
    /// The *non-trivial* connected components (≥ 2 tuples) of the conflict graph.
    pub(crate) components: Arc<Vec<TupleSet>>,
    /// Conflict-free tuples: members of every repair, of every family.
    pub(crate) base: Arc<TupleSet>,
    /// Per-tuple component index (`usize::MAX` for conflict-free tuples).
    pub(crate) comp_of: Arc<Vec<usize>>,
    /// Global id of this relation's first component within the snapshot.
    pub(crate) comp_offset: usize,
    /// The shard plan: contiguous, tuple-balanced runs of this relation's components.
    pub(crate) shards: Arc<Vec<Shard>>,
}

impl RelationEntry {
    fn new(ctx: Arc<RepairContext>, priority: Priority) -> Self {
        let graph = ctx.graph();
        let mut components = Vec::new();
        let mut base = TupleSet::with_capacity(graph.vertex_count());
        let mut comp_of = vec![usize::MAX; graph.vertex_count()];
        for component in graph.connected_components() {
            if component.len() < 2 {
                base.union_with(&component);
            } else {
                for t in component.iter() {
                    comp_of[t.index()] = components.len();
                }
                components.push(component);
            }
        }
        RelationEntry {
            ctx,
            priority,
            components: Arc::new(components),
            base: Arc::new(base),
            comp_of: Arc::new(comp_of),
            comp_offset: 0,
            shards: Arc::new(Vec::new()),
        }
    }

    /// Stitches in the relation's position and global component offset (assigned
    /// sequentially in relation order) and plans the shards over them.
    pub(crate) fn with_offset(mut self, relation: usize, comp_offset: usize) -> Self {
        self.comp_offset = comp_offset;
        self.shards = Arc::new(plan_shards(relation, comp_offset, &self.components));
        self
    }

    /// A copy of this entry sharing every [`Arc`]-held part (the cheap "clone").
    pub(crate) fn share(&self) -> RelationEntry {
        RelationEntry {
            ctx: Arc::clone(&self.ctx),
            priority: self.priority.clone(),
            components: Arc::clone(&self.components),
            base: Arc::clone(&self.base),
            comp_of: Arc::clone(&self.comp_of),
            comp_offset: self.comp_offset,
            shards: Arc::clone(&self.shards),
        }
    }

    /// Derives this entry with a different priority, sharing everything else, and
    /// reports which *local* component indices the change touches.
    fn with_priority(&self, priority: Priority) -> (RelationEntry, BTreeSet<usize>) {
        let old: BTreeSet<(TupleId, TupleId)> = self.priority.edges().into_iter().collect();
        let new: BTreeSet<(TupleId, TupleId)> = priority.edges().into_iter().collect();
        let mut affected = BTreeSet::new();
        for (winner, loser) in old.symmetric_difference(&new) {
            for t in [winner, loser] {
                let comp = self.comp_of[t.index()];
                if comp != usize::MAX {
                    affected.insert(comp);
                }
            }
        }
        let entry = RelationEntry {
            ctx: Arc::clone(&self.ctx),
            priority,
            components: Arc::clone(&self.components),
            base: Arc::clone(&self.base),
            comp_of: Arc::clone(&self.comp_of),
            comp_offset: self.comp_offset,
            shards: Arc::clone(&self.shards),
        };
        (entry, affected)
    }
}

/// Key of a memoised answer: query fingerprint, family and execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct AnswerKey {
    pub(crate) fingerprint: u64,
    pub(crate) family: FamilyKind,
    pub(crate) mode: AnswerMode,
}

/// What kind of result an [`AnswerKey`] caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum AnswerMode {
    /// Certain answers (rows in every preferred repair).
    Certain,
    /// Possible answers (rows in some preferred repair).
    Possible,
    /// The closed-query [`CqaOutcome`].
    Closed,
}

/// A memoised execution result.
pub(crate) struct AnswerEntry {
    /// The exact formula this entry answers. The memo key holds only a 64-bit
    /// fingerprint, so hits re-check the formula to rule out hash collisions.
    pub(crate) formula: pdqi_query::Formula,
    /// Sorted, de-duplicated answer rows (empty for closed outcomes).
    pub(crate) rows: Arc<Vec<Vec<Value>>>,
    /// Column headers (the query's free variables, lexicographically).
    pub(crate) columns: Arc<Vec<String>>,
    /// The closed-query outcome, for [`AnswerMode::Closed`].
    pub(crate) outcome: Option<CqaOutcome>,
    /// Global component ids this result depends on (used by priority invalidation).
    pub(crate) depends_on: Vec<usize>,
    /// Snapshot relation indices the query mentions (used by mutation invalidation —
    /// a conflict-free relation contributes no component to `depends_on`, so component
    /// ids alone cannot tell whether a mutation touched the answer).
    pub(crate) relations: Vec<usize>,
    /// Whether the result depends on the priority at all.
    pub(crate) priority_sensitive: bool,
}

/// A memoised physical plan: the cost-based planner's choice for one
/// `(fingerprint, family)` on this snapshot, plus the invalidation footprint that
/// decides whether a derived snapshot may keep it. Mirrors [`AnswerEntry`]: plans are
/// carried across priority/mutation/schema derivations exactly when the cardinalities
/// they were costed from survived, and re-costed otherwise.
pub(crate) struct PlanEntry {
    /// The exact formula this plan was costed for (the cache key holds only a 64-bit
    /// fingerprint, so hits re-check the formula to rule out hash collisions).
    pub(crate) formula: pdqi_query::Formula,
    /// The chosen physical plan.
    pub(crate) plan: Arc<pdqi_query::PhysicalPlan>,
    /// Global component ids whose memoised repair counts fed the cost model.
    pub(crate) depends_on: Vec<usize>,
    /// Snapshot relation indices the query mentions (mutation invalidation; see
    /// [`AnswerEntry::relations`]).
    pub(crate) relations: Vec<usize>,
    /// Whether the plan's cardinalities depend on the priority (non-`Rep` families).
    pub(crate) priority_sensitive: bool,
}

/// Default cap on memoised answers per snapshot. The component memo is naturally
/// bounded (components × families), but answers grow with the number of distinct
/// queries; past this limit the **oldest** entry is evicted (insertion order), which
/// keeps long-lived sessions at a bounded footprint with O(1) amortised insertions while
/// retaining the recently stored answers a serving workload is most likely to repeat.
const ANSWER_MEMO_LIMIT: usize = 4096;

/// Cap on memoised physical plans per snapshot. Plans are tiny (a few vectors of
/// indices), so a simple insert-refusal bound suffices: past the cap new plans are
/// handed back uncached and re-costed per execution.
const PLAN_MEMO_LIMIT: usize = 4096;

/// Hit/miss/eviction counters of a snapshot's memo, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Per-component preferred-repair enumerations served from the memo.
    pub component_hits: u64,
    /// Per-component preferred-repair enumerations actually computed.
    pub component_misses: u64,
    /// Query executions served from the memo.
    pub answer_hits: u64,
    /// Query executions actually computed.
    pub answer_misses: u64,
    /// Answers evicted from the bounded memo (oldest first).
    pub answer_evictions: u64,
}

/// Number of lock stripes the component memo is split into. Global component ids map to
/// stripes by `id % MEMO_STRIPES`; shard planning assigns ids contiguously, so the
/// components of a hot shard spread across stripes instead of serialising on one lock
/// when builds, warms and queries race.
const MEMO_STRIPES: usize = 16;

/// One lock stripe of the component memo.
type MemoStripe = RwLock<HashMap<(usize, FamilyKind), Arc<Vec<TupleSet>>>>;

/// `(global component id, family)` → that component's preferred repairs, striped by
/// component id (each shard's memo slice spans several stripes; see [`MEMO_STRIPES`]).
pub(crate) struct ComponentMemo {
    stripes: Vec<MemoStripe>,
}

impl Default for ComponentMemo {
    fn default() -> Self {
        ComponentMemo { stripes: (0..MEMO_STRIPES).map(|_| RwLock::default()).collect() }
    }
}

impl ComponentMemo {
    fn stripe(&self, comp: usize) -> &MemoStripe {
        &self.stripes[comp % MEMO_STRIPES]
    }

    fn get(&self, key: &(usize, FamilyKind)) -> Option<Arc<Vec<TupleSet>>> {
        self.stripe(key.0).read().expect("memo lock").get(key).cloned()
    }

    fn contains(&self, key: &(usize, FamilyKind)) -> bool {
        self.stripe(key.0).read().expect("memo lock").contains_key(key)
    }

    /// Inserts `value` unless a racing computation beat this one to the key (both
    /// computed the same deterministic result; the first stays, keeping every
    /// outstanding `Arc` consistent).
    pub(crate) fn insert_if_missing(&self, key: (usize, FamilyKind), value: &Arc<Vec<TupleSet>>) {
        self.stripe(key.0)
            .write()
            .expect("memo lock")
            .entry(key)
            .or_insert_with(|| Arc::clone(value));
    }

    /// Visits every memoised entry, holding one stripe lock at a time.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&(usize, FamilyKind), &Arc<Vec<TupleSet>>)) {
        for stripe in &self.stripes {
            for (key, value) in stripe.read().expect("memo lock").iter() {
                f(key, value);
            }
        }
    }
}

/// The bounded answer memo: entries plus their insertion order. Invariant: `order`
/// holds exactly the keys of `entries`, each once, oldest first.
struct AnswerMemo {
    entries: HashMap<AnswerKey, Arc<AnswerEntry>>,
    order: VecDeque<AnswerKey>,
    capacity: usize,
}

impl Default for AnswerMemo {
    fn default() -> Self {
        AnswerMemo { entries: HashMap::new(), order: VecDeque::new(), capacity: ANSWER_MEMO_LIMIT }
    }
}

#[derive(Default)]
pub(crate) struct Memo {
    pub(crate) components: ComponentMemo,
    /// Memoised query executions.
    answers: RwLock<AnswerMemo>,
    /// Memoised physical plans, keyed by `(query fingerprint, family)`.
    plans: RwLock<HashMap<(u64, FamilyKind), Arc<PlanEntry>>>,
    component_hits: AtomicU64,
    component_misses: AtomicU64,
    answer_hits: AtomicU64,
    answer_misses: AtomicU64,
    answer_evictions: AtomicU64,
}

impl Memo {
    /// Carries answer entries over from `parent` into this (fresh) memo, copying the
    /// capacity and walking the old insertion order so surviving entries keep their
    /// age. `keep` decides per entry: `None` drops it, `Some(depends_on)` keeps it
    /// with the given (possibly remapped) component dependencies — the entry is
    /// shared when they are unchanged and re-assembled otherwise. Every derivation
    /// (priority revision, mutation delta) funnels through here, so the
    /// entries/order/capacity invariant lives in one place.
    pub(crate) fn carry_answers_from(
        &self,
        parent: &Memo,
        mut keep: impl FnMut(&AnswerEntry) -> Option<Vec<usize>>,
    ) {
        let old = parent.answers.read().expect("memo lock");
        let mut new = self.answers.write().expect("memo lock");
        new.capacity = old.capacity;
        for key in old.order.iter() {
            let answer = &old.entries[key];
            let Some(depends_on) = keep(answer) else {
                continue;
            };
            let entry = if depends_on == answer.depends_on {
                Arc::clone(answer)
            } else {
                Arc::new(AnswerEntry {
                    formula: answer.formula.clone(),
                    rows: Arc::clone(&answer.rows),
                    columns: Arc::clone(&answer.columns),
                    outcome: answer.outcome,
                    depends_on,
                    relations: answer.relations.clone(),
                    priority_sensitive: answer.priority_sensitive,
                })
            };
            new.order.push_back(*key);
            new.entries.insert(*key, entry);
        }
    }

    /// The plan-cache analogue of [`Memo::carry_answers_from`]: every derivation calls
    /// both with the *same* keep closure, so a plan survives a swap exactly when the
    /// memoised cardinalities it was costed from did — anything else is dropped here
    /// and re-costed by the first execution to need it.
    pub(crate) fn carry_plans_from(
        &self,
        parent: &Memo,
        mut keep: impl FnMut(&PlanEntry) -> Option<Vec<usize>>,
    ) {
        let old = parent.plans.read().expect("memo lock");
        let mut new = self.plans.write().expect("memo lock");
        for (key, plan) in old.iter() {
            let Some(depends_on) = keep(plan) else {
                continue;
            };
            let entry = if depends_on == plan.depends_on {
                Arc::clone(plan)
            } else {
                Arc::new(PlanEntry {
                    formula: plan.formula.clone(),
                    plan: Arc::clone(&plan.plan),
                    depends_on,
                    relations: plan.relations.clone(),
                    priority_sensitive: plan.priority_sensitive,
                })
            };
            new.insert(*key, entry);
        }
    }
}

pub(crate) struct SnapshotInner {
    pub(crate) relations: Vec<RelationEntry>,
    pub(crate) by_name: BTreeMap<String, usize>,
    pub(crate) memo: Memo,
}

/// An immutable, shareable engine state: relations, constraints, conflict graphs,
/// connected components and priorities, plus the per-component and per-query memo.
///
/// Cloning is cheap (an [`Arc`] bump) and clones share the memo. See the
/// [module docs](self) for the overall design and [`EngineBuilder`] for construction.
#[derive(Clone)]
pub struct EngineSnapshot {
    pub(crate) inner: Arc<SnapshotInner>,
}

impl fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.memo_stats();
        f.debug_struct("EngineSnapshot")
            .field("relations", &self.relation_names())
            .field("components", &self.component_count())
            .field("memo", &stats)
            .finish()
    }
}

impl EngineSnapshot {
    /// A fresh builder (convenience for `EngineBuilder::new()`).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Number of relations in the snapshot.
    pub fn relation_count(&self) -> usize {
        self.inner.relations.len()
    }

    /// The relation names, in lexicographic order.
    pub fn relation_names(&self) -> Vec<String> {
        self.inner.by_name.keys().cloned().collect()
    }

    /// Whether the snapshot contains a relation called `name`.
    pub fn has_relation(&self, name: &str) -> bool {
        self.inner.by_name.contains_key(name)
    }

    /// Total number of non-trivial conflict components across all relations.
    pub fn component_count(&self) -> usize {
        self.inner.relations.iter().map(|r| r.components.len()).sum()
    }

    pub(crate) fn entries(&self) -> &[RelationEntry] {
        &self.inner.relations
    }

    pub(crate) fn entry_index(&self, name: &str) -> Option<usize> {
        self.inner.by_name.get(name).copied()
    }

    fn single(&self) -> &RelationEntry {
        assert_eq!(
            self.inner.relations.len(),
            1,
            "this accessor requires a single-relation snapshot; use the *_of(name) variant"
        );
        &self.inner.relations[0]
    }

    /// The repair context of a single-relation snapshot.
    ///
    /// # Panics
    /// If the snapshot holds more than one relation (use [`EngineSnapshot::context_of`]).
    pub fn context(&self) -> &RepairContext {
        &self.single().ctx
    }

    /// The repair context of relation `name`.
    pub fn context_of(&self, name: &str) -> Option<&RepairContext> {
        self.entry_index(name).map(|i| &*self.inner.relations[i].ctx)
    }

    /// The conflict graph of a single-relation snapshot.
    pub fn graph(&self) -> &Arc<ConflictGraph> {
        self.single().ctx.graph()
    }

    /// The priority of a single-relation snapshot.
    pub fn priority(&self) -> &Priority {
        &self.single().priority
    }

    /// The priority of relation `name`.
    pub fn priority_of(&self, name: &str) -> Option<&Priority> {
        self.entry_index(name).map(|i| &self.inner.relations[i].priority)
    }

    /// Whether every relation of the snapshot is consistent.
    pub fn is_consistent(&self) -> bool {
        self.inner.relations.iter().all(|r| r.ctx.is_consistent())
    }

    /// The number of repairs of the whole snapshot: the product of per-component repair
    /// counts, computed from the memoised component enumerations and saturating at
    /// `u128::MAX`.
    pub fn count_repairs(&self) -> u128 {
        self.preferred_repair_count(FamilyKind::Rep)
    }

    /// The number of preferred repairs of the given family (product of per-component
    /// counts, saturating at `u128::MAX`).
    pub fn preferred_repair_count(&self, kind: FamilyKind) -> u128 {
        let mut total = 1u128;
        for (rel, entry) in self.inner.relations.iter().enumerate() {
            for comp in 0..entry.components.len() {
                let count = self.component_preferred(rel, comp, kind).len() as u128;
                total = total.saturating_mul(count);
            }
        }
        total
    }

    /// Memo hit/miss/eviction counters (fresh counters on derived snapshots).
    pub fn memo_stats(&self) -> MemoStats {
        let memo = &self.inner.memo;
        MemoStats {
            component_hits: memo.component_hits.load(Ordering::Relaxed),
            component_misses: memo.component_misses.load(Ordering::Relaxed),
            answer_hits: memo.answer_hits.load(Ordering::Relaxed),
            answer_misses: memo.answer_misses.load(Ordering::Relaxed),
            answer_evictions: memo.answer_evictions.load(Ordering::Relaxed),
        }
    }

    /// The maximum number of memoised answers this snapshot retains before evicting the
    /// oldest entry.
    pub fn answer_cache_capacity(&self) -> usize {
        self.inner.memo.answers.read().expect("memo lock").capacity
    }

    /// Changes the bound of the answer memo (clamped to at least 1), evicting the oldest
    /// entries immediately if the memo is over the new capacity. Affects every clone
    /// sharing this snapshot's memo; derived snapshots inherit the capacity.
    pub fn set_answer_cache_capacity(&self, capacity: usize) {
        let mut answers = self.inner.memo.answers.write().expect("memo lock");
        answers.capacity = capacity.max(1);
        while answers.entries.len() > answers.capacity {
            let Some(oldest) = answers.order.pop_front() else { break };
            if answers.entries.remove(&oldest).is_some() {
                self.inner.memo.answer_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The preferred repairs of one component under one family, served from the memo
    /// when the pair was enumerated before.
    ///
    /// The component tests exploit that every family factorises over components:
    /// * `Rep` — every maximal independent set of the component;
    /// * `L-Rep` / `S-Rep` — the optimality scans only inspect tuples adjacent to the
    ///   candidate, so running them on a component-restricted candidate is exactly the
    ///   component-local test;
    /// * `G-Rep` — `≪`-maximality among the component's repairs (pairwise, which also
    ///   sidesteps the co-NP search of the monolithic check);
    /// * `C-Rep` — Algorithm 1 restricted to the component's tuples.
    pub(crate) fn component_preferred(
        &self,
        rel: usize,
        comp: usize,
        kind: FamilyKind,
    ) -> Arc<Vec<TupleSet>> {
        let entry = &self.inner.relations[rel];
        let key = (entry.comp_offset + comp, kind);
        let memo = &self.inner.memo;
        if let Some(cached) = memo.components.get(&key) {
            memo.component_hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        memo.component_misses.fetch_add(1, Ordering::Relaxed);
        let graph = entry.ctx.graph();
        let priority = &entry.priority;
        let component = &entry.components[comp];
        // The planner's derive-from-Rep strategy: `L-Rep`/`S-Rep`/`G-Rep` all filter
        // the maximal-independent-set list, and a memoised `Rep` entry *is* that list
        // verbatim — reuse it instead of re-running the MIS search. Bit-identical by
        // construction; `PDQI_FORCE_NAIVE_PLAN` keeps the recomputing path exercised.
        let derive_eligible =
            matches!(kind, FamilyKind::Local | FamilyKind::SemiGlobal | FamilyKind::Global)
                && !pdqi_query::naive_plan_forced();
        let derived =
            derive_eligible.then(|| memo.components.get(&(key.0, FamilyKind::Rep))).flatten();
        let mis = match derived {
            Some(rep) => {
                pdqi_query::planner::note_derived_component();
                rep.as_ref().clone()
            }
            None => maximal_independent_sets_within(graph, component),
        };
        let preferred: Vec<TupleSet> = match kind {
            FamilyKind::Rep => mis,
            FamilyKind::Local => {
                mis.into_iter().filter(|m| is_locally_optimal(graph, priority, m)).collect()
            }
            FamilyKind::SemiGlobal => {
                mis.into_iter().filter(|m| is_semi_globally_optimal(graph, priority, m)).collect()
            }
            FamilyKind::Global => {
                let keep: Vec<bool> = mis
                    .iter()
                    .map(|m| {
                        !mis.iter().any(|other| other != m && preferred_over(priority, m, other))
                    })
                    .collect();
                mis.into_iter().zip(keep).filter_map(|(m, k)| k.then_some(m)).collect()
            }
            FamilyKind::Common => common_repairs_within(graph, priority, component, usize::MAX),
        };
        let preferred = Arc::new(preferred);
        memo.components.insert_if_missing(key, &preferred);
        preferred
    }

    /// The per-component choice lists of the requested relations, in enumeration order
    /// (relations as given, components in component-id order). Returns `None` if some
    /// component has no preferred repair at all (impossible for families satisfying P1,
    /// but representable): the cartesian product is empty.
    pub(crate) fn selection_lists(
        &self,
        kind: FamilyKind,
        relations: &[usize],
    ) -> Option<Vec<(usize, Arc<Vec<TupleSet>>)>> {
        let mut lists: Vec<(usize, Arc<Vec<TupleSet>>)> = Vec::new();
        for &rel in relations {
            let entry = &self.inner.relations[rel];
            for comp in 0..entry.components.len() {
                let choices = self.component_preferred(rel, comp, kind);
                if choices.is_empty() {
                    return None;
                }
                lists.push((rel, choices));
            }
        }
        Some(lists)
    }

    /// A fresh base selection: one [`TupleSet`] per relation holding its conflict-free
    /// tuples, index-aligned with [`EngineSnapshot::entries`].
    pub(crate) fn base_selection(&self) -> Vec<TupleSet> {
        self.inner.relations.iter().map(|entry| TupleSet::clone(&entry.base)).collect()
    }

    /// Visits every preferred repair of the given family, assembled as the cartesian
    /// product of memoised per-component preferred repairs over *all* relations. Each
    /// visited slice holds one [`TupleSet`] per relation, index-aligned with
    /// [`EngineSnapshot::entries`]. Returns `true` if the enumeration ran to completion.
    pub(crate) fn for_each_preferred_selection(
        &self,
        kind: FamilyKind,
        relations: &[usize],
        callback: &mut dyn FnMut(&[TupleSet]) -> ControlFlow<()>,
    ) -> bool {
        let Some(lists) = self.selection_lists(kind, relations) else {
            return true;
        };
        let mut current = self.base_selection();
        self.combine_selections(&lists, 0, &mut current, callback).is_continue()
    }

    /// Enumerates the preferred repairs of every *missing* `(component, family)` memo
    /// entry in parallel, returning the number of components actually computed.
    ///
    /// Per-component enumeration is pure (it reads only the immutable graph and
    /// priority), so fanning components out over workers is safe and the memo contents
    /// are bit-identical to a sequential warm-up. Two serving uses:
    ///
    /// * right after [`EngineBuilder::build`], to pay the whole enumeration cost up
    ///   front across cores before queries arrive;
    /// * right after [`EngineSnapshot::with_priority`], to revalidate **only the
    ///   components the priority change invalidated** — untouched components were
    ///   carried over and are skipped here.
    pub fn warm_components(&self, kind: FamilyKind, parallelism: Parallelism) -> usize {
        let all: Vec<usize> = (0..self.inner.relations.len()).collect();
        self.warm_relation_components(kind, &all, parallelism)
    }

    /// [`EngineSnapshot::warm_components`] restricted to the given relation indices
    /// (used by query execution to warm only the components a query depends on).
    pub(crate) fn warm_relation_components(
        &self,
        kind: FamilyKind,
        relations: &[usize],
        parallelism: Parallelism,
    ) -> usize {
        let mut missing: Vec<(usize, usize)> = Vec::new();
        for &rel in relations {
            let entry = &self.inner.relations[rel];
            for comp in 0..entry.components.len() {
                if !self.inner.memo.components.contains(&(entry.comp_offset + comp, kind)) {
                    missing.push((rel, comp));
                }
            }
        }
        // Largest components first: they dominate enumeration time, and scheduling them
        // early keeps the workers balanced.
        let sizes: Vec<usize> = missing
            .iter()
            .map(|&(rel, comp)| self.inner.relations[rel].components[comp].len())
            .collect();
        let order = pdqi_solve::mis::schedule_by_descending_size(&sizes);
        let jobs: Vec<(usize, usize)> = order.into_iter().map(|i| missing[i]).collect();
        crate::parallel::run_jobs(parallelism, jobs.len(), |i| {
            let (rel, comp) = jobs[i];
            self.component_preferred(rel, comp, kind);
        });
        jobs.len()
    }

    /// A snapshot sharing this snapshot's relations, graphs and priorities but starting
    /// from an **empty** memo (entries, counters and all; the answer-cache capacity is
    /// kept). Useful for benchmarking cold-start behaviour and for reclaiming memo
    /// memory in long-lived servers.
    pub fn with_cleared_memo(&self) -> EngineSnapshot {
        let relations: Vec<RelationEntry> =
            self.inner.relations.iter().map(RelationEntry::share).collect();
        let memo = Memo::default();
        {
            // Copy the capacity while holding the parent's lock: a concurrent
            // `set_answer_cache_capacity` then strictly precedes or follows the
            // derivation, so the derived snapshot always carries a bound the parent
            // actually had (never a torn or stale intermediate).
            let parent = self.inner.memo.answers.read().expect("memo lock");
            memo.answers.write().expect("memo lock").capacity = parent.capacity;
        }
        EngineSnapshot {
            inner: Arc::new(SnapshotInner { relations, by_name: self.inner.by_name.clone(), memo }),
        }
    }

    fn combine_selections(
        &self,
        lists: &[(usize, Arc<Vec<TupleSet>>)],
        index: usize,
        current: &mut Vec<TupleSet>,
        callback: &mut dyn FnMut(&[TupleSet]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if index == lists.len() {
            return callback(current);
        }
        let (rel, choices) = &lists[index];
        for choice in choices.iter() {
            current[*rel].union_with(choice);
            let flow = self.combine_selections(lists, index + 1, current, callback);
            current[*rel].remove_all(choice);
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// Visits every preferred repair of a single-relation snapshot; the callback may
    /// stop early. Returns `true` if the enumeration ran to completion.
    pub fn for_each_preferred(
        &self,
        kind: FamilyKind,
        callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
    ) -> bool {
        self.single();
        self.for_each_preferred_selection(kind, &[0], &mut |selection| callback(&selection[0]))
    }

    /// Up to `limit` preferred repairs of a single-relation snapshot.
    pub fn preferred_repairs(&self, kind: FamilyKind, limit: usize) -> Vec<TupleSet> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        self.for_each_preferred(kind, &mut |repair| {
            out.push(repair.clone());
            if out.len() >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        out
    }

    /// Up to `limit` plain repairs of a single-relation snapshot.
    pub fn repairs(&self, limit: usize) -> Vec<TupleSet> {
        self.preferred_repairs(FamilyKind::Rep, limit)
    }

    /// X-repair checking on a single-relation snapshot: whether `candidate` is a
    /// preferred repair of the given family.
    pub fn is_preferred_repair(&self, kind: FamilyKind, candidate: &TupleSet) -> bool {
        let entry = self.single();
        kind.family().is_preferred(&entry.ctx, &entry.priority, candidate)
    }

    /// Algorithm 1 on a single-relation snapshot: the unique cleaning outcome for a
    /// total priority.
    pub fn clean(&self) -> Result<TupleSet, CleaningError> {
        let entry = self.single();
        clean_with_total_priority(entry.ctx.graph(), &entry.priority)
    }

    /// Derives a snapshot with a revised priority for a single-relation snapshot. The
    /// instance, conflict graph and components are shared; memo entries are retained
    /// unless the priority change touches the component they describe.
    pub fn with_priority(&self, priority: Priority) -> Result<EngineSnapshot, BuildError> {
        self.single();
        let name = self.inner.relations[0].ctx.instance().schema().name().to_string();
        self.with_priority_for(&name, priority)
    }

    /// Derives a snapshot with a revised priority for relation `name`; see
    /// [`EngineSnapshot::with_priority`].
    pub fn with_priority_for(
        &self,
        name: &str,
        priority: Priority,
    ) -> Result<EngineSnapshot, BuildError> {
        self.with_priority_reported_for(name, priority).map(|(snapshot, _)| snapshot)
    }

    /// [`EngineSnapshot::with_priority_for`] that also reports **which global
    /// component ids the priority change touched**: exactly the components whose
    /// priority-sensitive memo entries the derivation dropped. Component ids are
    /// stable across the derivation (priority revisions share the conflict graph and
    /// its partition), so the reported set is the precise invalidation footprint a
    /// swap observer needs to prove answers unchanged — an answer whose
    /// `depends_on` components are disjoint from this set was carried over verbatim.
    pub fn with_priority_reported_for(
        &self,
        name: &str,
        priority: Priority,
    ) -> Result<(EngineSnapshot, BTreeSet<usize>), BuildError> {
        let Some(rel) = self.entry_index(name) else {
            return Err(BuildError::UnknownRelation { relation: name.to_string() });
        };
        let entry = &self.inner.relations[rel];
        let same_graph = Arc::ptr_eq(priority.graph(), entry.ctx.graph())
            || (priority.graph().vertex_count() == entry.ctx.graph().vertex_count()
                && priority.graph().edges() == entry.ctx.graph().edges());
        if !same_graph {
            return Err(BuildError::GraphMismatch { relation: name.to_string() });
        }
        let (new_entry, affected_local) = entry.with_priority(priority);
        let affected: BTreeSet<usize> =
            affected_local.into_iter().map(|c| entry.comp_offset + c).collect();
        let relations: Vec<RelationEntry> = self
            .inner
            .relations
            .iter()
            .enumerate()
            .map(|(i, existing)| if i == rel { new_entry.share() } else { existing.share() })
            .collect();
        // Carry over every memo entry the priority change cannot have touched: `Rep`
        // never depends on the priority, and other families only through the affected
        // components.
        let memo = Memo::default();
        self.inner.memo.components.for_each(|&(comp, kind), sets| {
            if kind == FamilyKind::Rep || !affected.contains(&comp) {
                memo.components.insert_if_missing((comp, kind), sets);
            }
        });
        memo.carry_answers_from(&self.inner.memo, |answer| {
            let untouched = !answer.priority_sensitive
                || answer.depends_on.iter().all(|comp| !affected.contains(comp));
            untouched.then(|| answer.depends_on.clone())
        });
        memo.carry_plans_from(&self.inner.memo, |plan| {
            let untouched = !plan.priority_sensitive
                || plan.depends_on.iter().all(|comp| !affected.contains(comp));
            untouched.then(|| plan.depends_on.clone())
        });
        let snapshot = EngineSnapshot {
            inner: Arc::new(SnapshotInner { relations, by_name: self.inner.by_name.clone(), memo }),
        };
        Ok((snapshot, affected))
    }

    /// Derives a single-relation snapshot whose priority is built from explicit
    /// `winner ≻ loser` pairs over this snapshot's conflict graph.
    pub fn with_priority_pairs(
        &self,
        pairs: &[(TupleId, TupleId)],
    ) -> Result<EngineSnapshot, BuildError> {
        let graph = Arc::clone(self.single().ctx.graph());
        let priority = Priority::from_pairs(graph, pairs)?;
        self.with_priority(priority)
    }

    /// [`EngineSnapshot::with_priority`] followed by **parallel revalidation** of
    /// exactly the memo entries the priority change invalidated: every `(component,
    /// family)` pair the parent had memoised and the derivation dropped is re-enumerated
    /// across workers (largest components first) before the snapshot is handed out.
    ///
    /// The derived snapshot is indistinguishable from `with_priority` + lazy
    /// re-enumeration — revalidation only moves the recomputation cost to this call,
    /// where it fans out over the invalidated shards instead of serialising on the
    /// first query to touch them.
    pub fn with_priority_revalidated(
        &self,
        priority: Priority,
        parallelism: Parallelism,
    ) -> Result<EngineSnapshot, BuildError> {
        self.single();
        let name = self.inner.relations[0].ctx.instance().schema().name().to_string();
        self.with_priority_revalidated_for(&name, priority, parallelism)
    }

    /// [`EngineSnapshot::with_priority_revalidated`] for relation `name` of a
    /// multi-relation snapshot.
    pub fn with_priority_revalidated_for(
        &self,
        name: &str,
        priority: Priority,
        parallelism: Parallelism,
    ) -> Result<EngineSnapshot, BuildError> {
        self.with_priority_revalidated_reported_for(name, priority, parallelism)
            .map(|(snapshot, _)| snapshot)
    }

    /// [`EngineSnapshot::with_priority_revalidated_for`] that also reports the global
    /// component ids the priority change touched (see
    /// [`EngineSnapshot::with_priority_reported_for`]) — the registry's
    /// priority-revision path forwards this set to swap observers so subscriptions can
    /// prove answers unchanged without re-executing.
    pub fn with_priority_revalidated_reported_for(
        &self,
        name: &str,
        priority: Priority,
        parallelism: Parallelism,
    ) -> Result<(EngineSnapshot, BTreeSet<usize>), BuildError> {
        let (derived, affected) = self.with_priority_reported_for(name, priority)?;
        // The invalidated slice of the memo: entries the parent had that derivation
        // dropped (only components the priority change touched, only priority-sensitive
        // families).
        let mut dropped: Vec<(usize, FamilyKind)> = Vec::new();
        self.inner.memo.components.for_each(|key, _| {
            if !derived.inner.memo.components.contains(key) {
                dropped.push(*key);
            }
        });
        dropped.sort_unstable_by_key(|&(comp, kind)| (comp, kind.label()));
        let weights: Vec<u128> = dropped
            .iter()
            .map(|&(comp, _)| {
                let (rel, local) = derived.locate_component(comp);
                derived.inner.relations[rel].components[local].len() as u128
            })
            .collect();
        let order = pdqi_solve::mis::schedule_by_descending_weight(&weights);
        let jobs: Vec<(usize, FamilyKind)> = order.into_iter().map(|i| dropped[i]).collect();
        crate::parallel::run_jobs(parallelism, jobs.len(), |i| {
            let (comp, kind) = jobs[i];
            let (rel, local) = derived.locate_component(comp);
            derived.component_preferred(rel, local, kind);
        });
        Ok((derived, affected))
    }

    /// Maps a global component id back to `(relation index, local component index)`.
    pub(crate) fn locate_component(&self, global: usize) -> (usize, usize) {
        for (rel, entry) in self.inner.relations.iter().enumerate() {
            if global >= entry.comp_offset && global < entry.comp_offset + entry.components.len() {
                return (rel, global - entry.comp_offset);
            }
        }
        panic!("global component id {global} is out of range for this snapshot");
    }

    /// Total number of shards across all relations (each relation's components are
    /// partitioned into contiguous, tuple-balanced [`Shard`]s at build time).
    pub fn shard_count(&self) -> usize {
        self.inner.relations.iter().map(|r| r.shards.len()).sum()
    }

    /// The shard plan of relation `name` (empty when the relation is conflict-free).
    pub fn shards_of(&self, name: &str) -> Option<&[Shard]> {
        self.entry_index(name).map(|i| self.inner.relations[i].shards.as_slice())
    }

    /// The shard plan of a single-relation snapshot.
    ///
    /// # Panics
    /// If the snapshot holds more than one relation (use [`EngineSnapshot::shards_of`]).
    pub fn shards(&self) -> &[Shard] {
        &self.single().shards
    }

    /// Estimated evaluation cost of one repair selection over the given relations, in
    /// tuples: the conflict-free base plus the average memoised per-component preferred
    /// repair size. Adaptive chunking uses this to convert the repair-product size into
    /// estimated work (see [`crate::PreparedQuery::execute_with`]).
    pub(crate) fn estimate_selection_cost(
        &self,
        relations: &[usize],
        lists: &[(usize, Arc<Vec<TupleSet>>)],
    ) -> u128 {
        let base: u128 =
            relations.iter().map(|&rel| self.inner.relations[rel].base.len() as u128).sum();
        let per_component: u128 = lists
            .iter()
            .map(|(_, choices)| {
                let tuples: u128 = choices.iter().map(|c| c.len() as u128).sum();
                tuples / (choices.len() as u128).max(1)
            })
            .sum();
        (base + per_component).max(1)
    }

    /// Looks up a memoised answer. The key carries only a fingerprint, so a hit is
    /// trusted only when the stored formula matches `formula` exactly — a 64-bit hash
    /// collision between distinct queries degrades to a miss instead of a wrong answer.
    pub(crate) fn cached_answer(
        &self,
        key: &AnswerKey,
        formula: &pdqi_query::Formula,
    ) -> Option<Arc<AnswerEntry>> {
        let memo = &self.inner.memo;
        let hit = memo
            .answers
            .read()
            .expect("memo lock")
            .entries
            .get(key)
            .filter(|entry| entry.formula == *formula)
            .cloned();
        match &hit {
            Some(_) => memo.answer_hits.fetch_add(1, Ordering::Relaxed),
            None => memo.answer_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Stores a memoised answer. `relations` are the indices of the relations the query
    /// mentions; the entry records their components so priority derivation can decide
    /// whether to keep it. The memo is bounded ([`ANSWER_MEMO_LIMIT`] by default; see
    /// [`EngineSnapshot::set_answer_cache_capacity`]): when full, the oldest entry is
    /// evicted and counted in [`MemoStats::answer_evictions`].
    pub(crate) fn store_answer(
        &self,
        key: AnswerKey,
        formula: &pdqi_query::Formula,
        relations: &[usize],
        rows: Arc<Vec<Vec<Value>>>,
        columns: Arc<Vec<String>>,
        outcome: Option<CqaOutcome>,
    ) -> Arc<AnswerEntry> {
        let mut depends_on = Vec::new();
        for &rel in relations {
            let entry = &self.inner.relations[rel];
            depends_on.extend(entry.comp_offset..entry.comp_offset + entry.components.len());
        }
        let entry = Arc::new(AnswerEntry {
            formula: formula.clone(),
            rows,
            columns,
            outcome,
            depends_on,
            relations: relations.to_vec(),
            priority_sensitive: key.family != FamilyKind::Rep,
        });
        let mut answers = self.inner.memo.answers.write().expect("memo lock");
        if !answers.entries.contains_key(&key) {
            while answers.entries.len() >= answers.capacity {
                let Some(oldest) = answers.order.pop_front() else { break };
                if answers.entries.remove(&oldest).is_some() {
                    self.inner.memo.answer_evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            answers.order.push_back(key);
        }
        answers.entries.insert(key, Arc::clone(&entry));
        entry
    }

    /// The memoised preferred-repair count of one component, when the `(component,
    /// family)` pair has been enumerated before — the exact cardinality the cost-based
    /// planner feeds on (`None` keeps the planner on its structural estimate).
    pub(crate) fn memoised_component_count(
        &self,
        rel: usize,
        comp: usize,
        kind: FamilyKind,
    ) -> Option<usize> {
        let entry = &self.inner.relations[rel];
        self.inner.memo.components.get(&(entry.comp_offset + comp, kind)).map(|sets| sets.len())
    }

    /// Looks up a memoised physical plan; like [`EngineSnapshot::cached_answer`], a
    /// fingerprint hit is trusted only when the stored formula matches exactly.
    pub(crate) fn cached_plan(
        &self,
        fingerprint: u64,
        family: FamilyKind,
        formula: &pdqi_query::Formula,
    ) -> Option<Arc<PlanEntry>> {
        self.inner
            .memo
            .plans
            .read()
            .expect("memo lock")
            .get(&(fingerprint, family))
            .filter(|entry| entry.formula == *formula)
            .cloned()
    }

    /// Caches a costed physical plan under `(fingerprint, family)`, recording the
    /// component/relation footprint derivations use to decide whether it survives a
    /// swap. Bounded ([`PLAN_MEMO_LIMIT`]): at capacity the plan is handed back
    /// uncached instead of evicting.
    pub(crate) fn store_plan(
        &self,
        fingerprint: u64,
        family: FamilyKind,
        formula: &pdqi_query::Formula,
        relations: &[usize],
        plan: pdqi_query::PhysicalPlan,
    ) -> Arc<PlanEntry> {
        let mut depends_on = Vec::new();
        for &rel in relations {
            let entry = &self.inner.relations[rel];
            depends_on.extend(entry.comp_offset..entry.comp_offset + entry.components.len());
        }
        let entry = Arc::new(PlanEntry {
            formula: formula.clone(),
            plan: Arc::new(plan),
            depends_on,
            relations: relations.to_vec(),
            priority_sensitive: family != FamilyKind::Rep,
        });
        let mut plans = self.inner.memo.plans.write().expect("memo lock");
        let key = (fingerprint, family);
        if plans.len() < PLAN_MEMO_LIMIT || plans.contains_key(&key) {
            plans.insert(key, Arc::clone(&entry));
        }
        entry
    }

    /// Whether the plan cache holds a costed plan for this query fingerprint and
    /// family — the invalidation-test observability hook: after a swap, exactly the
    /// plans whose cardinality footprint the swap left alone should still be here.
    pub fn has_cached_plan(&self, fingerprint: u64, family: FamilyKind) -> bool {
        self.inner.memo.plans.read().expect("memo lock").contains_key(&(fingerprint, family))
    }

    /// Number of memoised physical plans on this snapshot.
    pub fn cached_plan_count(&self) -> usize {
        self.inner.memo.plans.read().expect("memo lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;

    fn snapshot_of(ctx: &RepairContext) -> EngineSnapshot {
        EngineBuilder::new().relation(ctx.instance().clone(), ctx.fds().clone()).build().unwrap()
    }

    #[test]
    fn builder_builds_and_counts_repairs_through_the_memo() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        assert_eq!(snapshot.relation_count(), 1);
        assert!(!snapshot.is_consistent());
        assert_eq!(snapshot.count_repairs(), 3);
        // Counting again is served from the memo.
        let before = snapshot.memo_stats();
        assert_eq!(snapshot.count_repairs(), 3);
        let after = snapshot.memo_stats();
        assert_eq!(after.component_misses, before.component_misses);
        assert!(after.component_hits > before.component_hits);
    }

    #[test]
    fn component_product_reproduces_the_repairs() {
        let ctx = example4(5);
        let snapshot = snapshot_of(&ctx);
        assert_eq!(snapshot.count_repairs(), 32);
        let enumerated = snapshot.repairs(usize::MAX);
        assert_eq!(enumerated.len(), 32);
        for repair in &enumerated {
            assert!(ctx.is_repair(repair));
        }
    }

    #[test]
    fn per_family_component_pipeline_matches_the_legacy_family_objects() {
        for (ctx, priority) in [example7(), example8(), example9(), example9_intended()] {
            let snapshot = snapshot_of(&ctx).with_priority(priority.clone()).unwrap();
            for kind in FamilyKind::ALL {
                let legacy = kind.family().preferred_repairs(&ctx, &priority, usize::MAX);
                let piped = snapshot.preferred_repairs(kind, usize::MAX);
                assert_eq!(piped.len(), legacy.len(), "{} count", kind.label());
                for repair in &legacy {
                    assert!(piped.contains(repair), "{} misses {repair:?}", kind.label());
                }
                assert_eq!(
                    snapshot.preferred_repair_count(kind),
                    legacy.len() as u128,
                    "{} preferred_repair_count",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn with_priority_shares_structure_and_keeps_unaffected_memo_entries() {
        let ctx = example9();
        let (ctx, priority) = (ctx.0, ctx.1);
        let base = snapshot_of(&ctx);
        // Warm the memo for Rep and Local.
        base.preferred_repairs(FamilyKind::Rep, usize::MAX);
        base.preferred_repairs(FamilyKind::Local, usize::MAX);
        let warmed = base.memo_stats();
        let derived = base.with_priority(priority).unwrap();
        // The graph and instance are shared, not rebuilt.
        assert!(Arc::ptr_eq(base.graph(), derived.graph()));
        // Rep entries survive (priority-independent): re-enumeration is all hits.
        derived.preferred_repairs(FamilyKind::Rep, usize::MAX);
        let stats = derived.memo_stats();
        assert_eq!(stats.component_misses, 0, "Rep memo entries must survive derivation");
        assert!(stats.component_hits > 0);
        assert!(warmed.component_misses > 0);
    }

    #[test]
    fn with_priority_invalidates_only_affected_components() {
        // Example 4 with n = 3: three independent two-tuple components.
        let ctx = example4(3);
        let base = snapshot_of(&ctx);
        base.preferred_repairs(FamilyKind::Global, usize::MAX);
        // Orient only the first component's conflict edge.
        let priority = ctx.priority_from_pairs(&[(TupleId(0), TupleId(1))]).unwrap();
        let derived = base.with_priority(priority).unwrap();
        derived.preferred_repairs(FamilyKind::Global, usize::MAX);
        let stats = derived.memo_stats();
        // Components 2 and 3 were untouched: only the first was recomputed.
        assert_eq!(stats.component_misses, 1);
        assert_eq!(derived.preferred_repair_count(FamilyKind::Global), 4);
    }

    #[test]
    fn multi_relation_snapshots_address_relations_by_name() {
        let first = example1();
        let second = example4(2);
        let snapshot = EngineBuilder::new()
            .relation(first.instance().clone(), first.fds().clone())
            .relation(second.instance().clone(), second.fds().clone())
            .build()
            .unwrap();
        assert_eq!(snapshot.relation_count(), 2);
        assert_eq!(snapshot.relation_names(), vec!["Mgr".to_string(), "R".to_string()]);
        assert!(snapshot.context_of("Mgr").is_some());
        assert!(snapshot.priority_of("R").is_some());
        assert!(snapshot.context_of("Nope").is_none());
        // 3 repairs of Mgr × 4 repairs of R.
        assert_eq!(snapshot.count_repairs(), 12);
    }

    #[test]
    fn builder_errors_are_reported() {
        let ctx = example1();
        let duplicate = EngineBuilder::new()
            .relation(ctx.instance().clone(), ctx.fds().clone())
            .relation(ctx.instance().clone(), ctx.fds().clone())
            .build();
        assert!(matches!(duplicate, Err(BuildError::DuplicateRelation { .. })));
        let orphan = EngineBuilder::new().priority_from_scores(&[1]).build();
        assert!(matches!(orphan, Err(BuildError::PriorityWithoutRelation)));
        let wrong_len = EngineBuilder::new()
            .relation(ctx.instance().clone(), ctx.fds().clone())
            .priority_from_scores(&[1, 2])
            .build();
        assert!(matches!(wrong_len, Err(BuildError::AnnotationLength { .. })));
        let bad_pair = EngineBuilder::new()
            .relation(ctx.instance().clone(), ctx.fds().clone())
            .priority_pairs(&[(TupleId(0), TupleId(3))])
            .build();
        assert!(bad_pair.err().and_then(|e| e.as_priority_error().cloned()).is_some());
    }

    #[test]
    fn answer_memo_evicts_oldest_entries_and_counts_them() {
        use crate::{FamilyKind, PreparedQuery, Semantics};
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        snapshot.set_answer_cache_capacity(2);
        assert_eq!(snapshot.answer_cache_capacity(), 2);
        let queries: Vec<PreparedQuery> = [
            "EXISTS d,s,r . Mgr(x,d,s,r)",
            "EXISTS n,s,r . Mgr(n,x,s,r)",
            "EXISTS n,d,r . Mgr(n,d,x,r)",
        ]
        .iter()
        .map(|q| PreparedQuery::parse(q).unwrap())
        .collect();
        for query in &queries {
            query.execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        }
        // Capacity 2, three inserts: the oldest (first) entry was evicted.
        let stats = snapshot.memo_stats();
        assert_eq!(stats.answer_evictions, 1);
        let hits_before = stats.answer_hits;
        // The two youngest entries are still served from the memo...
        queries[1].execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        queries[2].execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        assert_eq!(snapshot.memo_stats().answer_hits, hits_before + 2);
        // ...while the evicted one is recomputed (a miss, and it evicts the next oldest,
        // which is queries[1] — queries[2] survives).
        queries[0].execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        let stats = snapshot.memo_stats();
        assert_eq!(stats.answer_hits, hits_before + 2);
        assert_eq!(stats.answer_evictions, 2);
        queries[2].execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        assert_eq!(snapshot.memo_stats().answer_hits, hits_before + 3);
    }

    #[test]
    fn shrinking_the_answer_cache_evicts_immediately() {
        use crate::{FamilyKind, PreparedQuery, Semantics};
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        for query in ["EXISTS d,s,r . Mgr(x,d,s,r)", "EXISTS n,s,r . Mgr(n,x,s,r)"] {
            PreparedQuery::parse(query)
                .unwrap()
                .execute(&snapshot, FamilyKind::Rep, Semantics::Possible)
                .unwrap();
        }
        snapshot.set_answer_cache_capacity(1);
        assert_eq!(snapshot.memo_stats().answer_evictions, 1);
    }

    #[test]
    fn warm_components_fills_the_memo_once_for_any_parallelism() {
        let ctx = example4(5);
        for parallelism in [Parallelism::sequential(), Parallelism::threads(4)] {
            let snapshot = snapshot_of(&ctx);
            let warmed = snapshot.warm_components(FamilyKind::Local, parallelism);
            assert_eq!(warmed, 5);
            let stats = snapshot.memo_stats();
            assert_eq!(stats.component_misses, 5);
            // Everything is memoised now: re-warming computes nothing...
            assert_eq!(snapshot.warm_components(FamilyKind::Local, parallelism), 0);
            // ...and enumeration is all hits.
            snapshot.preferred_repairs(FamilyKind::Local, usize::MAX);
            assert_eq!(snapshot.memo_stats().component_misses, stats.component_misses);
        }
    }

    #[test]
    fn warm_after_derivation_recomputes_only_invalidated_components() {
        let ctx = example4(3);
        let base = snapshot_of(&ctx);
        base.warm_components(FamilyKind::Global, Parallelism::threads(2));
        let priority = ctx.priority_from_pairs(&[(TupleId(0), TupleId(1))]).unwrap();
        let derived = base.with_priority(priority).unwrap();
        // Only the component touched by the new priority edge is missing.
        assert_eq!(derived.warm_components(FamilyKind::Global, Parallelism::threads(2)), 1);
        assert_eq!(derived.memo_stats().component_misses, 1);
    }

    #[test]
    fn cleared_memo_shares_structure_but_recomputes() {
        let ctx = example4(4);
        let snapshot = snapshot_of(&ctx);
        snapshot.set_answer_cache_capacity(7);
        snapshot.preferred_repairs(FamilyKind::Rep, usize::MAX);
        assert!(snapshot.memo_stats().component_misses > 0);
        let cold = snapshot.with_cleared_memo();
        assert!(Arc::ptr_eq(snapshot.graph(), cold.graph()));
        assert_eq!(cold.memo_stats(), MemoStats::default());
        assert_eq!(cold.answer_cache_capacity(), 7);
        assert_eq!(cold.count_repairs(), 16);
        assert!(cold.memo_stats().component_misses > 0);
    }

    #[test]
    fn snapshot_cleaning_and_checking_work() {
        let (ctx, priority) = example9();
        let snapshot = snapshot_of(&ctx).with_priority(priority).unwrap();
        let cleaned = snapshot.clean().unwrap();
        assert!(snapshot.is_preferred_repair(FamilyKind::Common, &cleaned));
        assert_eq!(snapshot.preferred_repairs(FamilyKind::Common, 10), vec![cleaned]);
    }

    #[test]
    fn parallel_builds_are_bit_identical_to_sequential_builds() {
        let first = example1();
        let second = example4(6);
        let build = |parallelism: Parallelism| {
            EngineBuilder::new()
                .relation(first.instance().clone(), first.fds().clone())
                .relation(second.instance().clone(), second.fds().clone())
                .parallelism(parallelism)
                .build()
                .unwrap()
        };
        let sequential = build(Parallelism::sequential());
        for workers in [2, 4, 8] {
            let parallel = build(Parallelism::threads(workers));
            assert_eq!(parallel.relation_names(), sequential.relation_names());
            assert_eq!(parallel.component_count(), sequential.component_count());
            for name in sequential.relation_names() {
                let s = sequential.context_of(&name).unwrap();
                let p = parallel.context_of(&name).unwrap();
                assert_eq!(s.graph().edges(), p.graph().edges(), "{name} edges");
                assert_eq!(parallel.shards_of(&name), sequential.shards_of(&name), "{name}");
            }
            assert_eq!(parallel.count_repairs(), sequential.count_repairs());
            // Enumeration order (not just the set of repairs) must match.
            let enumerate = |snapshot: &EngineSnapshot| {
                let mut seen = Vec::new();
                snapshot.for_each_preferred_selection(FamilyKind::Rep, &[0, 1], &mut |sel| {
                    seen.push(sel.to_vec());
                    ControlFlow::Continue(())
                });
                seen
            };
            assert_eq!(enumerate(&parallel), enumerate(&sequential));
        }
    }

    #[test]
    fn parallel_builds_report_the_same_errors_as_sequential_builds() {
        let ctx = example1();
        for workers in [1usize, 4] {
            let parallelism = Parallelism::threads(workers);
            let duplicate = EngineBuilder::new()
                .relation(ctx.instance().clone(), ctx.fds().clone())
                .relation(ctx.instance().clone(), ctx.fds().clone())
                .build_with(parallelism);
            assert!(matches!(duplicate, Err(BuildError::DuplicateRelation { .. })));
            let wrong_len = EngineBuilder::new()
                .relation(ctx.instance().clone(), ctx.fds().clone())
                .priority_from_scores(&[1, 2])
                .build_with(parallelism);
            assert!(matches!(wrong_len, Err(BuildError::AnnotationLength { .. })));
        }
    }

    #[test]
    fn shard_plans_are_contiguous_tuple_balanced_covers() {
        // 40 two-tuple components: the plan caps at MAX_SHARDS_PER_RELATION shards
        // covering every component exactly once, in order.
        let ctx = example4(40);
        let snapshot = snapshot_of(&ctx);
        let shards = snapshot.shards();
        assert_eq!(shards.len(), MAX_SHARDS_PER_RELATION);
        assert_eq!(snapshot.shard_count(), shards.len());
        let mut next = 0usize;
        for shard in shards {
            assert_eq!(shard.relation(), 0);
            assert_eq!(shard.component_range().start, next);
            assert!(shard.component_count() >= 1);
            assert_eq!(shard.tuple_count(), 2 * shard.component_count());
            next = shard.component_range().end;
        }
        assert_eq!(next, snapshot.component_count());
        // Fewer components than the cap: one shard per component.
        let small = snapshot_of(&example4(3));
        assert_eq!(small.shards().len(), 3);
        // A conflict-free relation has no shards.
        let consistent = snapshot_of(&example4(0));
        assert!(consistent.shards().is_empty());
    }

    #[test]
    fn revalidated_derivation_recomputes_exactly_the_invalidated_entries() {
        let ctx = example4(5);
        let base = snapshot_of(&ctx);
        base.warm_components(FamilyKind::Global, Parallelism::sequential());
        base.warm_components(FamilyKind::Local, Parallelism::sequential());
        let priority = ctx.priority_from_pairs(&[(TupleId(0), TupleId(1))]).unwrap();
        for workers in [1usize, 4] {
            let derived = base
                .with_priority_revalidated(priority.clone(), Parallelism::threads(workers))
                .unwrap();
            // Global and Local of the touched component were re-enumerated eagerly...
            let stats = derived.memo_stats();
            assert_eq!(stats.component_misses, 2, "{workers} workers");
            // ...so everything the parent had memoised is warm again: no further misses.
            derived.preferred_repairs(FamilyKind::Global, usize::MAX);
            derived.preferred_repairs(FamilyKind::Local, usize::MAX);
            assert_eq!(derived.memo_stats().component_misses, 2, "{workers} workers");
            // And the revalidated snapshot answers exactly like a lazily derived one.
            let lazy = base.with_priority(priority.clone()).unwrap();
            assert_eq!(
                derived.preferred_repairs(FamilyKind::Global, usize::MAX),
                lazy.preferred_repairs(FamilyKind::Global, usize::MAX)
            );
        }
    }

    #[test]
    fn derived_snapshots_pin_the_capacity_at_derivation_time() {
        let ctx = example4(3);
        let snapshot = snapshot_of(&ctx);
        snapshot.set_answer_cache_capacity(7);
        let cleared = snapshot.with_cleared_memo();
        let derived = snapshot
            .with_priority(ctx.priority_from_pairs(&[(TupleId(0), TupleId(1))]).unwrap())
            .unwrap();
        assert_eq!(cleared.answer_cache_capacity(), 7);
        assert_eq!(derived.answer_cache_capacity(), 7);
        // Capacity changes after derivation stay on the snapshot they were made on.
        snapshot.set_answer_cache_capacity(3);
        assert_eq!(cleared.answer_cache_capacity(), 7);
        assert_eq!(derived.answer_cache_capacity(), 7);
        derived.set_answer_cache_capacity(11);
        assert_eq!(snapshot.answer_cache_capacity(), 3);
    }

    #[test]
    fn capacity_changes_racing_derivations_never_tear() {
        use crate::{PreparedQuery, Semantics};
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        // Populate a couple of answers so derivations carry entries.
        for text in ["EXISTS d,s,r . Mgr(x,d,s,r)", "EXISTS n,s,r . Mgr(n,x,s,r)"] {
            PreparedQuery::parse(text)
                .unwrap()
                .execute(&snapshot, FamilyKind::Rep, Semantics::Possible)
                .unwrap();
        }
        let priority = ctx.priority_from_pairs(&[(TupleId(0), TupleId(1))]).unwrap();
        std::thread::scope(|scope| {
            let toggler = scope.spawn(|| {
                for round in 0..200 {
                    snapshot.set_answer_cache_capacity(if round % 2 == 0 { 1 } else { 4096 });
                }
            });
            let derivations = scope.spawn(|| {
                for _ in 0..100 {
                    for derived in [
                        snapshot.with_cleared_memo(),
                        snapshot.with_priority(priority.clone()).unwrap(),
                    ] {
                        let capacity = derived.answer_cache_capacity();
                        // The bound is always one the parent actually had, and the
                        // carried-over entries never exceed it.
                        assert!(capacity == 1 || capacity == 4096, "torn capacity {capacity}");
                    }
                }
            });
            toggler.join().unwrap();
            derivations.join().unwrap();
        });
    }
}
