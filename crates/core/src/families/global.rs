//! The family `G-Rep` of globally optimal repairs.
//!
//! A repair is globally optimal if it is maximal w.r.t. the `≪` lifting of the priority
//! (Prop. 5). `G-Rep` satisfies all four properties P1–P4 (Prop. 4), is contained in
//! `S-Rep`, and coincides with `S-Rep` when there is a single functional dependency.
//! G-repair checking is co-NP-complete and G-consistent query answering is Π₂ᵖ-complete
//! (Theorem 5), so membership is decided by the backtracking search of
//! [`pdqi_solve::search`].

use pdqi_priority::Priority;
use pdqi_relation::TupleSet;

use crate::families::RepairFamily;
use crate::optimality::is_globally_optimal;
use crate::repair::RepairContext;

/// The family of globally optimal repairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalOptimal;

impl RepairFamily for GlobalOptimal {
    fn name(&self) -> &'static str {
        "G-Rep"
    }

    fn is_preferred(&self, ctx: &RepairContext, priority: &Priority, candidate: &TupleSet) -> bool {
        ctx.is_repair(candidate) && is_globally_optimal(ctx.graph(), priority, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use pdqi_relation::TupleId;

    #[test]
    fn example_9_selects_only_the_alternating_repair() {
        let (ctx, priority) = example9();
        let preferred = GlobalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        assert_eq!(preferred, vec![TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(4)])]);
    }

    #[test]
    fn categoricity_p4_holds_on_the_paper_total_priority_examples() {
        for (ctx, priority) in [example8(), example9()] {
            assert!(priority.is_total());
            assert_eq!(GlobalOptimal.count_preferred(&ctx, &priority), 1);
        }
    }

    #[test]
    fn coincides_with_s_rep_for_one_functional_dependency_prop_4() {
        let (ctx, priority) = example8();
        let s = crate::families::SemiGlobalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        let g = GlobalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        assert_eq!(s, g);
    }

    #[test]
    fn with_the_empty_priority_g_rep_equals_rep() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        assert_eq!(GlobalOptimal.count_preferred(&ctx, &empty), ctx.count_repairs());
    }
}
