//! The family `C-Rep` of common repairs.
//!
//! Theorem 1 shows that there always is a repair common to *every* family of globally
//! optimal repairs satisfying P1 and P2; `C-Rep` collects exactly those common repairs.
//! Proposition 7 gives the procedural characterisation used here: the common repairs are
//! precisely the possible outputs of Algorithm 1 over all Step-3 choice sequences, which
//! makes C-repair checking polynomial (Corollary 2). `C-Rep ⊆ G-Rep` (Prop. 6) and the
//! two coincide when the priority cannot be extended to a cyclic orientation of the
//! conflict graph (Theorem 2).

use std::ops::ControlFlow;

use pdqi_priority::Priority;
use pdqi_relation::TupleSet;

use crate::clean::{common_repairs, is_common_repair};
use crate::families::RepairFamily;
use crate::repair::RepairContext;

/// The family of common repairs (possible outputs of Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommonOptimal;

impl RepairFamily for CommonOptimal {
    fn name(&self) -> &'static str {
        "C-Rep"
    }

    fn is_preferred(&self, ctx: &RepairContext, priority: &Priority, candidate: &TupleSet) -> bool {
        is_common_repair(ctx.graph(), priority, candidate)
    }

    fn for_each_preferred(
        &self,
        ctx: &RepairContext,
        priority: &Priority,
        callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
    ) -> bool {
        // Enumerate through the Algorithm-1 state space instead of filtering all repairs:
        // on instances where C-Rep is much smaller than Rep this is substantially cheaper.
        for repair in common_repairs(ctx.graph(), priority, usize::MAX) {
            if callback(&repair).is_break() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use pdqi_relation::TupleId;

    #[test]
    fn example_9_common_repair_is_the_algorithm_1_output() {
        let (ctx, priority) = example9();
        let preferred = CommonOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        assert_eq!(preferred, vec![TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(4)])]);
    }

    #[test]
    fn contained_in_g_rep_prop_6() {
        for (ctx, priority) in [example7(), example8(), example9()] {
            let g = crate::families::GlobalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
            for common in CommonOptimal.preferred_repairs(&ctx, &priority, usize::MAX) {
                assert!(g.contains(&common));
            }
        }
    }

    #[test]
    fn satisfies_p4_for_total_priorities() {
        for (ctx, priority) in [example8(), example9()] {
            assert!(priority.is_total());
            assert_eq!(CommonOptimal.count_preferred(&ctx, &priority), 1);
        }
    }

    #[test]
    fn with_the_empty_priority_c_rep_equals_rep() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        assert_eq!(CommonOptimal.count_preferred(&ctx, &empty), ctx.count_repairs());
    }

    #[test]
    fn membership_and_enumeration_agree() {
        let (ctx, priority) = example7();
        let enumerated = CommonOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        for repair in ctx.repairs(100) {
            assert_eq!(
                enumerated.contains(&repair),
                CommonOptimal.is_preferred(&ctx, &priority, &repair)
            );
        }
    }
}
