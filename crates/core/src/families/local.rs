//! The family `L-Rep` of locally optimal repairs.
//!
//! A repair is locally optimal if no single tuple can be swapped for a dominating tuple
//! while staying consistent (Section 3.1). `L-Rep` satisfies P1–P3 (Prop. 2) but not P4
//! (Example 8), and L-repair checking is in PTIME while L-consistent query answering is
//! co-NP-complete (Theorem 4).

use pdqi_priority::Priority;
use pdqi_relation::TupleSet;

use crate::families::RepairFamily;
use crate::optimality::is_locally_optimal;
use crate::repair::RepairContext;

/// The family of locally optimal repairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalOptimal;

impl RepairFamily for LocalOptimal {
    fn name(&self) -> &'static str {
        "L-Rep"
    }

    fn is_preferred(&self, ctx: &RepairContext, priority: &Priority, candidate: &TupleSet) -> bool {
        ctx.is_repair(candidate) && is_locally_optimal(ctx.graph(), priority, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use pdqi_relation::TupleId;

    #[test]
    fn example_7_selects_only_the_dominating_singleton() {
        let (ctx, priority) = example7();
        let preferred = LocalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        assert_eq!(preferred, vec![TupleSet::from_ids([TupleId(0)])]);
    }

    #[test]
    fn example_8_shows_non_categoricity_of_l_rep() {
        // Both repairs are locally optimal even though the priority is total: P4 fails.
        let (ctx, priority) = example8();
        assert!(priority.is_total());
        assert_eq!(LocalOptimal.count_preferred(&ctx, &priority), 2);
    }

    #[test]
    fn with_the_empty_priority_l_rep_equals_rep() {
        // Property P3 (non-discrimination).
        let ctx = example1();
        let empty = ctx.empty_priority();
        assert_eq!(LocalOptimal.count_preferred(&ctx, &empty), ctx.count_repairs());
    }
}
