//! Families of preferred repairs.
//!
//! The paper studies families `X-Rep` that select a subset of the repairs based on the
//! priority. This module provides the common [`RepairFamily`] interface — X-repair
//! checking, enumeration and counting — and the five concrete families:
//!
//! | family | definition | repair checking | preferred CQA |
//! |--------|------------|-----------------|---------------|
//! | [`AllRepairs`] (Rep)          | all repairs (no use of the priority)     | PTIME | PTIME for {∀,∃}-free, co-NP-complete for conjunctive |
//! | [`LocalOptimal`] (L-Rep)      | locally optimal repairs                   | PTIME | co-NP-complete |
//! | [`SemiGlobalOptimal`] (S-Rep) | semi-globally optimal repairs             | PTIME | co-NP-complete |
//! | [`GlobalOptimal`] (G-Rep)     | globally optimal repairs (`≪`-maximal)    | co-NP-complete | Π₂ᵖ-complete |
//! | [`CommonOptimal`] (C-Rep)     | possible outputs of Algorithm 1 (Prop. 7) | PTIME | co-NP-complete |
//!
//! The inclusions `C-Rep ⊆ G-Rep ⊆ S-Rep ⊆ L-Rep ⊆ Rep` and the coincidence results
//! (Prop. 3, Prop. 4, Thm. 2) are exercised by the crate's tests and by the
//! `family_inclusions` integration suite.

mod all;
mod common;
mod global;
mod local;
mod semiglobal;

pub use all::AllRepairs;
pub use common::CommonOptimal;
pub use global::GlobalOptimal;
pub use local::LocalOptimal;
pub use semiglobal::SemiGlobalOptimal;

use std::ops::ControlFlow;

use pdqi_priority::Priority;
use pdqi_relation::TupleSet;

use crate::repair::RepairContext;

/// A family of preferred repairs: given the repair context and a priority it decides
/// membership (X-repair checking) and enumerates its members.
pub trait RepairFamily {
    /// Short name used in reports (`"Rep"`, `"L-Rep"`, ...).
    fn name(&self) -> &'static str;

    /// X-repair checking: whether `candidate` is a preferred repair of `ctx` under
    /// `priority`. `candidate` need not be a repair — non-repairs are never preferred.
    fn is_preferred(&self, ctx: &RepairContext, priority: &Priority, candidate: &TupleSet) -> bool;

    /// Visits every preferred repair exactly once; the callback may stop early. Returns
    /// `true` if the enumeration ran to completion.
    ///
    /// The default implementation filters the full repair enumeration through
    /// [`RepairFamily::is_preferred`]; families with a cheaper dedicated enumerator
    /// override it.
    fn for_each_preferred(
        &self,
        ctx: &RepairContext,
        priority: &Priority,
        callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
    ) -> bool {
        ctx.for_each_repair(|repair| {
            if self.is_preferred(ctx, priority, repair) {
                callback(repair)
            } else {
                ControlFlow::Continue(())
            }
        })
    }

    /// Collects up to `limit` preferred repairs.
    fn preferred_repairs(
        &self,
        ctx: &RepairContext,
        priority: &Priority,
        limit: usize,
    ) -> Vec<TupleSet> {
        let mut out = Vec::new();
        self.for_each_preferred(ctx, priority, &mut |repair| {
            out.push(repair.clone());
            if out.len() >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        out
    }

    /// The number of preferred repairs (exhaustive enumeration; use with care on large
    /// repair spaces).
    fn count_preferred(&self, ctx: &RepairContext, priority: &Priority) -> u128 {
        let mut count = 0u128;
        self.for_each_preferred(ctx, priority, &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        count
    }
}

/// The five families by name, for configuration-driven call sites (the SQL front end and
/// the benchmark harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyKind {
    /// All repairs (the original framework of consistent query answers).
    Rep,
    /// Locally optimal repairs.
    Local,
    /// Semi-globally optimal repairs.
    SemiGlobal,
    /// Globally optimal repairs.
    Global,
    /// Common repairs (possible outputs of Algorithm 1).
    Common,
}

impl FamilyKind {
    /// Every family, in increasing order of selectivity.
    pub const ALL: [FamilyKind; 5] = [
        FamilyKind::Rep,
        FamilyKind::Local,
        FamilyKind::SemiGlobal,
        FamilyKind::Global,
        FamilyKind::Common,
    ];

    /// The family object implementing this kind.
    pub fn family(self) -> Box<dyn RepairFamily> {
        match self {
            FamilyKind::Rep => Box::new(AllRepairs),
            FamilyKind::Local => Box::new(LocalOptimal),
            FamilyKind::SemiGlobal => Box::new(SemiGlobalOptimal),
            FamilyKind::Global => Box::new(GlobalOptimal),
            FamilyKind::Common => Box::new(CommonOptimal),
        }
    }

    /// The paper's name for the family.
    pub fn label(self) -> &'static str {
        match self {
            FamilyKind::Rep => "Rep",
            FamilyKind::Local => "L-Rep",
            FamilyKind::SemiGlobal => "S-Rep",
            FamilyKind::Global => "G-Rep",
            FamilyKind::Common => "C-Rep",
        }
    }

    /// Parses a family name as used by the SQL front end (`REPAIRS ALL`, `REPAIRS LOCAL`,
    /// ...); accepts both the paper's labels and keyword-style names, case-insensitively.
    pub fn parse(text: &str) -> Option<FamilyKind> {
        match text.to_ascii_uppercase().as_str() {
            "REP" | "ALL" => Some(FamilyKind::Rep),
            "L-REP" | "L" | "LOCAL" => Some(FamilyKind::Local),
            "S-REP" | "S" | "SEMIGLOBAL" | "SEMI-GLOBAL" => Some(FamilyKind::SemiGlobal),
            "G-REP" | "G" | "GLOBAL" => Some(FamilyKind::Global),
            "C-REP" | "C" | "COMMON" => Some(FamilyKind::Common),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use pdqi_relation::TupleId;

    #[test]
    fn family_kind_round_trips_through_parse_and_label() {
        for kind in FamilyKind::ALL {
            assert_eq!(FamilyKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FamilyKind::parse("global"), Some(FamilyKind::Global));
        assert_eq!(FamilyKind::parse("nonsense"), None);
    }

    #[test]
    fn inclusion_chain_on_the_paper_examples() {
        // C-Rep ⊆ G-Rep ⊆ S-Rep ⊆ L-Rep ⊆ Rep on Examples 7, 8 and 9.
        for (ctx, priority) in [example7(), example8(), example9()] {
            let preferred: Vec<Vec<TupleSet>> = FamilyKind::ALL
                .iter()
                .map(|kind| kind.family().preferred_repairs(&ctx, &priority, usize::MAX))
                .collect();
            let [rep, local, semi, global, common] = &preferred[..] else { unreachable!() };
            for set in local {
                assert!(rep.contains(set));
            }
            for set in semi {
                assert!(local.contains(set));
            }
            for set in global {
                assert!(semi.contains(set));
            }
            for set in common {
                assert!(global.contains(set));
            }
        }
    }

    #[test]
    fn counting_and_collection_are_consistent() {
        let (ctx, priority) = example9();
        for kind in FamilyKind::ALL {
            let family = kind.family();
            let collected = family.preferred_repairs(&ctx, &priority, usize::MAX);
            assert_eq!(collected.len() as u128, family.count_preferred(&ctx, &priority));
        }
    }

    #[test]
    fn limits_are_respected() {
        let ctx = example4(5);
        let empty = ctx.empty_priority();
        let family = FamilyKind::Rep.family();
        assert_eq!(family.preferred_repairs(&ctx, &empty, 7).len(), 7);
    }

    #[test]
    fn non_repairs_are_never_preferred() {
        let (ctx, priority) = example8();
        let not_a_repair = TupleSet::from_ids([TupleId(0)]);
        for kind in FamilyKind::ALL {
            assert!(!kind.family().is_preferred(&ctx, &priority, &not_a_repair));
        }
    }
}
