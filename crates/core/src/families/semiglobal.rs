//! The family `S-Rep` of semi-globally optimal repairs.
//!
//! A repair is semi-globally optimal if no *set* of its tuples can be swapped for a
//! single tuple dominating all of them while staying consistent (Section 3.2). `S-Rep`
//! satisfies P1–P3, is contained in `L-Rep`, and coincides with `L-Rep` when the
//! constraints are a single key dependency (Prop. 3); it still fails P4 (Example 9).
//! S-repair checking is in PTIME and S-consistent query answering is co-NP-complete
//! (Corollary 1).

use pdqi_priority::Priority;
use pdqi_relation::TupleSet;

use crate::families::RepairFamily;
use crate::optimality::is_semi_globally_optimal;
use crate::repair::RepairContext;

/// The family of semi-globally optimal repairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SemiGlobalOptimal;

impl RepairFamily for SemiGlobalOptimal {
    fn name(&self) -> &'static str {
        "S-Rep"
    }

    fn is_preferred(&self, ctx: &RepairContext, priority: &Priority, candidate: &TupleSet) -> bool {
        ctx.is_repair(candidate) && is_semi_globally_optimal(ctx.graph(), priority, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use pdqi_relation::TupleId;

    #[test]
    fn example_8_selects_only_the_dominating_singleton() {
        // S-Rep repairs the weakness of L-Rep on duplicate-carrying violations.
        let (ctx, priority) = example8();
        let preferred = SemiGlobalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        assert_eq!(preferred, vec![TupleSet::from_ids([TupleId(2)])]);
    }

    #[test]
    fn example_9_intended_scenario_keeps_two_semi_globally_optimal_repairs() {
        // The reconstructed Example 9 scenario: mutual conflicts from several FDs with the
        // priority covering only some of them. S-Rep keeps both repairs; G-Rep (see the
        // global family's tests) keeps one, which is what distinguishes the two notions.
        let (ctx, priority) = example9_intended();
        assert!(!priority.is_total());
        assert_eq!(SemiGlobalOptimal.count_preferred(&ctx, &priority), 2);
        // With the paper's literal tuple data the example degenerates (see the erratum
        // note on the fixture): a single repair is semi-globally optimal.
        let (ctx, priority) = example9();
        assert_eq!(SemiGlobalOptimal.count_preferred(&ctx, &priority), 1);
    }

    #[test]
    fn coincides_with_l_rep_for_one_key_dependency_prop_3() {
        // Example 7 has a single key dependency A → B (A is a key of R(A,B)).
        let (ctx, priority) = example7();
        let l = crate::families::LocalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        let s = SemiGlobalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        assert_eq!(l, s);
    }

    #[test]
    fn with_the_empty_priority_s_rep_equals_rep() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        assert_eq!(SemiGlobalOptimal.count_preferred(&ctx, &empty), ctx.count_repairs());
    }
}
