//! The plain repair family `Rep`: every repair is preferred.
//!
//! This is the original framework of consistent query answers of Arenas, Bertossi and
//! Chomicki \[1\]; the paper recovers it as the degenerate case in which the priority is
//! ignored altogether (it is also `X-Rep` for the empty priority under any of the optimal
//! families, by property P3).

use pdqi_priority::Priority;
use pdqi_relation::TupleSet;

use crate::families::RepairFamily;
use crate::repair::RepairContext;

/// The family of *all* repairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllRepairs;

impl RepairFamily for AllRepairs {
    fn name(&self) -> &'static str {
        "Rep"
    }

    fn is_preferred(
        &self,
        ctx: &RepairContext,
        _priority: &Priority,
        candidate: &TupleSet,
    ) -> bool {
        ctx.is_repair(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;

    #[test]
    fn every_repair_is_preferred_regardless_of_the_priority() {
        let (ctx, priority) = example9();
        let family = AllRepairs;
        assert_eq!(family.name(), "Rep");
        assert_eq!(family.count_preferred(&ctx, &priority), ctx.count_repairs());
        for repair in ctx.repairs(100) {
            assert!(family.is_preferred(&ctx, &priority, &repair));
        }
    }

    #[test]
    fn non_repairs_are_rejected() {
        let (ctx, priority) = example9();
        assert!(!AllRepairs.is_preferred(&ctx, &priority, &TupleSet::new()));
        assert!(!AllRepairs.is_preferred(&ctx, &priority, &ctx.instance().all_ids()));
    }
}
