//! Preferred consistent query answers (Definition 3).
//!
//! Given a family of preferred repairs `X-Rep`, `true` is the *X-consistent answer* to a
//! closed query `Q` iff `Q` holds in **every** preferred repair. Symmetrically, `false`
//! is the X-consistent answer iff `Q` fails in every preferred repair; when neither holds
//! the inconsistency leaves the answer undetermined. [`CqaOutcome`] reports both facets.
//!
//! The generic procedure below enumerates the preferred repairs of the family (stopping
//! as soon as both facets are refuted), evaluating the query over each repair through the
//! restricted-view evaluator. This matches the complexities of Fig. 5: the enumeration is
//! worst-case exponential, which is unavoidable for the co-NP-/Π₂ᵖ-complete entries; the
//! polynomial special case (quantifier-free queries under `Rep`) is implemented
//! separately in [`crate::cqa_ground`].

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use pdqi_priority::Priority;
use pdqi_query::{Evaluator, Formula, QueryError};
use pdqi_relation::Value;

use crate::families::RepairFamily;
use crate::repair::RepairContext;

/// The outcome of a preferred-consistent-query-answering computation for a closed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqaOutcome {
    /// `true` is the X-consistent answer: the query holds in every preferred repair.
    pub certainly_true: bool,
    /// `false` is the X-consistent answer: the query fails in every preferred repair.
    pub certainly_false: bool,
    /// Number of preferred repairs examined before the outcome was settled.
    pub examined: usize,
}

impl CqaOutcome {
    /// Whether the inconsistency leaves the answer undetermined (the query holds in some
    /// preferred repairs and fails in others).
    pub fn is_undetermined(&self) -> bool {
        !self.certainly_true && !self.certainly_false
    }
}

/// Computes the X-consistent answer to a closed query under `family`.
///
/// If the family selects no preferred repair at all (impossible for families satisfying
/// P1, but representable through the trait), both facets hold vacuously.
pub fn preferred_consistent_answer(
    ctx: &RepairContext,
    priority: &Priority,
    family: &dyn RepairFamily,
    query: &Formula,
) -> Result<CqaOutcome, QueryError> {
    let free = query.free_vars();
    if !free.is_empty() {
        return Err(QueryError::FreeVariables { variables: free });
    }
    let mut outcome = CqaOutcome { certainly_true: true, certainly_false: true, examined: 0 };
    let mut error: Option<QueryError> = None;
    family.for_each_preferred(ctx, priority, &mut |repair| {
        let evaluator = Evaluator::with_restricted(ctx.instance(), repair);
        match evaluator.eval_closed(query) {
            Ok(true) => outcome.certainly_false = false,
            Ok(false) => outcome.certainly_true = false,
            Err(e) => {
                error = Some(e);
                return ControlFlow::Break(());
            }
        }
        outcome.examined += 1;
        if outcome.is_undetermined() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(outcome),
    }
}

/// Computes the **certain answers** to an open query: the assignments of its free
/// variables that are answers in *every* preferred repair (the open-query generalisation
/// the paper inherits from \[1, 7\]). Returns the answers as sorted rows of values, in
/// the lexicographic order of the free variables.
pub fn certain_answers(
    ctx: &RepairContext,
    priority: &Priority,
    family: &dyn RepairFamily,
    query: &Formula,
) -> Result<Vec<Vec<Value>>, QueryError> {
    answer_sets(ctx, priority, family, query, true)
}

/// Computes the **possible answers** to an open query: the assignments that are answers
/// in *some* preferred repair.
pub fn possible_answers(
    ctx: &RepairContext,
    priority: &Priority,
    family: &dyn RepairFamily,
    query: &Formula,
) -> Result<Vec<Vec<Value>>, QueryError> {
    answer_sets(ctx, priority, family, query, false)
}

fn answer_sets(
    ctx: &RepairContext,
    priority: &Priority,
    family: &dyn RepairFamily,
    query: &Formula,
    certain: bool,
) -> Result<Vec<Vec<Value>>, QueryError> {
    let mut accumulated: Option<BTreeSet<Vec<Value>>> = None;
    let mut error: Option<QueryError> = None;
    family.for_each_preferred(ctx, priority, &mut |repair| {
        let evaluator = Evaluator::with_restricted(ctx.instance(), repair);
        let answers = match evaluator.answers(query) {
            Ok(answers) => answers,
            Err(e) => {
                error = Some(e);
                return ControlFlow::Break(());
            }
        };
        let rows: BTreeSet<Vec<Value>> =
            answers.into_iter().map(|row| row.into_values().collect()).collect();
        accumulated = Some(match accumulated.take() {
            None => rows,
            Some(previous) => {
                if certain {
                    previous.intersection(&rows).cloned().collect()
                } else {
                    previous.union(&rows).cloned().collect()
                }
            }
        });
        // Certain answers can only shrink; once empty the outcome is settled.
        if certain && accumulated.as_ref().is_some_and(BTreeSet::is_empty) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(accumulated.unwrap_or_default().into_iter().collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{AllRepairs, FamilyKind, GlobalOptimal};
    use crate::repair::fixtures::*;
    use pdqi_priority::{priority_from_source_reliability, SourceOrder};
    use pdqi_query::parse_formula;
    use std::sync::Arc;

    const Q1: &str =
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";
    const Q2: &str = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2";

    /// The Example 3 priority: source s3 (tuples 2 and 3) is less reliable than s1
    /// (tuple 0) and s2 (tuple 1).
    fn example3_priority(ctx: &RepairContext) -> Priority {
        let mut order = SourceOrder::new();
        order.prefer("s1", "s3").prefer("s2", "s3");
        let sources = vec!["s1".to_string(), "s2".to_string(), "s3".to_string(), "s3".to_string()];
        priority_from_source_reliability(Arc::clone(ctx.graph()), &sources, &order)
    }

    #[test]
    fn example_2_true_is_not_a_consistent_answer_to_q1() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        let q1 = parse_formula(Q1).unwrap();
        let outcome = preferred_consistent_answer(&ctx, &empty, &AllRepairs, &q1).unwrap();
        assert!(!outcome.certainly_true);
        // Q1 is true in r3, so false is not a consistent answer either.
        assert!(!outcome.certainly_false);
        assert!(outcome.is_undetermined());
    }

    #[test]
    fn example_3_q2_is_undetermined_without_preferences() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        let q2 = parse_formula(Q2).unwrap();
        let outcome = preferred_consistent_answer(&ctx, &empty, &AllRepairs, &q2).unwrap();
        assert!(outcome.is_undetermined());
    }

    #[test]
    fn example_3_q2_becomes_true_under_the_reliability_priority_and_g_rep() {
        let ctx = example1();
        let priority = example3_priority(&ctx);
        let q2 = parse_formula(Q2).unwrap();
        // The preferred repairs are r1 and r2 (r3 is dominated), and Q2 holds in both.
        let preferred = GlobalOptimal.preferred_repairs(&ctx, &priority, usize::MAX);
        assert_eq!(preferred.len(), 2);
        let outcome = preferred_consistent_answer(&ctx, &priority, &GlobalOptimal, &q2).unwrap();
        assert!(outcome.certainly_true);
        assert!(!outcome.certainly_false);
    }

    #[test]
    fn q1_remains_false_under_the_reliability_priority_and_g_rep() {
        // In both preferred repairs Mary earns more than John, so Q1 is certainly false.
        let ctx = example1();
        let priority = example3_priority(&ctx);
        let q1 = parse_formula(Q1).unwrap();
        let outcome = preferred_consistent_answer(&ctx, &priority, &GlobalOptimal, &q1).unwrap();
        assert!(outcome.certainly_false);
    }

    #[test]
    fn every_family_gives_a_determined_answer_on_consistent_data() {
        let ctx = example1();
        let consistent = RepairContext::new(ctx.materialise(&ctx.repairs(1)[0]), ctx.fds().clone());
        let empty = consistent.empty_priority();
        let query = parse_formula("EXISTS n,d,s,r . Mgr(n,d,s,r) AND s >= 10").unwrap();
        for kind in FamilyKind::ALL {
            let outcome =
                preferred_consistent_answer(&consistent, &empty, kind.family().as_ref(), &query)
                    .unwrap();
            assert!(outcome.certainly_true, "family {} disagrees", kind.label());
            assert_eq!(outcome.examined, 1);
        }
    }

    #[test]
    fn open_queries_have_certain_and_possible_answers() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        // Who is a manager (of any department)?
        let query = parse_formula("EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
        let certain = certain_answers(&ctx, &empty, &AllRepairs, &query).unwrap();
        let possible = possible_answers(&ctx, &empty, &AllRepairs, &query).unwrap();
        // Every repair contains both a Mary-tuple and a John-tuple, so both are certain.
        assert_eq!(certain.len(), 2);
        assert_eq!(possible.len(), 2);

        // Which department does Mary manage? No certain answer, two possible ones.
        let dept = parse_formula("EXISTS s,r . Mgr('Mary',x,s,r)").unwrap();
        let certain = certain_answers(&ctx, &empty, &AllRepairs, &dept).unwrap();
        let possible = possible_answers(&ctx, &empty, &AllRepairs, &dept).unwrap();
        assert!(certain.is_empty());
        assert_eq!(possible.len(), 2);

        // Which departments certainly have a manager? Without preferences there is no
        // certain answer (r3 = {Mary-IT, John-PR} misses R&D); under the Example 3
        // reliability priority and G-Rep, r3 is no longer preferred and R&D becomes a
        // certain answer.
        let managed = parse_formula("EXISTS n,s,r . Mgr(n,x,s,r)").unwrap();
        let certain = certain_answers(&ctx, &empty, &AllRepairs, &managed).unwrap();
        assert!(certain.is_empty());
        let priority = example3_priority(&ctx);
        let certain = certain_answers(&ctx, &priority, &GlobalOptimal, &managed).unwrap();
        assert_eq!(certain, vec![vec![Value::name("R&D")]]);
    }

    #[test]
    fn open_query_errors_are_propagated() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        let bad = parse_formula("Nope(x)").unwrap();
        assert!(certain_answers(&ctx, &empty, &AllRepairs, &bad).is_err());
        let open = parse_formula("EXISTS s,r . Mgr(x,'R&D',s,r)").unwrap();
        assert!(matches!(
            preferred_consistent_answer(&ctx, &empty, &AllRepairs, &open),
            Err(QueryError::FreeVariables { .. })
        ));
    }
}
