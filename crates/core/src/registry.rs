//! The snapshot registry: the shared serving core behind sessions and the network
//! front end.
//!
//! The paper's workload shape — and the reason the snapshot pipeline exists — is *many
//! queries against a slowly-revising priority*. All of the repair-space cost is paid at
//! snapshot-build and first-enumeration time; serving consistent answers afterwards is
//! memo-bound and embarrassingly shareable. A [`SnapshotRegistry`] materialises that
//! split as an ownership structure:
//!
//! * the registry holds **one atomically-swappable [`Arc<EngineSnapshot>`] per table**;
//!   readers pin the current snapshot with a cheap `Mutex<Arc<_>>` clone-on-read (the
//!   lock is held only for the `Arc` bump, never across a query), so a request is
//!   answered entirely against one snapshot **generation** — bit-identical to calling
//!   [`crate::PreparedQuery::execute`] on that snapshot directly;
//! * **revisions build off the serving path**: [`SnapshotRegistry::revise`] derives the
//!   replacement (typically through
//!   [`EngineSnapshot::with_priority_revalidated`](crate::EngineSnapshot::with_priority_revalidated)
//!   or a fresh [`crate::EngineBuilder`] build) while readers keep serving the old
//!   snapshot, then swaps the slot. Writers of one table — revisions *and* direct
//!   publishes — serialise on a per-table lock; readers never block on a build;
//! * every slot carries a monotone **generation counter** plus read/swap statistics, so
//!   front ends can observe swap progress and tests can pin generation monotonicity.
//!
//! `sql::Session` (in the `pdqi-sql` crate) is a thin view over a registry — N sessions
//! sharing one registry serve one snapshot set — and the `pdqi-server` crate puts a
//! network front end on the same structure.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::delta::{Mutation, MutationError, MutationReport};
use crate::parallel::Parallelism;
use crate::snapshot::EngineSnapshot;

/// What a swap changed relative to the previously served snapshot — the provenance a
/// [`SwapObserver`] needs to **prove** answers unchanged without re-executing.
///
/// The scope is deliberately conservative: it may over-approximate the change (a
/// [`ChangeScope::Rebuild`] claims nothing), but it must never under-report — every
/// relation or component the swap could have touched is included, so "my query's
/// footprint is disjoint from the scope" is a sound skip rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangeScope {
    /// The snapshot was replaced wholesale (a direct publish or an opaque revision):
    /// anything may have changed.
    Rebuild,
    /// A row-level [`Mutation`] was applied as a delta: only the named relations (and
    /// their conflict components) changed; every other relation's tuples, components
    /// and memo entries were carried over verbatim.
    Mutation {
        /// The relations the mutation named, in lexicographic order.
        relations: Vec<String>,
    },
    /// One relation's priority was revised: tuples and conflict structure are
    /// untouched, and only the listed **global component ids** had their preferred
    /// repairs (and priority-sensitive answers) invalidated. `Rep`-family results
    /// never depend on the priority at all.
    Priority {
        /// The relation whose priority was replaced.
        relation: String,
        /// The global component ids the revision touched (empty when the new priority
        /// agrees with the old one on every component).
        affected: BTreeSet<usize>,
    },
    /// One relation's constraint set changed (`ALTER TABLE … ADD FD` applied as a
    /// delta): tuples are untouched, but conflict edges may have been added inside the
    /// new FD's LHS groups, merging components of the named relation. Unlike
    /// [`ChangeScope::Priority`] there is no `Rep` exemption — new conflict edges
    /// change the repair space of **every** family. An empty `affected` set means the
    /// FD added no edge at all (it was implied by the existing set on this instance)
    /// and nothing changed.
    Schema {
        /// The relation whose FD set was extended.
        relation: String,
        /// The **derived-snapshot** global component ids of the re-partitioned
        /// components (empty exactly when the FD added no edge — also when the new
        /// edges only touched previously conflict-free tuples, which form fresh
        /// components of their own).
        affected: BTreeSet<usize>,
    },
}

/// One generation swap, as seen by a [`SwapObserver`].
///
/// Observers run **under the per-table writer lock**, after the slot swapped: events
/// for one table arrive in strict generation order, and no later swap of that table
/// can begin until every observer returned.
#[derive(Debug)]
pub struct SwapEvent<'a> {
    /// The table whose slot swapped.
    pub table: &'a str,
    /// The generation the snapshot was published under.
    pub generation: u64,
    /// The snapshot that is now being served.
    pub snapshot: &'a Arc<EngineSnapshot>,
    /// What the swap changed relative to the previous snapshot.
    pub scope: &'a ChangeScope,
}

/// A callback invoked after every generation swap — see [`SwapEvent`] for the
/// ordering guarantees. Observers must be cheap or shed work internally: they run on
/// the writer's thread, under the per-table writer lock (readers are unaffected, but
/// other writers of the same table wait).
pub trait SwapObserver: Send + Sync {
    /// Called once per swap, after the new snapshot is visible to readers.
    fn on_swap(&self, event: &SwapEvent<'_>);
}

/// One table's serving slot: the current snapshot plus its counters.
struct TableSlot {
    /// The currently served snapshot **and its generation**, swapped together under one
    /// lock so a reader can never pair a snapshot with the wrong generation. Readers
    /// clone the `Arc` under the lock (an `Arc` bump, never a deep copy) and run
    /// queries outside it; writers swap the `Arc` and bump the generation atomically
    /// with respect to readers.
    current: Mutex<(Arc<EngineSnapshot>, u64)>,
    /// Number of reads served from this slot.
    reads: AtomicU64,
    /// Number of snapshots swapped into this slot (including the first publish).
    swaps: AtomicU64,
    /// Serialises **all writers** of this table: revisions build under this lock (off
    /// the serving path — readers only take `current`'s lock for an `Arc` clone), and
    /// direct publishes take it too, so a publish can never be silently overwritten by
    /// a revision that pinned its base before the publish landed.
    revision: Mutex<()>,
}

impl TableSlot {
    /// Swaps `snapshot` in and returns the new generation. Callers must hold the
    /// `revision` lock (all writers serialise on it).
    fn swap_in(&self, snapshot: Arc<EngineSnapshot>) -> u64 {
        let mut current = self.current.lock().expect("registry slot");
        current.0 = snapshot;
        current.1 += 1;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        current.1
    }
}

/// A snapshot pinned at read time: the [`Arc<EngineSnapshot>`] plus the generation it
/// was published under.
///
/// Everything executed against the lease sees exactly one generation, no matter how many
/// swaps happen concurrently.
#[derive(Clone)]
pub struct SnapshotLease {
    snapshot: Arc<EngineSnapshot>,
    generation: u64,
}

impl SnapshotLease {
    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        &self.snapshot
    }

    /// The generation the pinned snapshot was published under (monotone per table).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Unwraps the lease into the pinned snapshot.
    pub fn into_snapshot(self) -> Arc<EngineSnapshot> {
        self.snapshot
    }
}

impl fmt::Debug for SnapshotLease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotLease").field("generation", &self.generation).finish()
    }
}

/// Per-table registry counters, taken at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Current generation (0 means the table was never published).
    pub generation: u64,
    /// Reads served from the slot since it was created.
    pub reads: u64,
    /// Snapshots swapped into the slot (the first publish counts).
    pub swaps: u64,
}

/// Registry-wide counters: the sums of every table's [`TableStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Number of tables currently registered.
    pub tables: usize,
    /// Total reads across all tables.
    pub reads: u64,
    /// Total swaps across all tables.
    pub swaps: u64,
}

/// Errors raised by [`SnapshotRegistry::revise`].
#[derive(Debug)]
pub enum ReviseError<E> {
    /// The registry has no snapshot published under this table name.
    UnknownTable(String),
    /// The revision closure failed; the slot was left untouched.
    Build(E),
}

impl<E: fmt::Display> fmt::Display for ReviseError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReviseError::UnknownTable(table) => {
                write!(f, "registry serves no table `{table}`")
            }
            ReviseError::Build(e) => write!(f, "revision failed: {e}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for ReviseError<E> {}

/// A shared serving core: one atomically-swappable [`Arc<EngineSnapshot>`] per table,
/// with generation counters and read/swap statistics. See the [module docs](self).
///
/// ```
/// use std::sync::Arc;
/// use pdqi_core::{EngineBuilder, SnapshotRegistry};
/// # use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
/// # use pdqi_constraints::FdSet;
/// # let schema = Arc::new(RelationSchema::from_pairs(
/// #     "R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap());
/// # let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
/// #     vec![Value::int(1), Value::int(1)], vec![Value::int(1), Value::int(2)],
/// # ]).unwrap();
/// # let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
/// let registry = SnapshotRegistry::new();
/// let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
/// assert_eq!(registry.publish("R", snapshot), 1);
/// let lease = registry.read("R").unwrap();
/// assert_eq!(lease.generation(), 1);
/// assert_eq!(lease.snapshot().count_repairs(), 2);
/// ```
#[derive(Default)]
pub struct SnapshotRegistry {
    tables: RwLock<BTreeMap<String, Arc<TableSlot>>>,
    /// Swap observers, notified under the per-table writer lock (see [`SwapObserver`]).
    observers: RwLock<Vec<Arc<dyn SwapObserver>>>,
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SnapshotRegistry::default()
    }

    /// An empty registry behind an [`Arc`], ready to be shared by sessions and servers.
    pub fn shared() -> Arc<Self> {
        Arc::new(SnapshotRegistry::new())
    }

    fn slot(&self, table: &str) -> Option<Arc<TableSlot>> {
        self.tables.read().expect("registry lock").get(table).cloned()
    }

    /// Registers a [`SwapObserver`]: from now on every generation swap — publishes,
    /// revisions, deltas — notifies it under the swapped table's writer lock, so the
    /// observer sees each table's events in strict generation order. Observers cannot
    /// be unregistered; long-lived consumers (like a subscription manager) deregister
    /// their *clients* instead.
    pub fn register_observer(&self, observer: Arc<dyn SwapObserver>) {
        self.observers.write().expect("registry observer lock").push(observer);
    }

    /// Notifies every observer of one swap. Callers hold the swapped table's writer
    /// lock, which is what makes per-table event order equal generation order.
    fn notify(
        &self,
        table: &str,
        generation: u64,
        snapshot: &Arc<EngineSnapshot>,
        scope: &ChangeScope,
    ) {
        let observers = self.observers.read().expect("registry observer lock");
        if observers.is_empty() {
            return;
        }
        let event = SwapEvent { table, generation, snapshot, scope };
        for observer in observers.iter() {
            observer.on_swap(&event);
        }
    }

    /// Publishes `snapshot` as `table`'s current snapshot, swapping out whatever was
    /// served before, and returns the new generation (1 for a first publish).
    ///
    /// Publishes serialise with in-flight [`SnapshotRegistry::revise`] calls on the
    /// same table (a revision holds the writer lock from base-pin to swap, so it can
    /// never overwrite a publish it did not see). Readers holding a [`SnapshotLease`]
    /// on the old snapshot keep it alive and keep serving from it; new reads see the
    /// new snapshot.
    pub fn publish(&self, table: &str, snapshot: EngineSnapshot) -> u64 {
        let snapshot = Arc::new(snapshot);
        loop {
            if let Some(slot) = self.slot(table) {
                // Take the writer lock *after* the map guard dropped — waiting for an
                // in-flight build while holding the map lock would stall every reader
                // of every table.
                let _serialised = slot.revision.lock().expect("registry revision lock");
                if !self.slot_is_current(table, &slot) {
                    // The table was removed (or removed and re-created) while we
                    // waited for the writer lock: swapping into the detached slot
                    // would silently lose this publish. Start over.
                    continue;
                }
                let generation = slot.swap_in(Arc::clone(&snapshot));
                self.notify(table, generation, &snapshot, &ChangeScope::Rebuild);
                return generation;
            }
            let slot = Arc::new(TableSlot {
                current: Mutex::new((Arc::clone(&snapshot), 1)),
                reads: AtomicU64::new(0),
                swaps: AtomicU64::new(1),
                revision: Mutex::new(()),
            });
            // Hold the fresh slot's writer lock across map-insert → notify: a writer
            // that finds the slot the moment it lands in the map blocks until our
            // generation-1 notification ran, so observers see generations in order
            // even across the very first publish.
            let serialised = slot.revision.lock().expect("registry revision lock");
            {
                let mut tables = self.tables.write().expect("registry lock");
                // A racing first publish may have created the slot since the fast
                // path; loop back to the slow-but-safe swap path above.
                if tables.contains_key(table) {
                    continue;
                }
                tables.insert(table.to_string(), Arc::clone(&slot));
            }
            self.notify(table, 1, &snapshot, &ChangeScope::Rebuild);
            drop(serialised);
            return 1;
        }
    }

    /// Whether `slot` is still the slot the map serves for `table` (a concurrent
    /// [`SnapshotRegistry::remove`] may have detached it).
    fn slot_is_current(&self, table: &str, slot: &Arc<TableSlot>) -> bool {
        self.tables
            .read()
            .expect("registry lock")
            .get(table)
            .is_some_and(|current| Arc::ptr_eq(current, slot))
    }

    /// Pins `table`'s current snapshot: an `Arc` clone under the slot lock (held only
    /// for the bump), tagged with the generation it was published under. Snapshot and
    /// generation live under one lock, so the pair is always consistent: a given
    /// generation identifies exactly one snapshot.
    pub fn read(&self, table: &str) -> Option<SnapshotLease> {
        let slot = self.slot(table)?;
        let (snapshot, generation) = {
            let current = slot.current.lock().expect("registry slot");
            (Arc::clone(&current.0), current.1)
        };
        slot.reads.fetch_add(1, Ordering::Relaxed);
        Some(SnapshotLease { snapshot, generation })
    }

    /// Derives and publishes a revision of `table`'s snapshot **off the serving path**:
    /// `build` runs on the caller's thread against a pinned copy of the current
    /// snapshot while readers keep serving it; only the final swap touches the slot.
    /// Returns the new generation.
    ///
    /// Writers of one table serialise (a second `revise` — or a `publish` — blocks
    /// until the first has swapped), so no published snapshot is ever lost to a
    /// build/swap interleaving; reads are never blocked by an in-flight build.
    pub fn revise<E>(
        &self,
        table: &str,
        build: impl FnOnce(&EngineSnapshot) -> Result<EngineSnapshot, E>,
    ) -> Result<u64, ReviseError<E>> {
        // A plain revision is opaque: observers are told anything may have changed.
        self.revise_scoped(table, |base| build(base).map(|s| (s, ChangeScope::Rebuild)))
    }

    /// [`SnapshotRegistry::revise`] whose builder also states **what changed**: the
    /// closure returns the replacement snapshot plus the [`ChangeScope`] describing
    /// the delta, and registered [`SwapObserver`]s receive that scope with the swap
    /// notification. Use this when the derivation knows its own footprint (e.g.
    /// [`EngineSnapshot::with_priority_revalidated_reported_for`] reports the touched
    /// components); an over-approximation is safe, an under-approximation is not.
    pub fn revise_scoped<E>(
        &self,
        table: &str,
        build: impl FnOnce(&EngineSnapshot) -> Result<(EngineSnapshot, ChangeScope), E>,
    ) -> Result<u64, ReviseError<E>> {
        let Some(slot) = self.slot(table) else {
            return Err(ReviseError::UnknownTable(table.to_string()));
        };
        let _serialised = slot.revision.lock().expect("registry revision lock");
        let base = Arc::clone(&slot.current.lock().expect("registry slot").0);
        let (revised, scope) = build(&base).map_err(ReviseError::Build)?;
        // The table may have been removed (or removed and re-created) during the
        // build; swapping into the detached slot would report success for a revision
        // nobody can ever read. Surface the removal instead.
        if !self.slot_is_current(table, &slot) {
            return Err(ReviseError::UnknownTable(table.to_string()));
        }
        let revised = Arc::new(revised);
        let generation = slot.swap_in(Arc::clone(&revised));
        self.notify(table, generation, &revised, &scope);
        Ok(generation)
    }

    /// Applies a [`Mutation`] to `table`'s snapshot **as a delta** and publishes the
    /// derived snapshot under the per-table revision lock: the replacement is built by
    /// [`EngineSnapshot::with_mutations`](crate::EngineSnapshot::with_mutations) off the
    /// serving path (readers keep their leases; only the final swap touches the slot),
    /// re-partitioning only the affected components and carrying over every untouched
    /// memo entry — no rebuild. Returns the new generation and what the delta did.
    ///
    /// Like [`SnapshotRegistry::revise`], writers of one table serialise, so
    /// interleaved mutations and priority revisions each get their own generation and
    /// every published state is derived from the previously published one.
    pub fn apply(
        &self,
        table: &str,
        mutation: &Mutation,
        parallelism: Parallelism,
    ) -> Result<(u64, MutationReport), ReviseError<MutationError>> {
        let mut report = None;
        let generation = self.revise_scoped(table, |current| {
            let (snapshot, applied) = current.with_mutations_reported(mutation, parallelism)?;
            report = Some(applied);
            Ok((snapshot, ChangeScope::Mutation { relations: mutation.relation_names() }))
        })?;
        Ok((generation, report.expect("a successful revision ran the builder")))
    }

    /// [`SnapshotRegistry::apply`] guarded by an expected generation, verified **under
    /// the per-table revision lock**: the delta derives and swaps only if `table`'s
    /// current generation still equals `expected`; otherwise `Ok(None)` is returned
    /// and the slot is untouched. This is the compare-and-swap a catalog-owning writer
    /// (like `sql::Session`) needs — deriving a delta from a snapshot some *other*
    /// writer published would silently adopt foreign state, so a stale expectation
    /// must surface as a conflict, not a swap.
    pub fn apply_if_generation(
        &self,
        table: &str,
        mutation: &Mutation,
        parallelism: Parallelism,
        expected: u64,
    ) -> Result<Option<(u64, MutationReport)>, ReviseError<MutationError>> {
        let Some(slot) = self.slot(table) else {
            return Err(ReviseError::UnknownTable(table.to_string()));
        };
        let _serialised = slot.revision.lock().expect("registry revision lock");
        // All writers hold the revision lock across base-pin → swap, so the generation
        // read here cannot move before our swap lands.
        let (base, generation) = {
            let current = slot.current.lock().expect("registry slot");
            (Arc::clone(&current.0), current.1)
        };
        if generation != expected {
            return Ok(None);
        }
        let (snapshot, report) =
            base.with_mutations_reported(mutation, parallelism).map_err(ReviseError::Build)?;
        if !self.slot_is_current(table, &slot) {
            return Err(ReviseError::UnknownTable(table.to_string()));
        }
        let snapshot = Arc::new(snapshot);
        let swapped = slot.swap_in(Arc::clone(&snapshot));
        self.notify(
            table,
            swapped,
            &snapshot,
            &ChangeScope::Mutation { relations: mutation.relation_names() },
        );
        Ok(Some((swapped, report)))
    }

    /// [`SnapshotRegistry::revise_scoped`] guarded by an expected generation, verified
    /// **under the per-table revision lock**: `build` derives and the slot swaps only
    /// if `table`'s current generation still equals `expected`; otherwise `Ok(None)`
    /// is returned, the builder never runs, and the slot is untouched. This is the
    /// generic compare-and-swap behind catalog-owning writers — `sql::Session` routes
    /// `ALTER TABLE … ADD FD` and `PREFER` through it (falling back to a rebuild only
    /// on a generation conflict), exactly like
    /// [`SnapshotRegistry::apply_if_generation`] does for row mutations.
    pub fn revise_scoped_if_generation<E>(
        &self,
        table: &str,
        expected: u64,
        build: impl FnOnce(&EngineSnapshot) -> Result<(EngineSnapshot, ChangeScope), E>,
    ) -> Result<Option<u64>, ReviseError<E>> {
        let Some(slot) = self.slot(table) else {
            return Err(ReviseError::UnknownTable(table.to_string()));
        };
        let _serialised = slot.revision.lock().expect("registry revision lock");
        // All writers hold the revision lock across base-pin → swap, so the generation
        // read here cannot move before our swap lands.
        let (base, generation) = {
            let current = slot.current.lock().expect("registry slot");
            (Arc::clone(&current.0), current.1)
        };
        if generation != expected {
            return Ok(None);
        }
        let (revised, scope) = build(&base).map_err(ReviseError::Build)?;
        if !self.slot_is_current(table, &slot) {
            return Err(ReviseError::UnknownTable(table.to_string()));
        }
        let revised = Arc::new(revised);
        let swapped = slot.swap_in(Arc::clone(&revised));
        self.notify(table, swapped, &revised, &scope);
        Ok(Some(swapped))
    }

    /// Removes `table`'s slot. Outstanding leases keep their snapshot alive; an
    /// in-flight [`SnapshotRegistry::revise`] of the table fails with
    /// [`ReviseError::UnknownTable`] rather than swapping into the detached slot, and
    /// a re-publish after removal starts a **fresh generation sequence at 1** (the
    /// generation counter lives in the slot).
    pub fn remove(&self, table: &str) -> bool {
        self.tables.write().expect("registry lock").remove(table).is_some()
    }

    /// Whether the registry currently serves `table`.
    pub fn contains(&self, table: &str) -> bool {
        self.tables.read().expect("registry lock").contains_key(table)
    }

    /// The names of every served table, in lexicographic order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().expect("registry lock").keys().cloned().collect()
    }

    /// `table`'s current generation (0 when the table was never published).
    pub fn generation(&self, table: &str) -> u64 {
        self.slot(table).map_or(0, |slot| slot.current.lock().expect("registry slot").1)
    }

    /// `table`'s counters at one instant.
    pub fn table_stats(&self, table: &str) -> Option<TableStats> {
        let slot = self.slot(table)?;
        let generation = slot.current.lock().expect("registry slot").1;
        Some(TableStats {
            generation,
            reads: slot.reads.load(Ordering::Relaxed),
            swaps: slot.swaps.load(Ordering::Relaxed),
        })
    }

    /// Registry-wide counters: table count plus total reads and swaps.
    pub fn stats(&self) -> RegistryStats {
        let tables = self.tables.read().expect("registry lock");
        let mut stats = RegistryStats { tables: tables.len(), ..RegistryStats::default() };
        for slot in tables.values() {
            stats.reads += slot.reads.load(Ordering::Relaxed);
            stats.swaps += slot.swaps.load(Ordering::Relaxed);
        }
        stats
    }
}

impl fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotRegistry")
            .field("tables", &self.table_names())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use crate::snapshot::EngineBuilder;
    use crate::{FamilyKind, Parallelism};
    use pdqi_relation::TupleId;

    fn example1_snapshot() -> EngineSnapshot {
        let ctx = example1();
        EngineBuilder::new().relation(ctx.instance().clone(), ctx.fds().clone()).build().unwrap()
    }

    #[test]
    fn publish_read_and_generations() {
        let registry = SnapshotRegistry::new();
        assert!(registry.read("Mgr").is_none());
        assert_eq!(registry.generation("Mgr"), 0);
        assert_eq!(registry.publish("Mgr", example1_snapshot()), 1);
        let lease = registry.read("Mgr").unwrap();
        assert_eq!(lease.generation(), 1);
        assert_eq!(lease.snapshot().count_repairs(), 3);
        assert_eq!(registry.publish("Mgr", example1_snapshot()), 2);
        assert_eq!(registry.generation("Mgr"), 2);
        // The old lease still serves its pinned snapshot.
        assert_eq!(lease.generation(), 1);
        assert_eq!(lease.snapshot().count_repairs(), 3);
        let stats = registry.table_stats("Mgr").unwrap();
        assert_eq!(stats.generation, 2);
        assert_eq!(stats.swaps, 2);
        assert_eq!(stats.reads, 1);
        assert_eq!(registry.table_names(), vec!["Mgr".to_string()]);
        assert_eq!(registry.stats(), RegistryStats { tables: 1, reads: 1, swaps: 2 });
    }

    #[test]
    fn revise_swaps_against_the_current_snapshot() {
        let ctx = example1();
        let registry = SnapshotRegistry::new();
        registry.publish("Mgr", example1_snapshot());
        let pairs = [(TupleId(0), TupleId(2))];
        let generation = registry
            .revise("Mgr", |current| current.with_priority_pairs(&pairs))
            .expect("revision builds");
        assert_eq!(generation, 2);
        let lease = registry.read("Mgr").unwrap();
        assert_eq!(lease.snapshot().priority().edge_count(), 1);
        // Structure is shared with the pre-revision snapshot, not rebuilt.
        let fresh = EngineBuilder::new()
            .relation(ctx.instance().clone(), ctx.fds().clone())
            .build()
            .unwrap();
        assert_eq!(lease.snapshot().graph().edges(), fresh.graph().edges());
    }

    #[test]
    fn failed_revisions_leave_the_slot_untouched() {
        let registry = SnapshotRegistry::new();
        registry.publish("Mgr", example1_snapshot());
        let result = registry.revise("Mgr", |_| Err::<EngineSnapshot, _>("nope"));
        assert!(matches!(result, Err(ReviseError::Build("nope"))));
        assert_eq!(registry.generation("Mgr"), 1);
        let missing = registry.revise("Nope", |s| Ok::<_, String>(s.clone()));
        assert!(matches!(missing, Err(ReviseError::UnknownTable(_))));
    }

    #[test]
    fn apply_publishes_delta_derived_snapshots_with_generations() {
        use pdqi_relation::Value;
        let registry = SnapshotRegistry::new();
        registry.publish("Mgr", example1_snapshot());
        let before = registry.read("Mgr").unwrap();
        // Delete one of Example 1's conflicting managers: a repair disappears.
        let mutation = crate::Mutation::new()
            .delete("Mgr", vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)]);
        let (generation, report) =
            registry.apply("Mgr", &mutation, Parallelism::sequential()).expect("delta applies");
        assert_eq!(generation, 2);
        assert_eq!(report.deleted, 1);
        assert_eq!(report.inserted, 0);
        let after = registry.read("Mgr").unwrap();
        assert_eq!(after.generation(), 2);
        assert_eq!(after.snapshot().count_repairs(), 2);
        // The pinned pre-mutation lease still serves the old state.
        assert_eq!(before.snapshot().count_repairs(), 3);
        // Errors surface without touching the slot.
        let bad = crate::Mutation::new().insert("Nope", vec![Value::int(1)]);
        assert!(matches!(
            registry.apply("Mgr", &bad, Parallelism::sequential()),
            Err(ReviseError::Build(crate::MutationError::UnknownRelation { .. }))
        ));
        assert_eq!(registry.generation("Mgr"), 2);
        assert!(matches!(
            registry.apply("Nope", &crate::Mutation::new(), Parallelism::sequential()),
            Err(ReviseError::UnknownTable(_))
        ));
    }

    #[test]
    fn apply_if_generation_refuses_stale_expectations() {
        use pdqi_relation::Value;
        let registry = SnapshotRegistry::new();
        registry.publish("Mgr", example1_snapshot());
        let mutation = crate::Mutation::new()
            .delete("Mgr", vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)]);
        // The expectation matches: the delta swaps and reports the new generation.
        let applied = registry
            .apply_if_generation("Mgr", &mutation, Parallelism::sequential(), 1)
            .expect("table exists");
        assert!(matches!(applied, Some((2, _))));
        // The same expectation is now stale: no swap, no error, slot untouched.
        let stale = registry
            .apply_if_generation("Mgr", &mutation, Parallelism::sequential(), 1)
            .expect("table exists");
        assert!(stale.is_none());
        assert_eq!(registry.generation("Mgr"), 2);
        assert!(matches!(
            registry.apply_if_generation("Nope", &mutation, Parallelism::sequential(), 1),
            Err(ReviseError::UnknownTable(_))
        ));
    }

    #[test]
    fn remove_drops_the_slot_but_not_outstanding_leases() {
        let registry = SnapshotRegistry::new();
        registry.publish("Mgr", example1_snapshot());
        let lease = registry.read("Mgr").unwrap();
        assert!(registry.remove("Mgr"));
        assert!(!registry.remove("Mgr"));
        assert!(!registry.contains("Mgr"));
        assert!(registry.read("Mgr").is_none());
        assert_eq!(lease.snapshot().count_repairs(), 3);
        // Re-publishing after removal starts a fresh slot: generations restart at 1.
        assert_eq!(registry.publish("Mgr", example1_snapshot()), 1);
        assert_eq!(registry.read("Mgr").unwrap().generation(), 1);
    }

    #[test]
    fn publishes_and_revisions_serialise_as_writers() {
        // Mixed writers: direct publishes racing revise() calls. Every writer must
        // get its own generation (no lost swaps) and generations must stay dense.
        let registry = SnapshotRegistry::new();
        registry.publish("Mgr", example1_snapshot());
        let rounds = 20usize;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..rounds {
                    registry.publish("Mgr", example1_snapshot());
                }
            });
            scope.spawn(|| {
                for _ in 0..rounds {
                    let pairs = [(TupleId(0), TupleId(2))];
                    registry
                        .revise("Mgr", |current| {
                            current.with_priority_pairs(&pairs).map_err(|e| e.to_string())
                        })
                        .expect("revision builds");
                }
            });
        });
        assert_eq!(registry.generation("Mgr"), 1 + 2 * rounds as u64);
        assert_eq!(registry.table_stats("Mgr").unwrap().swaps, 1 + 2 * rounds as u64);
    }

    #[test]
    fn concurrent_revisions_serialise_and_never_lose_a_swap() {
        let ctx = example1();
        let registry = SnapshotRegistry::new();
        registry.publish("Mgr", example1_snapshot());
        let rounds = 16usize;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        let pairs = [(TupleId(0), TupleId(2))];
                        registry
                            .revise("Mgr", |current| {
                                current.with_priority_revalidated(
                                    ctx.priority_from_pairs(&pairs).unwrap(),
                                    Parallelism::sequential(),
                                )
                            })
                            .expect("revision builds");
                    }
                });
            }
        });
        // 1 initial publish + 4 threads × rounds revisions, none lost.
        assert_eq!(registry.generation("Mgr"), 1 + 4 * rounds as u64);
        // The served snapshot answers exactly like a directly derived one.
        let expected = example1_snapshot()
            .with_priority_pairs(&[(TupleId(0), TupleId(2))])
            .unwrap()
            .preferred_repair_count(FamilyKind::Global);
        let lease = registry.read("Mgr").unwrap();
        assert_eq!(lease.snapshot().preferred_repair_count(FamilyKind::Global), expected);
    }
}
