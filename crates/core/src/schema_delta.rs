//! Schema/constraint deltas: `ALTER TABLE … ADD FD` without snapshot rebuilds.
//!
//! Adding a functional dependency to a relation can only create conflict edges
//! **inside the new FD's left-hand-side groups** — two tuples conflict with an FD only
//! if they agree on its LHS, so tuples in distinct groups are untouched, and edges the
//! graph already has (from the existing FDs) stay exactly as they are. This module
//! exploits that the same way [`crate::delta`] localises row mutations:
//!
//! ```text
//! ALTER R ADD FD X -> Y                 (FD over R's schema)
//!      │
//!      ├─ edge delta        `fd_conflict_edges(instance, fd)` scans only the new FD's
//!      │                    LHS groups; edges already present are discarded
//!      ├─ fast path         no genuinely new edge → the graph, components, shard
//!      │                    plans, priority and the **entire memo** are shared; only
//!      │                    the FD set (and nothing else) changes
//!      ├─ affected region   components incident to a new edge, plus conflict-free
//!      │                    tuples a new edge drags into a component (adding edges
//!      │                    only merges components — never splits)
//!      ├─ re-partition      connected components recomputed for the region only;
//!      │                    tuple ids never change, so untouched components carry
//!      │                    over verbatim (only their global ids may shift)
//!      └─ memo carry-over   untouched `(component, family)` entries survive as-is;
//!                           invalidated entries are re-enumerated eagerly across
//!                           workers, largest components first
//! ```
//!
//! [`EngineSnapshot::with_fd_added`] is **bit-identical to a fresh build** of the same
//! instance under the extended FD set — same conflict graph, same component order and
//! global ids, same shard plans, same preferred repairs and answers — at every degree
//! of parallelism (pinned by the `schema_delta` test suite). The columnar view of the
//! instance is shared with the parent snapshot: the instance does not change, so the
//! transpose is never rebuilt.
//!
//! The serving stack routes schema changes through here end to end: `sql::Session`
//! applies `ALTER TABLE … ADD FD` as a delta through
//! [`crate::SnapshotRegistry::apply_if_generation`]-style compare-and-swap derivations,
//! and the `pdqi-server` `ALTER` frame does the same for remote clients.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use pdqi_constraints::{fd_conflict_edges, ConflictGraph, FunctionalDependency};
use pdqi_priority::{Priority, PriorityError};
use pdqi_relation::{TupleId, TupleSet};

use crate::families::FamilyKind;
use crate::parallel::Parallelism;
use crate::repair::RepairContext;
use crate::snapshot::{EngineSnapshot, Memo, RelationEntry, SnapshotInner};

/// Errors raised while adding a functional dependency to a snapshot.
#[derive(Debug)]
pub enum FdDeltaError {
    /// The delta names a relation the snapshot does not contain.
    UnknownRelation {
        /// The offending relation name.
        relation: String,
    },
    /// The carried-over priority could not be re-installed over the extended graph.
    /// Old priority edges stay conflict edges and acyclic under a graph that only
    /// gained edges, so this is defensive: it cannot fire for priorities the snapshot
    /// itself produced.
    Priority {
        /// The relation whose priority failed.
        relation: String,
        /// The underlying priority error.
        source: PriorityError,
    },
}

impl fmt::Display for FdDeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdDeltaError::UnknownRelation { relation } => {
                write!(f, "snapshot has no relation `{relation}`")
            }
            FdDeltaError::Priority { relation, source } => {
                write!(f, "priority of `{relation}` cannot be carried over: {source}")
            }
        }
    }
}

impl std::error::Error for FdDeltaError {}

/// What adding an FD actually did, for observability and wire responses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FdDeltaReport {
    /// Conflict edges the new FD genuinely added (edges it implies that the existing
    /// FDs already implied do not count).
    pub new_edges: usize,
    /// Old components invalidated (incident to a new edge and hence re-partitioned).
    pub invalidated_components: usize,
    /// `(component, family)` memo entries carried over from the parent snapshot.
    pub carried_entries: usize,
    /// `(component, family)` memo entries eagerly re-enumerated across workers.
    pub recomputed_entries: usize,
    /// The **derived-snapshot** global component ids of the re-partitioned components
    /// — the `affected` set a [`crate::ChangeScope::Schema`] swap carries. Empty
    /// exactly when the FD added no edge.
    pub affected: BTreeSet<usize>,
}

impl EngineSnapshot {
    /// Derives a snapshot with `fd` added to `relation`'s FD set — **bit-identical to
    /// a fresh build** under the extended set at every degree of parallelism —
    /// re-partitioning only the components the new edges touch and carrying over every
    /// untouched memo entry. The FD must be over `relation`'s schema (parse it with
    /// [`pdqi_constraints::FunctionalDependency::parse`] against that schema). See the
    /// [module docs](self).
    pub fn with_fd_added(
        &self,
        relation: &str,
        fd: FunctionalDependency,
        parallelism: Parallelism,
    ) -> Result<EngineSnapshot, FdDeltaError> {
        self.with_fd_added_reported(relation, fd, parallelism).map(|(snapshot, _)| snapshot)
    }

    /// [`EngineSnapshot::with_fd_added`] plus an [`FdDeltaReport`] describing what the
    /// delta actually did (edges added, components invalidated, memo entries carried
    /// and eagerly re-enumerated).
    pub fn with_fd_added_reported(
        &self,
        relation: &str,
        fd: FunctionalDependency,
        parallelism: Parallelism,
    ) -> Result<(EngineSnapshot, FdDeltaReport), FdDeltaError> {
        let rel_index = self
            .entry_index(relation)
            .ok_or_else(|| FdDeltaError::UnknownRelation { relation: relation.to_string() })?;
        let entries = self.entries();
        let entry = &entries[rel_index];
        let instance = entry.ctx.instance();
        let old_graph = entry.ctx.graph();

        // The edge delta: the new FD's conflicts, minus edges the graph already has.
        // Only the FD's own LHS groups are scanned — this is the per-FD shard the
        // parallel builder uses, reused as a delta probe.
        let fd_edges = fd_conflict_edges(instance, &fd);
        let new_edges: Vec<(TupleId, TupleId)> =
            fd_edges.iter().copied().filter(|&(a, b)| !old_graph.are_conflicting(a, b)).collect();

        let new_fds = {
            let mut fds = entry.ctx.fds().clone();
            fds.push(fd);
            fds
        };

        let mut report = FdDeltaReport { new_edges: new_edges.len(), ..FdDeltaReport::default() };

        // Per-relation derivation: the new entry (before offset stitching), the
        // old-local → new-local map of carried components, and the fresh locals.
        let (new_entry, carried, fresh) = if new_edges.is_empty() {
            // Fast path: the graph is unchanged, so components, shard plans, priority
            // and repairs are all identical — share everything, swap only the FD set.
            // (Sharing the graph `Arc` keeps `with_priority`'s pointer-equality check
            // working across the derivation.)
            let mut shared = entry.share();
            shared.ctx = Arc::new(RepairContext::with_columns_from(
                &entry.ctx,
                new_fds,
                Arc::clone(old_graph),
            ));
            let carried: Vec<Option<usize>> = (0..entry.components.len()).map(Some).collect();
            (shared, carried, Vec::new())
        } else {
            // The extended graph: the old edge list plus the genuinely new edges
            // (`from_edge_lists` is a set union, so this equals a full rebuild).
            let lists = [old_graph.edges().to_vec(), new_edges.clone()];
            let new_graph = Arc::new(ConflictGraph::from_edge_lists(instance.len(), &lists));

            // The priority carries over verbatim: every old edge is still a conflict
            // edge, and an acyclic orientation stays acyclic under edge addition.
            let priority =
                Priority::from_pairs(Arc::clone(&new_graph), &entry.priority.edges()).map_err(
                    |source| FdDeltaError::Priority { relation: relation.to_string(), source },
                )?;

            // The affected region: every component incident to a new edge, plus
            // conflict-free tuples a new edge drags in. Adding edges only merges
            // components, and old edges never leave their component, so the region is
            // closed under new-graph adjacency and re-partitioning it alone is exact.
            let mut affected_old = vec![false; entry.components.len()];
            let mut region = TupleSet::with_capacity(instance.len());
            for &(a, b) in &new_edges {
                for id in [a, b] {
                    let comp = entry.comp_of[id.index()];
                    if comp == usize::MAX {
                        region.insert(id);
                    } else {
                        affected_old[comp] = true;
                    }
                }
            }
            for (comp, members) in entry.components.iter().enumerate() {
                if affected_old[comp] {
                    for id in members.iter() {
                        region.insert(id);
                    }
                }
            }

            // Re-partition the region: BFS from region vertices in ascending id order
            // finds its components exactly like `connected_components` would.
            let mut visited = TupleSet::with_capacity(instance.len());
            let mut fresh_parts: Vec<TupleSet> = Vec::new();
            for start in region.iter() {
                if visited.contains(start) {
                    continue;
                }
                visited.insert(start);
                let mut members = TupleSet::with_capacity(instance.len());
                let mut stack = vec![start];
                while let Some(vertex) = stack.pop() {
                    members.insert(vertex);
                    for neighbor in new_graph.neighbors(vertex).iter() {
                        if !visited.contains(neighbor) {
                            visited.insert(neighbor);
                            stack.push(neighbor);
                        }
                    }
                }
                if members.len() >= 2 {
                    fresh_parts.push(members);
                }
            }

            // Assemble the component list: carried components (tuple ids unchanged)
            // and fresh region components, ordered by minimal member — the order a
            // full `connected_components` pass on the extended graph produces.
            enum Origin {
                Carried(usize),
                Fresh,
            }
            let mut assembled: Vec<(TupleId, TupleSet, Origin)> = Vec::new();
            for (old_local, members) in entry.components.iter().enumerate() {
                if affected_old[old_local] {
                    continue;
                }
                let min = members.first().expect("components are non-empty");
                assembled.push((min, members.clone(), Origin::Carried(old_local)));
            }
            for members in fresh_parts {
                let min = members.first().expect("fresh components are non-empty");
                assembled.push((min, members, Origin::Fresh));
            }
            assembled.sort_by_key(|&(min, _, _)| min);

            let mut components = Vec::with_capacity(assembled.len());
            let mut carried: Vec<Option<usize>> = vec![None; entry.components.len()];
            let mut fresh = Vec::new();
            for (new_local, (_, members, origin)) in assembled.into_iter().enumerate() {
                match origin {
                    Origin::Carried(old_local) => carried[old_local] = Some(new_local),
                    Origin::Fresh => fresh.push(new_local),
                }
                components.push(members);
            }
            let mut comp_of = vec![usize::MAX; instance.len()];
            for (index, members) in components.iter().enumerate() {
                for id in members.iter() {
                    comp_of[id.index()] = index;
                }
            }
            let mut base = TupleSet::with_capacity(instance.len());
            for id in instance.ids() {
                if comp_of[id.index()] == usize::MAX {
                    base.insert(id);
                }
            }

            let ctx = RepairContext::with_columns_from(&entry.ctx, new_fds, new_graph);
            let new_entry = RelationEntry {
                ctx: Arc::new(ctx),
                priority,
                components: Arc::new(components),
                base: Arc::new(base),
                comp_of: Arc::new(comp_of),
                comp_offset: 0,
                shards: Arc::new(Vec::new()),
            };
            (new_entry, carried, fresh)
        };
        report.invalidated_components = carried.iter().filter(|c| c.is_none()).count();

        // Stitch offsets and shard plans in relation order, building the old→new
        // global component id map (untouched relations keep their locals but their
        // offsets shift when the altered relation's component count changed).
        let mut new_entries = Vec::with_capacity(entries.len());
        let mut global_map: Vec<Option<usize>> = vec![None; self.component_count()];
        let mut fresh_jobs: Vec<(usize, usize)> = Vec::new();
        let mut new_offset = 0usize;
        let mut altered = Some(new_entry);
        for (rel, old_entry) in entries.iter().enumerate() {
            let old_offset = old_entry.comp_offset;
            let stitched = if rel == rel_index {
                for (old_local, new_local) in carried.iter().enumerate() {
                    if let Some(new_local) = new_local {
                        global_map[old_offset + old_local] = Some(new_offset + new_local);
                    }
                }
                fresh_jobs.extend(fresh.iter().map(|&local| (rel, local)));
                report.affected = fresh.iter().map(|&local| new_offset + local).collect();
                altered.take().expect("one altered relation").with_offset(rel, new_offset)
            } else {
                for local in 0..old_entry.components.len() {
                    global_map[old_offset + local] = Some(new_offset + local);
                }
                old_entry.share().with_offset(rel, new_offset)
            };
            new_offset += stitched.components.len();
            new_entries.push(stitched);
        }

        // Carry the component memo: tuple ids never change, so every untouched entry
        // is shared verbatim under its (possibly shifted) global id. Families seen per
        // relation feed the eager re-enumeration below.
        let memo = Memo::default();
        let mut families_by_rel: Vec<Vec<FamilyKind>> = vec![Vec::new(); entries.len()];
        self.inner.memo.components.for_each(|&(old_global, kind), sets| {
            let (rel, _) = self.locate_component(old_global);
            if !families_by_rel[rel].contains(&kind) {
                families_by_rel[rel].push(kind);
            }
            if let Some(new_global) = global_map[old_global] {
                memo.components.insert_if_missing((new_global, kind), sets);
                report.carried_entries += 1;
            }
        });

        // Carry answers: anything reading the altered relation is dropped when edges
        // were added (its repairs changed); everything else survives with global
        // component ids remapped. On the fast path nothing changed at all, so every
        // answer carries.
        let edges_added = report.new_edges > 0;
        memo.carry_answers_from(&self.inner.memo, |answer| {
            if edges_added && answer.relations.contains(&rel_index) {
                return None;
            }
            answer.depends_on.iter().map(|&global| global_map[global]).collect()
        });
        memo.carry_plans_from(&self.inner.memo, |plan| {
            if edges_added && plan.relations.contains(&rel_index) {
                return None;
            }
            plan.depends_on.iter().map(|&global| global_map[global]).collect()
        });

        let derived = EngineSnapshot {
            inner: Arc::new(SnapshotInner {
                relations: new_entries,
                by_name: self.inner.by_name.clone(),
                memo,
            }),
        };

        // Eagerly re-enumerate the invalidated slice: for every re-partitioned
        // component, each family the parent had memoised for its relation — fanned out
        // across workers, largest components first, exactly like `with_mutations` and
        // `with_priority_revalidated` do.
        let mut jobs: Vec<(usize, usize, FamilyKind)> = Vec::new();
        for &(rel, local) in &fresh_jobs {
            for &kind in &families_by_rel[rel] {
                jobs.push((rel, local, kind));
            }
        }
        let weights: Vec<u128> = jobs
            .iter()
            .map(|&(rel, local, _)| derived.entries()[rel].components[local].len() as u128)
            .collect();
        let order = pdqi_solve::mis::schedule_by_descending_weight(&weights);
        let jobs: Vec<(usize, usize, FamilyKind)> = order.into_iter().map(|i| jobs[i]).collect();
        crate::parallel::run_jobs(parallelism, jobs.len(), |i| {
            let (rel, local, kind) = jobs[i];
            derived.component_preferred(rel, local, kind);
        });
        report.recomputed_entries = jobs.len();

        Ok((derived, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::EngineBuilder;
    use pdqi_constraints::FdSet;
    use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

    fn schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
            )
            .unwrap(),
        )
    }

    fn instance(rows: &[(i64, i64, i64)]) -> RelationInstance {
        RelationInstance::from_rows(
            schema(),
            rows.iter()
                .map(|&(a, b, c)| vec![Value::int(a), Value::int(b), Value::int(c)])
                .collect(),
        )
        .unwrap()
    }

    fn snapshot_of(rows: &[(i64, i64, i64)], fds: &[&str]) -> EngineSnapshot {
        let fds = FdSet::parse(schema(), fds).unwrap();
        EngineBuilder::new().relation(instance(rows), fds).build().unwrap()
    }

    #[test]
    fn adding_an_fd_matches_a_fresh_build() {
        let rows = [(0, 0, 0), (0, 0, 1), (1, 0, 0), (1, 1, 0), (2, 0, 0), (2, 0, 0), (3, 5, 5)];
        let base = snapshot_of(&rows, &["A -> B"]);
        base.preferred_repairs(FamilyKind::Rep, usize::MAX);
        let fd = FunctionalDependency::parse(&schema(), "A -> C").unwrap();
        let (derived, report) =
            base.with_fd_added_reported("R", fd, Parallelism::sequential()).unwrap();
        let fresh = snapshot_of(&rows, &["A -> B", "A -> C"]);
        assert_eq!(derived.graph().edges(), fresh.graph().edges());
        assert_eq!(derived.component_count(), fresh.component_count());
        assert_eq!(derived.shards(), fresh.shards());
        assert_eq!(
            derived.preferred_repairs(FamilyKind::Rep, usize::MAX),
            fresh.preferred_repairs(FamilyKind::Rep, usize::MAX)
        );
        assert!(report.new_edges > 0);
    }

    #[test]
    fn implied_fds_share_the_whole_snapshot() {
        // Every edge `A -> B, C` could create already exists (any pair agreeing on A
        // and differing on B or C violates A -> B or A -> C alike).
        let base = snapshot_of(&[(0, 0, 0), (0, 1, 1), (1, 0, 0)], &["A -> B", "A -> C"]);
        base.preferred_repairs(FamilyKind::Global, usize::MAX);
        let fd = FunctionalDependency::parse(&schema(), "A -> B, C").unwrap();
        let (derived, report) =
            base.with_fd_added_reported("R", fd, Parallelism::sequential()).unwrap();
        assert_eq!(report.new_edges, 0);
        assert_eq!(report.invalidated_components, 0);
        assert_eq!(report.recomputed_entries, 0);
        assert!(Arc::ptr_eq(base.graph(), derived.graph()));
        assert_eq!(derived.context().fds().len(), 3);
        derived.preferred_repairs(FamilyKind::Global, usize::MAX);
        assert_eq!(derived.memo_stats().component_misses, 0, "memo fully carried");
    }

    #[test]
    fn untouched_components_keep_their_memo_entries() {
        // Under A -> C: components {0,1} and {2,3}, free tuples 4 and 5. Adding
        // B -> C re-creates the (0,1) and (2,3) edges (not new) and one genuinely new
        // edge (4,5) between the previously conflict-free b=9 pair: both old
        // components carry their memo entries; only the fresh {4,5} is enumerated.
        let rows = [(0, 0, 0), (0, 0, 1), (1, 5, 2), (1, 5, 3), (2, 9, 7), (3, 9, 8)];
        let base = snapshot_of(&rows, &["A -> C"]);
        base.preferred_repairs(FamilyKind::Rep, usize::MAX);
        assert_eq!(base.memo_stats().component_misses, 2);
        let fd = FunctionalDependency::parse(&schema(), "B -> C").unwrap();
        let (derived, report) =
            base.with_fd_added_reported("R", fd, Parallelism::sequential()).unwrap();
        assert_eq!(report.new_edges, 1);
        assert_eq!(report.invalidated_components, 0);
        assert_eq!(report.carried_entries, 2);
        assert_eq!(report.recomputed_entries, 1);
        derived.preferred_repairs(FamilyKind::Rep, usize::MAX);
        assert_eq!(derived.memo_stats().component_misses, 1, "only the fresh component");
    }

    #[test]
    fn unknown_relations_error_before_any_work() {
        let base = snapshot_of(&[(0, 0, 0), (0, 0, 1)], &["A -> B"]);
        let fd = FunctionalDependency::parse(&schema(), "A -> C").unwrap();
        assert!(matches!(
            base.with_fd_added("Nope", fd, Parallelism::sequential()),
            Err(FdDeltaError::UnknownRelation { .. })
        ));
    }
}
