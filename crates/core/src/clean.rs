//! Algorithm 1: winnow-driven database cleaning.
//!
//! With a *total* priority the user has specified how every conflict should be resolved,
//! and Algorithm 1 of the paper constructs the corresponding clean database: repeatedly
//! pick any tuple not dominated by another remaining tuple (the winnow operator `ω_≻`),
//! add it to the result, and discard it together with its neighbours. Proposition 1
//! states that for a total priority the result is the same repair for *every* sequence of
//! choices; Proposition 7 states that for partial priorities the set of possible results
//! over all choice sequences is exactly the family of common repairs `C-Rep`.

use std::fmt;

use pdqi_constraints::ConflictGraph;
use pdqi_priority::{winnow, Priority};
use pdqi_relation::{TupleId, TupleSet};

/// Errors raised by the cleaning procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CleaningError {
    /// Algorithm 1 with a deterministic outcome requires a total priority (Prop. 1).
    PriorityNotTotal {
        /// Number of conflict edges left unoriented by the priority.
        unoriented_edges: usize,
    },
}

impl fmt::Display for CleaningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleaningError::PriorityNotTotal { unoriented_edges } => write!(
                f,
                "Algorithm 1 requires a total priority; {unoriented_edges} conflict edges are unoriented"
            ),
        }
    }
}

impl std::error::Error for CleaningError {}

/// Algorithm 1 for a **total** priority: returns the unique repair it computes
/// (Proposition 1). Fails if the priority is not total.
pub fn clean_with_total_priority(
    graph: &ConflictGraph,
    priority: &Priority,
) -> Result<TupleSet, CleaningError> {
    if !priority.is_total() {
        return Err(CleaningError::PriorityNotTotal {
            unoriented_edges: priority.unoriented_edges().len(),
        });
    }
    Ok(clean_with_chooser(graph, priority, |candidates| {
        candidates.first().expect("the winnow of a non-empty set is non-empty")
    }))
}

/// The nondeterministic core of Algorithm 1: run the cleaning loop, resolving each
/// Step-3 choice through `chooser` (which receives the current winnow set `ω_≻(r)` and
/// must return one of its members). With a total priority every chooser produces the same
/// repair; with a partial priority the reachable outputs are exactly `C-Rep` (Prop. 7).
pub fn clean_with_chooser<F>(graph: &ConflictGraph, priority: &Priority, mut chooser: F) -> TupleSet
where
    F: FnMut(&TupleSet) -> TupleId,
{
    let n = graph.vertex_count();
    let mut active = TupleSet::full(n);
    let mut result = TupleSet::with_capacity(n);
    while !active.is_empty() {
        let candidates = winnow(priority, &active);
        debug_assert!(
            !candidates.is_empty(),
            "an acyclic priority always leaves undominated tuples among the active ones"
        );
        let chosen = chooser(&candidates);
        debug_assert!(candidates.contains(chosen), "the chooser must pick a winnow member");
        result.insert(chosen);
        active.remove(chosen);
        active.remove_all(graph.neighbors(chosen));
    }
    result
}

/// Membership test for the family of common repairs (Proposition 7): `candidate` is a
/// common repair iff Algorithm 1 can produce it when every Step-3 choice is restricted to
/// `ω_≻(r) ∩ candidate`. Because choices inside the candidate never invalidate each other
/// (the candidate is an independent set and winnow sets only grow as tuples are removed),
/// a greedy simulation decides membership in polynomial time.
pub fn is_common_repair(graph: &ConflictGraph, priority: &Priority, candidate: &TupleSet) -> bool {
    if !graph.is_maximal_independent(candidate) {
        return false;
    }
    let n = graph.vertex_count();
    let mut active = TupleSet::full(n);
    let mut built = TupleSet::with_capacity(n);
    while !active.is_empty() {
        let winnow_set = winnow(priority, &active);
        let allowed = winnow_set.intersection(candidate);
        let Some(chosen) = allowed.first() else {
            // Algorithm 1 must pick some winnow member, but none of them belongs to the
            // candidate: the candidate is not reachable.
            return false;
        };
        built.insert(chosen);
        active.remove(chosen);
        active.remove_all(graph.neighbors(chosen));
    }
    built == *candidate
}

/// Enumerates the family of common repairs `C-Rep` by exploring every distinct state of
/// Algorithm 1 (memoised on the set of still-active tuples so permutations of independent
/// choices are not re-explored). The number of common repairs can be exponential; use
/// `limit` to cap the enumeration.
pub fn common_repairs(graph: &ConflictGraph, priority: &Priority, limit: usize) -> Vec<TupleSet> {
    common_repairs_within(graph, priority, &TupleSet::full(graph.vertex_count()), limit)
}

/// [`common_repairs`] restricted to an initial active set, which must be closed under
/// conflict neighbourhoods (a connected component, or a union of components). Because the
/// winnow operator and Step-3 choices never cross component boundaries, the common
/// repairs of the whole graph are exactly the unions of one common repair per component —
/// which is how the snapshot pipeline memoises them.
pub fn common_repairs_within(
    graph: &ConflictGraph,
    priority: &Priority,
    active: &TupleSet,
    limit: usize,
) -> Vec<TupleSet> {
    use std::collections::HashSet;
    debug_assert!(
        active.iter().all(|v| graph.neighbors(v).is_subset_of(active)),
        "the active set must be closed under conflict neighbourhoods"
    );
    // Memoise on the set of already-chosen tuples: the active set is a function of it
    // (`active = all \ (built ∪ n(built))`), so two interleavings of the same choices
    // reach identical states and only need to be explored once.
    let mut seen_states: HashSet<TupleSet> = HashSet::new();
    let mut results: HashSet<TupleSet> = HashSet::new();
    let mut stack: Vec<(TupleSet, TupleSet)> = vec![(active.clone(), TupleSet::new())];
    while let Some((active, built)) = stack.pop() {
        if results.len() >= limit {
            break;
        }
        if !seen_states.insert(built.clone()) {
            continue;
        }
        if active.is_empty() {
            results.insert(built);
            continue;
        }
        let candidates = winnow(priority, &active);
        for chosen in candidates.iter() {
            let mut next_active = active.clone();
            next_active.remove(chosen);
            next_active.remove_all(graph.neighbors(chosen));
            let mut next_built = built.clone();
            next_built.insert(chosen);
            stack.push((next_active, next_built));
        }
    }
    let mut out: Vec<TupleSet> = results.into_iter().collect();
    out.sort_by_key(|set| set.iter().collect::<Vec<_>>());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;

    #[test]
    fn algorithm_1_requires_a_total_priority() {
        let (ctx, priority) = example7();
        // Example 7's priority leaves the tb–tc edge unoriented.
        let err = clean_with_total_priority(ctx.graph(), &priority).unwrap_err();
        assert_eq!(err, CleaningError::PriorityNotTotal { unoriented_edges: 1 });
    }

    #[test]
    fn algorithm_1_is_choice_independent_for_total_priorities_prop_1() {
        let (ctx, priority) = example9();
        let expected = clean_with_total_priority(ctx.graph(), &priority).unwrap();
        // Any chooser — lowest id, highest id — produces the same repair.
        let lowest = clean_with_chooser(ctx.graph(), &priority, |c| c.first().unwrap());
        let highest = clean_with_chooser(ctx.graph(), &priority, |c| c.iter().last().unwrap());
        assert_eq!(lowest, expected);
        assert_eq!(highest, expected);
        assert!(ctx.is_repair(&expected));
        // For Example 9 the cleaning outcome is the alternating repair {ta, tc, te}.
        assert_eq!(expected, TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(4)]));
    }

    #[test]
    fn algorithm_1_on_example_8_selects_the_dominating_tuple() {
        let (ctx, priority) = example8();
        let cleaned = clean_with_total_priority(ctx.graph(), &priority).unwrap();
        assert_eq!(cleaned, TupleSet::from_ids([TupleId(2)]));
    }

    #[test]
    fn common_repair_membership_follows_prop_7() {
        let (ctx, priority) = example7();
        // Only {ta} is a common repair under ta ≻ tb, ta ≻ tc.
        assert!(is_common_repair(ctx.graph(), &priority, &TupleSet::from_ids([TupleId(0)])));
        assert!(!is_common_repair(ctx.graph(), &priority, &TupleSet::from_ids([TupleId(1)])));
        assert!(!is_common_repair(ctx.graph(), &priority, &TupleSet::from_ids([TupleId(2)])));
        // Non-repairs are never common repairs.
        assert!(!is_common_repair(
            ctx.graph(),
            &priority,
            &TupleSet::from_ids([TupleId(0), TupleId(1)])
        ));
    }

    #[test]
    fn with_the_empty_priority_every_repair_is_a_common_repair() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        let repairs = ctx.repairs(10);
        for repair in &repairs {
            assert!(is_common_repair(ctx.graph(), &empty, repair));
        }
        let commons = common_repairs(ctx.graph(), &empty, usize::MAX);
        assert_eq!(commons.len(), repairs.len());
    }

    #[test]
    fn common_repair_enumeration_matches_membership() {
        for (ctx, priority) in [example7(), example8(), example9()] {
            let commons = common_repairs(ctx.graph(), &priority, usize::MAX);
            for repair in ctx.repairs(100) {
                let member = is_common_repair(ctx.graph(), &priority, &repair);
                assert_eq!(commons.contains(&repair), member);
            }
            // Every enumerated common repair is indeed a repair.
            for common in &commons {
                assert!(ctx.is_repair(common));
            }
        }
    }

    #[test]
    fn enumeration_respects_the_limit() {
        let ctx = example4(6);
        let empty = ctx.empty_priority();
        assert_eq!(common_repairs(ctx.graph(), &empty, 5).len(), 5);
    }
}
