//! Prepared queries and the unified answer pipeline.
//!
//! A [`PreparedQuery`] parses, classifies and fingerprints a first-order query **once**
//! and can then be executed any number of times, against any [`EngineSnapshot`], under
//! any [`FamilyKind`] and [`Semantics`]. Execution runs through one pipeline for every
//! query shape:
//!
//! 1. look up the snapshot's answer memo under `(components, family, fingerprint)` —
//!    repeated executions return immediately;
//! 2. otherwise enumerate the preferred repairs of the *relevant* components only (the
//!    components of the relations the query mentions), assembled from the snapshot's
//!    per-component memo, evaluating the query per repair;
//! 3. store the result in the memo and hand back a streaming [`AnswerSet`] cursor over
//!    the shared row buffer.
//!
//! Ground queries under the plain repair family keep their polynomial fast path
//! ([`crate::cqa_ground`]), reported with `examined == 0` as before.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;
use std::sync::Arc;

use pdqi_query::classify::{classify, QueryClass};
use pdqi_query::{parse_formula, Evaluator, Formula, QueryError};
use pdqi_relation::{TupleSet, Value};

use crate::cqa::CqaOutcome;
use crate::cqa_ground::ground_consistent_answer;
use crate::families::FamilyKind;
use crate::snapshot::{AnswerKey, AnswerMode, EngineSnapshot};

/// Which answers an open-query execution returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Rows that are answers in **every** preferred repair (certain answers).
    Certain,
    /// Rows that are answers in **some** preferred repair (possible answers).
    Possible,
}

impl Semantics {
    fn mode(self) -> AnswerMode {
        match self {
            Semantics::Certain => AnswerMode::Certain,
            Semantics::Possible => AnswerMode::Possible,
        }
    }
}

/// A query parsed, classified and fingerprinted once, executable many times.
///
/// ```
/// use pdqi_core::{EngineBuilder, FamilyKind, PreparedQuery, Semantics};
/// # use std::sync::Arc;
/// # use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
/// # use pdqi_constraints::FdSet;
/// # let schema = Arc::new(RelationSchema::from_pairs(
/// #     "R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap());
/// # let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
/// #     vec![Value::int(1), Value::int(1)], vec![Value::int(1), Value::int(2)],
/// # ]).unwrap();
/// # let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
/// let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
/// let query = PreparedQuery::parse("EXISTS b . R(x,b)").unwrap();
/// let answers = query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap();
/// assert_eq!(answers.columns(), ["x"]);
/// assert_eq!(answers.count(), 1); // A = 1 appears in every repair
/// ```
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    source: Option<String>,
    formula: Formula,
    class: QueryClass,
    free: Vec<String>,
    relations: Vec<String>,
    fingerprint: u64,
}

impl PreparedQuery {
    /// Parses and prepares a textual query.
    pub fn parse(text: &str) -> Result<Self, QueryError> {
        let formula = parse_formula(text)?;
        let mut prepared = PreparedQuery::from_formula(formula);
        prepared.source = Some(text.to_string());
        Ok(prepared)
    }

    /// Prepares an already-built formula.
    pub fn from_formula(formula: Formula) -> Self {
        let class = classify(&formula);
        let free = formula.free_vars();
        let relations = formula.relations().into_iter().collect();
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        formula.hash(&mut hasher);
        let fingerprint = hasher.finish();
        PreparedQuery { source: None, formula, class, free, relations, fingerprint }
    }

    /// The parsed formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The original query text, when prepared from text.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// The query's most specific class (ground, quantifier-free, conjunctive, ...).
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// The free variables, in lexicographic order — the columns of every answer set.
    pub fn free_vars(&self) -> &[String] {
        &self.free
    }

    /// Whether the query is closed (no free variable).
    pub fn is_closed(&self) -> bool {
        self.free.is_empty()
    }

    /// The relation names the query mentions.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// The memo fingerprint: stable across executions, snapshots and clones.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The snapshot relation indices this query's answers depend on.
    fn relevant_relations(&self, snapshot: &EngineSnapshot) -> Vec<usize> {
        let mut relevant: Vec<usize> =
            self.relations.iter().filter_map(|name| snapshot.entry_index(name)).collect();
        relevant.sort_unstable();
        relevant.dedup();
        relevant
    }

    /// Executes the query against a snapshot, returning a streaming [`AnswerSet`].
    ///
    /// Works for open and closed queries alike: a closed query yields one zero-column
    /// row when the chosen semantics holds and no row otherwise. Results are memoised in
    /// the snapshot under `(components, family, fingerprint)` — a second execution with
    /// the same key streams from the shared buffer without re-enumerating anything.
    pub fn execute(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
    ) -> Result<AnswerSet, QueryError> {
        let key = AnswerKey { fingerprint: self.fingerprint, family: kind, mode: semantics.mode() };
        if let Some(entry) = snapshot.cached_answer(&key, &self.formula) {
            return Ok(AnswerSet::new(Arc::clone(&entry.columns), Arc::clone(&entry.rows)));
        }
        let relevant = self.relevant_relations(snapshot);
        let mut accumulated: Option<BTreeSet<Vec<Value>>> = None;
        let mut error: Option<QueryError> = None;
        snapshot.for_each_preferred_selection(kind, &relevant, &mut |selection| {
            let evaluator = self.evaluator_for(snapshot, &relevant, selection);
            let answers = match evaluator.answers(&self.formula) {
                Ok(answers) => answers,
                Err(e) => {
                    error = Some(e);
                    return ControlFlow::Break(());
                }
            };
            let rows: BTreeSet<Vec<Value>> =
                answers.into_iter().map(|row| row.into_values().collect()).collect();
            accumulated = Some(match accumulated.take() {
                None => rows,
                Some(previous) => match semantics {
                    Semantics::Certain => previous.intersection(&rows).cloned().collect(),
                    Semantics::Possible => previous.union(&rows).cloned().collect(),
                },
            });
            // Certain answers only shrink; once empty the outcome is settled.
            if semantics == Semantics::Certain
                && accumulated.as_ref().is_some_and(BTreeSet::is_empty)
            {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        let rows: Arc<Vec<Vec<Value>>> =
            Arc::new(accumulated.unwrap_or_default().into_iter().collect());
        let columns = Arc::new(self.free.clone());
        let entry = snapshot.store_answer(key, &self.formula, &relevant, rows, columns, None);
        Ok(AnswerSet::new(Arc::clone(&entry.columns), Arc::clone(&entry.rows)))
    }

    /// The preferred consistent answer to a closed query (Definition 3): whether the
    /// query holds in every preferred repair, fails in every preferred repair, or is
    /// left undetermined by the inconsistency.
    ///
    /// Ground queries under [`FamilyKind::Rep`] on single-relation snapshots use the
    /// polynomial conflict-graph algorithm (`examined == 0`); every other combination
    /// runs through the memoised component pipeline.
    pub fn consistent_answer(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
    ) -> Result<CqaOutcome, QueryError> {
        if !self.free.is_empty() {
            return Err(QueryError::FreeVariables { variables: self.free.clone() });
        }
        let key =
            AnswerKey { fingerprint: self.fingerprint, family: kind, mode: AnswerMode::Closed };
        if let Some(entry) = snapshot.cached_answer(&key, &self.formula) {
            if let Some(outcome) = entry.outcome {
                return Ok(outcome);
            }
        }
        let relevant = self.relevant_relations(snapshot);
        if kind == FamilyKind::Rep
            && self.class == QueryClass::Ground
            && snapshot.relation_count() == 1
        {
            let ctx = snapshot.context();
            let negated = Formula::Not(Box::new(self.formula.clone()));
            let certainly_true = ground_consistent_answer(ctx, &self.formula);
            let certainly_false = ground_consistent_answer(ctx, &negated);
            if let (Ok(certainly_true), Ok(certainly_false)) = (certainly_true, certainly_false) {
                let outcome = CqaOutcome { certainly_true, certainly_false, examined: 0 };
                snapshot.store_answer(
                    key,
                    &self.formula,
                    &relevant,
                    Arc::new(Vec::new()),
                    Arc::new(Vec::new()),
                    Some(outcome),
                );
                return Ok(outcome);
            }
            // Fall through to the generic pipeline on analysis errors so the caller
            // gets the standard error reporting.
        }
        let mut outcome = CqaOutcome { certainly_true: true, certainly_false: true, examined: 0 };
        let mut error: Option<QueryError> = None;
        snapshot.for_each_preferred_selection(kind, &relevant, &mut |selection| {
            let evaluator = self.evaluator_for(snapshot, &relevant, selection);
            match evaluator.eval_closed(&self.formula) {
                Ok(true) => outcome.certainly_false = false,
                Ok(false) => outcome.certainly_true = false,
                Err(e) => {
                    error = Some(e);
                    return ControlFlow::Break(());
                }
            }
            outcome.examined += 1;
            if outcome.is_undetermined() {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        snapshot.store_answer(
            key,
            &self.formula,
            &relevant,
            Arc::new(Vec::new()),
            Arc::new(Vec::new()),
            Some(outcome),
        );
        Ok(outcome)
    }

    /// Certain answers as an eager, sorted row list (convenience over
    /// [`PreparedQuery::execute`]).
    pub fn certain_answers(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
    ) -> Result<Vec<Vec<Value>>, QueryError> {
        Ok(self.execute(snapshot, kind, Semantics::Certain)?.collect())
    }

    /// Possible answers as an eager, sorted row list.
    pub fn possible_answers(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
    ) -> Result<Vec<Vec<Value>>, QueryError> {
        Ok(self.execute(snapshot, kind, Semantics::Possible)?.collect())
    }

    /// An evaluator exposing every snapshot relation, with the relations this query
    /// mentions restricted to the current repair selection.
    fn evaluator_for<'a>(
        &self,
        snapshot: &'a EngineSnapshot,
        relevant: &[usize],
        selection: &'a [TupleSet],
    ) -> Evaluator<'a> {
        let mut evaluator = Evaluator::new();
        for (index, entry) in snapshot.entries().iter().enumerate() {
            if relevant.contains(&index) {
                evaluator.add_restricted(entry.ctx.instance(), &selection[index]);
            } else {
                evaluator.add_relation(entry.ctx.instance());
            }
        }
        evaluator
    }
}

/// A streaming cursor over the (memoised, shared) answer rows of one execution.
///
/// Rows are sorted and de-duplicated; the row buffer lives behind an [`Arc`], so cloning
/// a cursor or re-executing the same prepared query shares it instead of copying.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    columns: Arc<Vec<String>>,
    rows: Arc<Vec<Vec<Value>>>,
    next: usize,
}

impl AnswerSet {
    fn new(columns: Arc<Vec<String>>, rows: Arc<Vec<Vec<Value>>>) -> Self {
        AnswerSet { columns, rows, next: 0 }
    }

    /// Column headers: the query's free variables, in lexicographic order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Zero-copy view of all rows (independent of the cursor position).
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Whether the answer set has no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Iterator for AnswerSet {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        let row = self.rows.get(self.next)?.clone();
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.rows.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for AnswerSet {}

impl fmt::Display for AnswerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in self.rows.iter() {
            let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", rendered.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use crate::snapshot::EngineBuilder;
    use crate::RepairContext;

    const Q1: &str =
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";

    fn snapshot_of(ctx: &RepairContext) -> EngineSnapshot {
        EngineBuilder::new().relation(ctx.instance().clone(), ctx.fds().clone()).build().unwrap()
    }

    #[test]
    fn preparation_happens_once_and_is_reusable() {
        let query = PreparedQuery::parse(Q1).unwrap();
        assert_eq!(query.class(), QueryClass::Conjunctive);
        assert!(query.is_closed());
        assert_eq!(query.relations(), ["Mgr".to_string()]);
        assert_eq!(query.source(), Some(Q1));
        // Fingerprints are stable across re-preparation.
        assert_eq!(query.fingerprint(), PreparedQuery::parse(Q1).unwrap().fingerprint());
    }

    #[test]
    fn closed_answers_match_the_legacy_cqa_procedure() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query = PreparedQuery::parse(Q1).unwrap();
        for kind in FamilyKind::ALL {
            let piped = query.consistent_answer(&snapshot, kind).unwrap();
            let legacy = crate::cqa::preferred_consistent_answer(
                &ctx,
                &ctx.empty_priority(),
                kind.family().as_ref(),
                query.formula(),
            )
            .unwrap();
            assert_eq!(piped.certainly_true, legacy.certainly_true, "{}", kind.label());
            assert_eq!(piped.certainly_false, legacy.certainly_false, "{}", kind.label());
        }
    }

    #[test]
    fn repeated_executions_hit_the_answer_memo() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query = PreparedQuery::parse("EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
        let first: Vec<_> =
            query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap().collect();
        let after_first = snapshot.memo_stats();
        assert_eq!(after_first.answer_hits, 0);
        let second: Vec<_> =
            query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap().collect();
        assert_eq!(first, second);
        let after_second = snapshot.memo_stats();
        assert_eq!(after_second.answer_hits, 1);
        // The second execution did not re-enumerate any component.
        assert_eq!(after_second.component_misses, after_first.component_misses);
    }

    #[test]
    fn answer_sets_stream_sorted_rows_with_columns() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query = PreparedQuery::parse("EXISTS s,r . Mgr('Mary',x,s,r)").unwrap();
        let possible = query.execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        assert_eq!(possible.columns(), ["x".to_string()]);
        assert_eq!(possible.len(), 2);
        let rows: Vec<_> = possible.clone().collect();
        assert_eq!(rows.len(), 2);
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted, "rows stream in sorted order");
        assert!(possible.to_string().contains('x'));
        let certain = query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap();
        assert!(certain.is_empty());
    }

    #[test]
    fn closed_queries_flow_through_execute_as_zero_column_rows() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query = PreparedQuery::parse(Q1).unwrap();
        // Q1 is undetermined: true in some repairs (→ possible) but not all (→ certain).
        let certain = query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap();
        assert!(certain.is_empty());
        let possible = query.execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        assert_eq!(possible.len(), 1);
        assert_eq!(possible.columns().len(), 0);
    }

    #[test]
    fn ground_fast_path_is_preserved_and_memoised() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query =
            PreparedQuery::parse("Mgr('Mary','R&D',40,3) OR Mgr('Mary','IT',20,1)").unwrap();
        assert_eq!(query.class(), QueryClass::Ground);
        let outcome = query.consistent_answer(&snapshot, FamilyKind::Rep).unwrap();
        assert!(outcome.certainly_true);
        assert_eq!(outcome.examined, 0);
        let again = query.consistent_answer(&snapshot, FamilyKind::Rep).unwrap();
        assert_eq!(outcome, again);
        assert!(snapshot.memo_stats().answer_hits >= 1);
        // Other families run the generic pipeline and examine repairs.
        let outcome = query.consistent_answer(&snapshot, FamilyKind::Global).unwrap();
        assert!(outcome.certainly_true);
        assert!(outcome.examined > 0);
    }

    #[test]
    fn errors_are_propagated_like_the_legacy_path() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let open = PreparedQuery::parse("EXISTS s,r . Mgr(x,'R&D',s,r)").unwrap();
        assert!(matches!(
            open.consistent_answer(&snapshot, FamilyKind::Rep),
            Err(QueryError::FreeVariables { .. })
        ));
        let unknown = PreparedQuery::parse("Nope(x)").unwrap();
        assert!(matches!(
            unknown.execute(&snapshot, FamilyKind::Rep, Semantics::Certain),
            Err(QueryError::UnknownRelation { .. })
        ));
        assert!(PreparedQuery::parse("Mgr(").is_err());
    }

    #[test]
    fn queries_join_across_relations_of_a_multi_relation_snapshot() {
        let mgr = example1();
        let other = example4(2);
        let snapshot = EngineBuilder::new()
            .relation(mgr.instance().clone(), mgr.fds().clone())
            .relation(other.instance().clone(), other.fds().clone())
            .build()
            .unwrap();
        // Mentions only R: certain answers over R's repairs, Mgr is irrelevant.
        let query = PreparedQuery::parse("EXISTS b . R(x,b)").unwrap();
        let certain = query.certain_answers(&snapshot, FamilyKind::Rep).unwrap();
        assert_eq!(certain, vec![vec![Value::int(0)], vec![Value::int(1)]]);
        // A cross-relation conjunction mentions both.
        let join = PreparedQuery::parse("EXISTS d,s,r,b . Mgr('Mary',d,s,r) AND R(x,b) AND s > 15")
            .unwrap();
        let possible = join.possible_answers(&snapshot, FamilyKind::Rep).unwrap();
        assert_eq!(possible, vec![vec![Value::int(0)], vec![Value::int(1)]]);
    }

    #[test]
    fn reuse_across_snapshots_and_derived_priorities() {
        let (ctx, priority) = example9();
        let query = PreparedQuery::parse("R(1,1,0,0)").unwrap();
        let base = snapshot_of(&ctx);
        let with_priority = base.with_priority(priority).unwrap();
        // One prepared query, three snapshots: the plain one, the derived one, and a
        // fresh build; answers agree between derived and fresh.
        let fresh = EngineBuilder::new()
            .relation(ctx.instance().clone(), ctx.fds().clone())
            .priority_pairs(&[
                (pdqi_relation::TupleId(0), pdqi_relation::TupleId(1)),
                (pdqi_relation::TupleId(1), pdqi_relation::TupleId(2)),
                (pdqi_relation::TupleId(2), pdqi_relation::TupleId(3)),
                (pdqi_relation::TupleId(3), pdqi_relation::TupleId(4)),
            ])
            .build()
            .unwrap();
        for kind in FamilyKind::ALL {
            let derived = query.consistent_answer(&with_priority, kind).unwrap();
            let rebuilt = query.consistent_answer(&fresh, kind).unwrap();
            assert_eq!(derived.certainly_true, rebuilt.certainly_true, "{}", kind.label());
            assert_eq!(derived.certainly_false, rebuilt.certainly_false, "{}", kind.label());
        }
    }
}
