//! Prepared queries and the unified answer pipeline.
//!
//! A [`PreparedQuery`] parses, classifies and fingerprints a first-order query **once**
//! and can then be executed any number of times, against any [`EngineSnapshot`], under
//! any [`FamilyKind`] and [`Semantics`]. Execution runs through one pipeline for every
//! query shape:
//!
//! 1. look up the snapshot's answer memo under `(components, family, fingerprint)` —
//!    repeated executions return immediately;
//! 2. otherwise enumerate the preferred repairs of the *relevant* components only (the
//!    components of the relations the query mentions), assembled from the snapshot's
//!    per-component memo, evaluating the query per repair;
//! 3. store the result in the memo and hand back a streaming [`AnswerSet`] cursor over
//!    the shared row buffer.
//!
//! Ground queries under the plain repair family keep their polynomial fast path
//! ([`crate::cqa_ground`]), reported with `examined == 0` as before.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pdqi_query::classify::{classify, QueryClass};
use pdqi_query::{parse_formula, Evaluator, Formula, QueryError};
use pdqi_relation::{TupleSet, Value};

use crate::cqa::CqaOutcome;
use crate::cqa_ground::ground_consistent_answer;
use crate::families::FamilyKind;
use crate::parallel::{run_jobs, Parallelism};
use crate::snapshot::{AnswerKey, AnswerMode, EngineSnapshot};

/// Which answers an open-query execution returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Rows that are answers in **every** preferred repair (certain answers).
    Certain,
    /// Rows that are answers in **some** preferred repair (possible answers).
    Possible,
}

impl Semantics {
    fn mode(self) -> AnswerMode {
        match self {
            Semantics::Certain => AnswerMode::Certain,
            Semantics::Possible => AnswerMode::Possible,
        }
    }
}

/// A query parsed, classified and fingerprinted once, executable many times.
///
/// ```
/// use pdqi_core::{EngineBuilder, FamilyKind, PreparedQuery, Semantics};
/// # use std::sync::Arc;
/// # use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
/// # use pdqi_constraints::FdSet;
/// # let schema = Arc::new(RelationSchema::from_pairs(
/// #     "R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap());
/// # let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
/// #     vec![Value::int(1), Value::int(1)], vec![Value::int(1), Value::int(2)],
/// # ]).unwrap();
/// # let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
/// let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
/// let query = PreparedQuery::parse("EXISTS b . R(x,b)").unwrap();
/// let answers = query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap();
/// assert_eq!(answers.columns(), ["x"]);
/// assert_eq!(answers.count(), 1); // A = 1 appears in every repair
/// ```
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    source: Option<String>,
    formula: Formula,
    class: QueryClass,
    free: Vec<String>,
    relations: Vec<String>,
    fingerprint: u64,
}

impl PreparedQuery {
    /// Parses and prepares a textual query.
    pub fn parse(text: &str) -> Result<Self, QueryError> {
        let formula = parse_formula(text)?;
        let mut prepared = PreparedQuery::from_formula(formula);
        prepared.source = Some(text.to_string());
        Ok(prepared)
    }

    /// Prepares an already-built formula.
    pub fn from_formula(formula: Formula) -> Self {
        let class = classify(&formula);
        let free = formula.free_vars();
        let relations = formula.relations().into_iter().collect();
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        formula.hash(&mut hasher);
        let fingerprint = hasher.finish();
        PreparedQuery { source: None, formula, class, free, relations, fingerprint }
    }

    /// The parsed formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The original query text, when prepared from text.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Attaches a source text to a formula-built query (builder style). [`parse`]
    /// records it automatically; front ends that lower their own surface syntax —
    /// SQL `SELECT`s, say — set it so [`explain`](PreparedQuery::explain) reports
    /// the statement the user actually wrote instead of the raw fingerprint.
    ///
    /// [`parse`]: PreparedQuery::parse
    pub fn with_source(mut self, text: &str) -> Self {
        self.source = Some(text.to_string());
        self
    }

    /// The query's most specific class (ground, quantifier-free, conjunctive, ...).
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// The free variables, in lexicographic order — the columns of every answer set.
    pub fn free_vars(&self) -> &[String] {
        &self.free
    }

    /// Whether the query is closed (no free variable).
    pub fn is_closed(&self) -> bool {
        self.free.is_empty()
    }

    /// The relation names the query mentions.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// The memo fingerprint: stable across executions, snapshots and clones.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The snapshot relation indices this query's answers depend on.
    fn relevant_relations(&self, snapshot: &EngineSnapshot) -> Vec<usize> {
        let mut relevant: Vec<usize> =
            self.relations.iter().filter_map(|name| snapshot.entry_index(name)).collect();
        relevant.sort_unstable();
        relevant.dedup();
        relevant
    }

    /// Executes the query against a snapshot, returning a streaming [`AnswerSet`].
    ///
    /// Works for open and closed queries alike: a closed query yields one zero-column
    /// row when the chosen semantics holds and no row otherwise. Results are memoised in
    /// the snapshot under `(components, family, fingerprint)` — a second execution with
    /// the same key streams from the shared buffer without re-enumerating anything.
    pub fn execute(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
    ) -> Result<AnswerSet, QueryError> {
        self.execute_with(snapshot, kind, semantics, Parallelism::sequential())
    }

    /// [`PreparedQuery::execute`] with an explicit degree of parallelism.
    ///
    /// With a parallel configuration, the relevant components are warmed across workers
    /// and the cartesian product of per-component preferred repairs is split into
    /// contiguous chunks evaluated concurrently. Chunking is **adaptive**: the chunk
    /// count is derived from the memoised per-component preferred-repair counts and the
    /// estimated per-selection evaluation cost (see [`adaptive_chunk_count`]), so small
    /// products pay few cursor setups while heavy or skewed products hand the pool
    /// enough chunks for the shared atomic work index to steal from. The answer set is
    /// **bit-identical** to the sequential execution — certain/possible folding is a set
    /// intersection/union, so merging per-chunk folds in chunk order reproduces the
    /// sequential fold exactly — and the memoised entry is indistinguishable too.
    /// Products that saturate the `u128` counter fall back to the sequential path
    /// rather than trusting truncated chunk boundaries.
    pub fn execute_with(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
        parallelism: Parallelism,
    ) -> Result<AnswerSet, QueryError> {
        self.execute_inner(snapshot, kind, semantics, parallelism, None)
    }

    /// [`PreparedQuery::execute_with`] with a [`ChunkTuner`] in the loop: chunk sizes
    /// come from the tuner's measured per-chunk cost target, and every fully-evaluated
    /// chunk's wall-clock is recorded back. Results are bit-identical either way; only
    /// the split of the repair product changes.
    pub fn execute_tuned(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
        parallelism: Parallelism,
        tuner: &ChunkTuner,
    ) -> Result<AnswerSet, QueryError> {
        self.execute_inner(snapshot, kind, semantics, parallelism, Some(tuner))
    }

    fn execute_inner(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
        parallelism: Parallelism,
        tuner: Option<&ChunkTuner>,
    ) -> Result<AnswerSet, QueryError> {
        let key = AnswerKey { fingerprint: self.fingerprint, family: kind, mode: semantics.mode() };
        if let Some(entry) = snapshot.cached_answer(&key, &self.formula) {
            return Ok(AnswerSet::new(Arc::clone(&entry.columns), Arc::clone(&entry.rows)));
        }
        let relevant = self.relevant_relations(snapshot);
        let plan = self.plan_for(snapshot, kind, &relevant, parallelism, tuner);
        let accumulated = self.accumulate_rows(
            snapshot,
            kind,
            semantics,
            &relevant,
            parallelism,
            tuner,
            plan.as_deref(),
        )?;
        let rows: Arc<Vec<Vec<Value>>> = Arc::new(accumulated.into_iter().collect());
        let columns = Arc::new(self.free.clone());
        let entry = snapshot.store_answer(key, &self.formula, &relevant, rows, columns, None);
        Ok(AnswerSet::new(Arc::clone(&entry.columns), Arc::clone(&entry.rows)))
    }

    /// Folds per-repair answer rows under the chosen semantics, parallel when asked.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_rows(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
        relevant: &[usize],
        parallelism: Parallelism,
        tuner: Option<&ChunkTuner>,
        plan: Option<&pdqi_query::PhysicalPlan>,
    ) -> Result<BTreeSet<Vec<Value>>, QueryError> {
        if !parallelism.is_sequential() {
            if let Some(rows) = self.accumulate_rows_parallel(
                snapshot,
                kind,
                semantics,
                relevant,
                parallelism,
                tuner,
                plan,
            ) {
                return Ok(rows);
            }
            // Fall back to the sequential path: either a worker hit an evaluation
            // error (rerunning sequentially makes error reporting, and its interaction
            // with early exits, match exactly — redundant work only on the failure
            // path), or the repair product saturated `u128` (the sequential recursion
            // never indexes the product, so it needs no chunk boundaries).
        }
        self.accumulate_rows_sequential(snapshot, kind, semantics, relevant, plan)
    }

    fn accumulate_rows_sequential(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
        relevant: &[usize],
        plan: Option<&pdqi_query::PhysicalPlan>,
    ) -> Result<BTreeSet<Vec<Value>>, QueryError> {
        let mut accumulated: Option<BTreeSet<Vec<Value>>> = None;
        let mut error: Option<QueryError> = None;
        snapshot.for_each_preferred_selection(kind, relevant, &mut |selection| {
            let evaluator = self.evaluator_for(snapshot, relevant, selection, plan);
            let rows = match evaluator.answer_rows(&self.formula) {
                Ok(rows) => rows,
                Err(e) => {
                    error = Some(e);
                    return ControlFlow::Break(());
                }
            };
            accumulated = Some(fold_rows(accumulated.take(), rows, semantics));
            // Certain answers only shrink; once empty the outcome is settled.
            if semantics == Semantics::Certain
                && accumulated.as_ref().is_some_and(BTreeSet::is_empty)
            {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        Ok(accumulated.unwrap_or_default())
    }

    /// The parallel row fold: `None` means the caller must fall back to the sequential
    /// path — either a worker hit an evaluation error (rerunning sequentially reproduces
    /// its exact reporting), or the repair product saturated `u128` and indexed chunking
    /// is off the table.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_rows_parallel(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
        relevant: &[usize],
        parallelism: Parallelism,
        tuner: Option<&ChunkTuner>,
        plan: Option<&pdqi_query::PhysicalPlan>,
    ) -> Option<BTreeSet<Vec<Value>>> {
        snapshot.warm_relation_components(kind, relevant, parallelism);
        let Some(lists) = snapshot.selection_lists(kind, relevant) else {
            // Some component has no preferred repair: the product is empty.
            return Some(BTreeSet::new());
        };
        let total = product_size(&lists);
        if total == u128::MAX {
            // The product saturated the counter: chunk boundaries could no longer be
            // trusted to cover every selection, so fall back to the sequential path
            // (which enumerates recursively and never indexes the product).
            return None;
        }
        let cost = self.selection_cost(snapshot, relevant, &lists, plan);
        let target = tuner.map_or(TARGET_CHUNK_COST, |t| t.target_chunk_cost_for(self.fingerprint));
        let chunks =
            chunk_ranges(total, adaptive_chunk_count_with_target(total, cost, parallelism, target));
        // The parallel analogue of the sequential Certain early exit: the merged result
        // is an intersection, so one empty chunk fold empties it globally and every
        // worker can stop.
        let globally_empty = std::sync::atomic::AtomicBool::new(false);
        let folds: Vec<Result<Option<BTreeSet<Vec<Value>>>, QueryError>> =
            run_jobs(parallelism, chunks.len(), |index| {
                let (start, end) = chunks[index];
                let started = tuner.map(|_| Instant::now());
                let mut cursor = SelectionCursor::new(snapshot, &lists, start);
                let mut accumulated: Option<BTreeSet<Vec<Value>>> = None;
                let mut at = start;
                while at < end {
                    if semantics == Semantics::Certain
                        && globally_empty.load(std::sync::atomic::Ordering::Relaxed)
                    {
                        return Ok(Some(BTreeSet::new()));
                    }
                    let evaluator =
                        self.evaluator_for(snapshot, relevant, cursor.selection(), plan);
                    let rows = evaluator.answer_rows(&self.formula)?;
                    accumulated = Some(fold_rows(accumulated.take(), rows, semantics));
                    if semantics == Semantics::Certain
                        && accumulated.as_ref().is_some_and(BTreeSet::is_empty)
                    {
                        globally_empty.store(true, std::sync::atomic::Ordering::Relaxed);
                        return Ok(accumulated);
                    }
                    at += 1;
                    if at < end {
                        cursor.advance();
                    }
                }
                // Only fully-evaluated chunks feed the tuner: an early exit's timing
                // reflects the cut-off, not the per-selection cost.
                if let (Some(tuner), Some(started)) = (tuner, started) {
                    tuner.record_for(
                        self.fingerprint,
                        (end - start).saturating_mul(cost),
                        started.elapsed().as_nanos(),
                    );
                }
                Ok(accumulated)
            });
        let mut merged: Option<BTreeSet<Vec<Value>>> = None;
        for fold in folds {
            match fold {
                Err(_) => return None,
                Ok(None) => {}
                Ok(Some(rows)) => merged = Some(fold_rows(merged.take(), rows, semantics)),
            }
        }
        Some(merged.unwrap_or_default())
    }

    /// The preferred consistent answer to a closed query (Definition 3): whether the
    /// query holds in every preferred repair, fails in every preferred repair, or is
    /// left undetermined by the inconsistency.
    ///
    /// Ground queries under [`FamilyKind::Rep`] on single-relation snapshots use the
    /// polynomial conflict-graph algorithm (`examined == 0`); every other combination
    /// runs through the memoised component pipeline.
    pub fn consistent_answer(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
    ) -> Result<CqaOutcome, QueryError> {
        self.consistent_answer_with(snapshot, kind, Parallelism::sequential())
    }

    /// [`PreparedQuery::consistent_answer`] with an explicit degree of parallelism.
    ///
    /// Workers evaluate contiguous chunks of the repair product and record per-repair
    /// truth values **in enumeration order**; the outcome is then replayed with the
    /// sequential early-exit rule, so the result — including the `examined` counter —
    /// is bit-identical to the sequential path. (For undetermined outcomes the workers
    /// may evaluate repairs the sequential path would have skipped; that extra work
    /// never changes the answer.)
    pub fn consistent_answer_with(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        parallelism: Parallelism,
    ) -> Result<CqaOutcome, QueryError> {
        self.consistent_answer_inner(snapshot, kind, parallelism, None)
    }

    /// [`PreparedQuery::consistent_answer_with`] with a [`ChunkTuner`] in the loop (see
    /// [`PreparedQuery::execute_tuned`]).
    pub fn consistent_answer_tuned(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        parallelism: Parallelism,
        tuner: &ChunkTuner,
    ) -> Result<CqaOutcome, QueryError> {
        self.consistent_answer_inner(snapshot, kind, parallelism, Some(tuner))
    }

    fn consistent_answer_inner(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        parallelism: Parallelism,
        tuner: Option<&ChunkTuner>,
    ) -> Result<CqaOutcome, QueryError> {
        if !self.free.is_empty() {
            return Err(QueryError::FreeVariables { variables: self.free.clone() });
        }
        let key =
            AnswerKey { fingerprint: self.fingerprint, family: kind, mode: AnswerMode::Closed };
        if let Some(entry) = snapshot.cached_answer(&key, &self.formula) {
            if let Some(outcome) = entry.outcome {
                return Ok(outcome);
            }
        }
        let relevant = self.relevant_relations(snapshot);
        if kind == FamilyKind::Rep
            && self.class == QueryClass::Ground
            && snapshot.relation_count() == 1
        {
            let ctx = snapshot.context();
            let negated = Formula::Not(Box::new(self.formula.clone()));
            let certainly_true = ground_consistent_answer(ctx, &self.formula);
            let certainly_false = ground_consistent_answer(ctx, &negated);
            if let (Ok(certainly_true), Ok(certainly_false)) = (certainly_true, certainly_false) {
                let outcome = CqaOutcome { certainly_true, certainly_false, examined: 0 };
                snapshot.store_answer(
                    key,
                    &self.formula,
                    &relevant,
                    Arc::new(Vec::new()),
                    Arc::new(Vec::new()),
                    Some(outcome),
                );
                return Ok(outcome);
            }
            // Fall through to the generic pipeline on analysis errors so the caller
            // gets the standard error reporting.
        }
        let plan = self.plan_for(snapshot, kind, &relevant, parallelism, tuner);
        let outcome =
            self.closed_outcome(snapshot, kind, &relevant, parallelism, tuner, plan.as_deref())?;
        snapshot.store_answer(
            key,
            &self.formula,
            &relevant,
            Arc::new(Vec::new()),
            Arc::new(Vec::new()),
            Some(outcome),
        );
        Ok(outcome)
    }

    fn closed_outcome(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        relevant: &[usize],
        parallelism: Parallelism,
        tuner: Option<&ChunkTuner>,
        plan: Option<&pdqi_query::PhysicalPlan>,
    ) -> Result<CqaOutcome, QueryError> {
        if !parallelism.is_sequential() {
            if let Some(verdicts) =
                self.closed_verdicts_parallel(snapshot, kind, relevant, parallelism, tuner, plan)
            {
                // Replay the per-repair truth values in enumeration order under the
                // sequential early-exit rule: identical outcome, identical `examined`.
                let mut outcome =
                    CqaOutcome { certainly_true: true, certainly_false: true, examined: 0 };
                for verdict in verdicts {
                    match verdict {
                        true => outcome.certainly_false = false,
                        false => outcome.certainly_true = false,
                    }
                    outcome.examined += 1;
                    if outcome.is_undetermined() {
                        break;
                    }
                }
                return Ok(outcome);
            }
            // Evaluation error or saturated product: rerun sequentially (see
            // `accumulate_rows`).
        }
        self.closed_outcome_sequential(snapshot, kind, relevant, plan)
    }

    fn closed_outcome_sequential(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        relevant: &[usize],
        plan: Option<&pdqi_query::PhysicalPlan>,
    ) -> Result<CqaOutcome, QueryError> {
        let mut outcome = CqaOutcome { certainly_true: true, certainly_false: true, examined: 0 };
        let mut error: Option<QueryError> = None;
        snapshot.for_each_preferred_selection(kind, relevant, &mut |selection| {
            let evaluator = self.evaluator_for(snapshot, relevant, selection, plan);
            match evaluator.eval_closed(&self.formula) {
                Ok(true) => outcome.certainly_false = false,
                Ok(false) => outcome.certainly_true = false,
                Err(e) => {
                    error = Some(e);
                    return ControlFlow::Break(());
                }
            }
            outcome.examined += 1;
            if outcome.is_undetermined() {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        Ok(outcome)
    }

    /// Per-repair truth values in enumeration order, evaluated across workers. `None`
    /// means fall back to the sequential path: a worker hit an evaluation error, or the
    /// repair product saturated `u128`.
    ///
    /// The sequential path stops at the first position whose prefix holds both a true
    /// and a false verdict (undetermined). The parallel analogue: a chunk that becomes
    /// undetermined *within itself* stops immediately — the replay is guaranteed to
    /// break at (or before) that position — and publishes its chunk index, so every
    /// later chunk, whose verdicts the replay can then never reach, stops as well.
    /// Earlier chunks still run to completion: their verdicts feed the replayed
    /// `examined` count, which must match the sequential path exactly.
    #[allow(clippy::too_many_arguments)]
    fn closed_verdicts_parallel(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        relevant: &[usize],
        parallelism: Parallelism,
        tuner: Option<&ChunkTuner>,
        plan: Option<&pdqi_query::PhysicalPlan>,
    ) -> Option<Vec<bool>> {
        snapshot.warm_relation_components(kind, relevant, parallelism);
        let Some(lists) = snapshot.selection_lists(kind, relevant) else {
            return Some(Vec::new());
        };
        let total = product_size(&lists);
        if total == u128::MAX {
            // Saturated product: fall back to the sequential path (see
            // `accumulate_rows_parallel`).
            return None;
        }
        let cost = self.selection_cost(snapshot, relevant, &lists, plan);
        let target = tuner.map_or(TARGET_CHUNK_COST, |t| t.target_chunk_cost_for(self.fingerprint));
        let chunks =
            chunk_ranges(total, adaptive_chunk_count_with_target(total, cost, parallelism, target));
        let undetermined_chunk = std::sync::atomic::AtomicUsize::new(usize::MAX);
        let verdicts: Vec<Result<Vec<bool>, QueryError>> =
            run_jobs(parallelism, chunks.len(), |index| {
                let (start, end) = chunks[index];
                let started = tuner.map(|_| Instant::now());
                let mut cursor = SelectionCursor::new(snapshot, &lists, start);
                let mut mine = Vec::new();
                let (mut saw_true, mut saw_false) = (false, false);
                let mut at = start;
                while at < end {
                    if undetermined_chunk.load(std::sync::atomic::Ordering::Relaxed) < index {
                        // An earlier chunk is undetermined: the replay stops inside it
                        // and never consults this chunk's verdicts.
                        return Ok(mine);
                    }
                    let verdict = {
                        let evaluator =
                            self.evaluator_for(snapshot, relevant, cursor.selection(), plan);
                        evaluator.eval_closed(&self.formula)?
                    };
                    mine.push(verdict);
                    match verdict {
                        true => saw_true = true,
                        false => saw_false = true,
                    }
                    if saw_true && saw_false {
                        // This chunk is undetermined on its own: the replay breaks at
                        // this verdict, so the rest of the chunk is irrelevant too.
                        undetermined_chunk.fetch_min(index, std::sync::atomic::Ordering::Relaxed);
                        return Ok(mine);
                    }
                    at += 1;
                    if at < end {
                        cursor.advance();
                    }
                }
                if let (Some(tuner), Some(started)) = (tuner, started) {
                    tuner.record_for(
                        self.fingerprint,
                        (end - start).saturating_mul(cost),
                        started.elapsed().as_nanos(),
                    );
                }
                Ok(mine)
            });
        let mut ordered = Vec::new();
        for chunk in verdicts {
            match chunk {
                Err(_) => return None,
                Ok(mine) => ordered.extend(mine),
            }
        }
        Some(ordered)
    }

    /// The enumeration-order [`ClosedProfile`] of a closed query: the size of the
    /// preferred-repair product plus the positions of the first `true` and first
    /// `false` verdicts, in the exact order the sequential fold visits selections.
    ///
    /// The walk stops as soon as both positions are known (everything after the later
    /// of the two can no longer change the profile), so the cost matches
    /// [`PreparedQuery::consistent_answer`]'s undetermined early exit on undetermined
    /// outcomes and the full enumeration otherwise. Results are not memoised — the
    /// caller (the scatter-gather coordinator's `PROFILE` surface) asks each shard
    /// once per merge.
    pub fn closed_profile(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
    ) -> Result<ClosedProfile, QueryError> {
        if !self.free.is_empty() {
            return Err(QueryError::FreeVariables { variables: self.free.clone() });
        }
        let relevant = self.relevant_relations(snapshot);
        snapshot.warm_relation_components(kind, &relevant, Parallelism::sequential());
        let Some(lists) = snapshot.selection_lists(kind, &relevant) else {
            return Ok(ClosedProfile { total: 0, first_true: None, first_false: None });
        };
        let total = product_size(&lists);
        let mut first_true = None;
        let mut first_false = None;
        if total > 0 {
            let mut cursor = SelectionCursor::new(snapshot, &lists, 0);
            let mut at = 0u128;
            loop {
                let verdict = {
                    let evaluator =
                        self.evaluator_for(snapshot, &relevant, cursor.selection(), None);
                    evaluator.eval_closed(&self.formula)?
                };
                match verdict {
                    true => first_true = first_true.or(Some(at)),
                    false => first_false = first_false.or(Some(at)),
                }
                if first_true.is_some() && first_false.is_some() {
                    break;
                }
                at += 1;
                if at >= total {
                    break;
                }
                cursor.advance();
            }
        }
        Ok(ClosedProfile { total, first_true, first_false })
    }

    /// Certain answers as an eager, sorted row list (convenience over
    /// [`PreparedQuery::execute`]).
    pub fn certain_answers(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
    ) -> Result<Vec<Vec<Value>>, QueryError> {
        Ok(self.execute(snapshot, kind, Semantics::Certain)?.collect())
    }

    /// Possible answers as an eager, sorted row list.
    pub fn possible_answers(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
    ) -> Result<Vec<Vec<Value>>, QueryError> {
        Ok(self.execute(snapshot, kind, Semantics::Possible)?.collect())
    }

    /// An evaluator exposing every snapshot relation, with the relations this query
    /// mentions restricted to the current repair selection. A [`PhysicalPlan`] supplies
    /// the evaluation hints — the chosen join order and eval path — both pinned
    /// bit-identical to the unhinted evaluator.
    ///
    /// [`PhysicalPlan`]: pdqi_query::PhysicalPlan
    fn evaluator_for<'a>(
        &self,
        snapshot: &'a EngineSnapshot,
        relevant: &[usize],
        selection: &'a [TupleSet],
        plan: Option<&pdqi_query::PhysicalPlan>,
    ) -> Evaluator<'a> {
        let mut evaluator = Evaluator::new();
        if let Some(plan) = plan {
            evaluator.set_atom_order(plan.atom_order.clone());
            evaluator.set_prefer_scalar(!plan.vectorized);
        }
        for (index, entry) in snapshot.entries().iter().enumerate() {
            if relevant.contains(&index) {
                evaluator.add_restricted_columnar(
                    entry.ctx.instance(),
                    &selection[index],
                    entry.ctx.columns(),
                );
            } else {
                evaluator.add_relation_columnar(entry.ctx.instance(), entry.ctx.columns());
            }
        }
        evaluator
    }

    /// The per-selection evaluation cost fed to adaptive chunking: the physical plan's
    /// estimate when one was costed, the uniform structural heuristic under the naive
    /// strategy. Either way the number only shapes the chunk split, never the answers.
    fn selection_cost(
        &self,
        snapshot: &EngineSnapshot,
        relevant: &[usize],
        lists: &[(usize, Arc<Vec<TupleSet>>)],
        plan: Option<&pdqi_query::PhysicalPlan>,
    ) -> u128 {
        match plan {
            Some(plan) => (plan.est_selection_cost as u128).max(1),
            None => snapshot.estimate_selection_cost(relevant, lists),
        }
    }

    /// The physical plan for this query on this snapshot: served from the snapshot's
    /// plan cache when this `(fingerprint, family)` was costed before (and the swap
    /// derivations carried it), costed fresh from the memo's cardinalities otherwise.
    /// `None` when the naive fixed strategy is forced (`PDQI_FORCE_NAIVE_PLAN=1` /
    /// [`pdqi_query::force_naive_plan`]).
    fn plan_for(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        relevant: &[usize],
        parallelism: Parallelism,
        tuner: Option<&ChunkTuner>,
    ) -> Option<Arc<pdqi_query::PhysicalPlan>> {
        if pdqi_query::naive_plan_forced() {
            pdqi_query::planner::note_naive();
            return None;
        }
        if let Some(entry) = snapshot.cached_plan(self.fingerprint, kind, &self.formula) {
            pdqi_query::planner::note_plan_cache_hit();
            return Some(Arc::clone(&entry.plan));
        }
        let inputs = self.planner_inputs(snapshot, kind, relevant, parallelism, tuner);
        let plan = pdqi_query::planner::plan(&self.formula, &inputs);
        let entry = snapshot.store_plan(self.fingerprint, kind, &self.formula, relevant, plan);
        Some(Arc::clone(&entry.plan))
    }

    /// Assembles the planner's cardinality inputs from the snapshot: relation row
    /// counts, per-component conflict sizes and whatever repair counts the memo already
    /// holds (a cold component stays `None` and is estimated structurally).
    fn planner_inputs(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        relevant: &[usize],
        parallelism: Parallelism,
        tuner: Option<&ChunkTuner>,
    ) -> pdqi_query::PlannerInputs {
        let entries = snapshot.entries();
        let relations: Vec<pdqi_query::RelationStats> = relevant
            .iter()
            .map(|&rel| {
                let entry = &entries[rel];
                pdqi_query::RelationStats {
                    name: entry.ctx.instance().schema().name().to_string(),
                    rows: entry.ctx.instance().len(),
                    base_rows: entry.base.len(),
                }
            })
            .collect();
        let mut components = Vec::new();
        for (position, &rel) in relevant.iter().enumerate() {
            let entry = &entries[rel];
            for comp in 0..entry.components.len() {
                components.push(pdqi_query::ComponentStats {
                    relation: position,
                    tuples: entry.components[comp].len(),
                    repairs: snapshot.memoised_component_count(rel, comp, kind),
                    rep_repairs: snapshot.memoised_component_count(rel, comp, FamilyKind::Rep),
                });
            }
        }
        pdqi_query::PlannerInputs {
            relations,
            components,
            family: kind.label(),
            derive_eligible: matches!(
                kind,
                FamilyKind::Local | FamilyKind::SemiGlobal | FamilyKind::Global
            ),
            workers: parallelism.thread_count(),
            target_chunk_cost: tuner
                .map_or(TARGET_CHUNK_COST, |t| t.target_chunk_cost_for(self.fingerprint))
                .try_into()
                .unwrap_or(u64::MAX),
        }
    }

    /// Renders the costed physical plan for this query on this snapshot, executes it,
    /// and appends the **actual** cardinalities next to the estimates — the engine half
    /// of `EXPLAIN SELECT …` / `.explain`. Deterministic for a given query and
    /// snapshot: no timings, no pointers, stable tree layout.
    ///
    /// Closed queries report the replayed outcome (verdict and `examined`); open
    /// queries report the answer row count. Either way the execution is the ordinary
    /// memoising one, so explaining a query warms the same caches running it would.
    pub fn explain(
        &self,
        snapshot: &EngineSnapshot,
        kind: FamilyKind,
        semantics: Semantics,
        parallelism: Parallelism,
    ) -> Result<String, QueryError> {
        let relevant = self.relevant_relations(snapshot);
        let summary = match &self.source {
            Some(text) => format!("query {text}"),
            None => format!("query fingerprint={:016x}", self.fingerprint),
        };
        let mut out = match self.plan_for(snapshot, kind, &relevant, parallelism, None) {
            Some(plan) => plan.render(Some(&summary)),
            None => format!(
                "plan family={} naive (PDQI_FORCE_NAIVE_PLAN)\n├─ {summary}\n",
                kind.label()
            ),
        };
        snapshot.warm_relation_components(kind, &relevant, parallelism);
        let product =
            snapshot.selection_lists(kind, &relevant).map_or(0, |lists| product_size(&lists));
        if self.is_closed() {
            let outcome = self.consistent_answer_with(snapshot, kind, parallelism)?;
            out.push_str(&format!(
                "actual product={product} examined={} certainly_true={} certainly_false={}\n",
                outcome.examined, outcome.certainly_true, outcome.certainly_false
            ));
        } else {
            let answers = self.execute_with(snapshot, kind, semantics, parallelism)?;
            out.push_str(&format!("actual product={product} rows={}\n", answers.rows().len()));
        }
        Ok(out)
    }
}

/// The enumeration-order truth profile of a closed query over one snapshot: the size
/// of the preferred-repair product and the positions of the first `true` and first
/// `false` verdicts, counted in the exact order the sequential fold enumerates
/// selections (components in ascending-minimum-tuple-id order, last component varying
/// fastest).
///
/// A profile is what a scatter-gather coordinator needs to reproduce
/// [`PreparedQuery::consistent_answer`] — verdict *and* the `examined` counter —
/// bit-identically from per-shard state: when the global repair product is the
/// shard-ordered cartesian product of per-shard products (no conflict component
/// crosses shards) and a combination's verdict is the OR of per-shard verdicts
/// (single-positive-atom existential queries), the global profile derives from
/// per-shard profiles by mixed-radix weight arithmetic alone, and
/// [`ClosedProfile::outcome`] turns it back into the sequential outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedProfile {
    /// The size of the preferred-repair product (0 when some component has no
    /// preferred repair at all).
    pub total: u128,
    /// The enumeration index of the first selection where the query holds.
    pub first_true: Option<u128>,
    /// The enumeration index of the first selection where the query fails.
    pub first_false: Option<u128>,
}

impl ClosedProfile {
    /// Replays the profile under the sequential early-exit rule, reproducing
    /// [`PreparedQuery::consistent_answer`]'s outcome exactly: a determined outcome
    /// examines the whole product, an undetermined one stops right after the later of
    /// the first-`true` / first-`false` positions.
    pub fn outcome(&self) -> CqaOutcome {
        let clamp = |n: u128| usize::try_from(n).unwrap_or(usize::MAX);
        if self.total == 0 {
            return CqaOutcome { certainly_true: true, certainly_false: true, examined: 0 };
        }
        match (self.first_true, self.first_false) {
            (Some(t), Some(f)) => CqaOutcome {
                certainly_true: false,
                certainly_false: false,
                examined: clamp(t.max(f).saturating_add(1)),
            },
            (Some(_), None) => CqaOutcome {
                certainly_true: true,
                certainly_false: false,
                examined: clamp(self.total),
            },
            (None, _) => CqaOutcome {
                certainly_true: false,
                certainly_false: true,
                examined: clamp(self.total),
            },
        }
    }
}

/// One fold step of the certain/possible accumulation. Intersection and union are
/// associative and commutative, so folding per-chunk and merging chunks in order is
/// bit-identical to the sequential left fold.
fn fold_rows(
    accumulated: Option<BTreeSet<Vec<Value>>>,
    rows: BTreeSet<Vec<Value>>,
    semantics: Semantics,
) -> BTreeSet<Vec<Value>> {
    match accumulated {
        None => rows,
        Some(previous) => match semantics {
            Semantics::Certain => previous.intersection(&rows).cloned().collect(),
            Semantics::Possible => previous.union(&rows).cloned().collect(),
        },
    }
}

/// The size of the cartesian repair product described by `lists`, saturating at
/// `u128::MAX` (an empty list set describes the single base selection).
fn product_size(lists: &[(usize, Arc<Vec<TupleSet>>)]) -> u128 {
    lists.iter().fold(1u128, |total, (_, choices)| total.saturating_mul(choices.len() as u128))
}

/// Ceiling on chunks per worker. More chunks give the atomic work index finer stealing
/// granularity on skewed products (early exits make chunk costs uneven even when
/// per-item cost is uniform), but each chunk pays one cursor setup; 16 bounds that
/// overhead while still letting a worker that drew cheap chunks pull many more.
const MAX_CHUNKS_PER_WORKER: u128 = 16;

/// Target estimated work per chunk, in tuple-evaluations (the cost unit of
/// [`EngineSnapshot`]'s selection-cost estimate). Products whose total estimated work is
/// below `workers × TARGET_CHUNK_COST` get fewer, larger chunks — a tiny product is not
/// worth 64 cursor setups — while heavy products saturate at the per-worker ceiling.
const TARGET_CHUNK_COST: u128 = 4096;

/// The number of chunks a repair product of `total` selections is split into, derived
/// from the **memoised per-component preferred-repair counts**: `total` is their
/// product and `cost_per_item` the estimated tuples per selection, so the division
/// balances estimated work rather than blindly cutting index ranges four per worker.
/// Clamped to `[workers, workers × MAX_CHUNKS_PER_WORKER]` (and never more than one
/// chunk per selection).
pub fn adaptive_chunk_count(total: u128, cost_per_item: u128, parallelism: Parallelism) -> u128 {
    adaptive_chunk_count_with_target(total, cost_per_item, parallelism, TARGET_CHUNK_COST)
}

/// [`adaptive_chunk_count`] with an explicit per-chunk work target (the knob a
/// [`ChunkTuner`] moves from measured chunk wall-clocks).
fn adaptive_chunk_count_with_target(
    total: u128,
    cost_per_item: u128,
    parallelism: Parallelism,
    target: u128,
) -> u128 {
    let workers = parallelism.thread_count() as u128;
    let work = total.saturating_mul(cost_per_item.max(1));
    let ideal = work / target.max(1);
    ideal.clamp(workers, workers.saturating_mul(MAX_CHUNKS_PER_WORKER)).min(total).max(1)
}

/// Wall-clock a chunk should take. The static [`TARGET_CHUNK_COST`] assumes one
/// tuple-evaluation costs roughly the same everywhere; measured chunk timings replace
/// that guess with the session's real cost, converging the chunk *duration* (the thing
/// scheduling actually cares about) to this target instead.
const TARGET_CHUNK_NANOS: u128 = 500_000;

/// Clamps on the tuned per-chunk work target: never below one cursor-setup's worth of
/// work, never so high that a heavy product degenerates to one chunk per worker.
const MIN_TARGET_CHUNK_COST: u64 = 64;
const MAX_TARGET_CHUNK_COST: u64 = 1 << 24;

/// Cap on per-query calibration cells a [`ChunkTuner`] retains. Past the cap a new
/// fingerprint still updates the aggregate counters but reads the static default — a
/// bounded footprint beats perfect calibration for the cache-busting tail.
const TUNER_QUERY_LIMIT: usize = 1024;

/// A [`ChunkTuner`]'s counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTunerStats {
    /// The aggregate per-chunk work target over every recorded chunk, in estimated
    /// tuple-evaluations (observability; chunk sizing reads the per-query targets).
    pub target_chunk_cost: u64,
    /// Fully-evaluated chunks whose wall-clock fed a target so far.
    pub samples: u64,
}

/// One EWMA calibration cell: a target and the number of samples that moved it.
#[derive(Debug)]
struct TunerCell {
    /// Current target, in estimated tuple-evaluations per chunk.
    target: AtomicU64,
    /// Number of recorded chunk timings.
    samples: AtomicU64,
}

impl TunerCell {
    fn new() -> Self {
        TunerCell { target: AtomicU64::new(TARGET_CHUNK_COST as u64), samples: AtomicU64::new(0) }
    }

    /// Records one fully-evaluated chunk: `work` estimated tuple-evaluations took
    /// `elapsed_nanos` of wall-clock. Moves the target an eighth of the way towards the
    /// work volume that would have taken `TARGET_CHUNK_NANOS`.
    fn record(&self, work: u128, elapsed_nanos: u128) {
        let ideal = work.saturating_mul(TARGET_CHUNK_NANOS) / elapsed_nanos.max(1);
        let ideal = ideal.clamp(MIN_TARGET_CHUNK_COST as u128, MAX_TARGET_CHUNK_COST as u128);
        let current = self.target.load(Ordering::Relaxed) as u128;
        let moved = (current * 7 + ideal) / 8;
        self.target.store(
            (moved as u64).clamp(MIN_TARGET_CHUNK_COST, MAX_TARGET_CHUNK_COST),
            Ordering::Relaxed,
        );
        self.samples.fetch_add(1, Ordering::Relaxed);
    }
}

/// Feedback from measured per-chunk wall-clock into the next execution's chunk sizing.
///
/// [`adaptive_chunk_count`] converts a repair product into chunks using a *static*
/// work-per-chunk target (`TARGET_CHUNK_COST`, 4096 tuple-evaluations). That guess is off
/// whenever the per-tuple evaluation cost differs from the assumed one — complex
/// formulas, wide tuples, cold caches. A `ChunkTuner` closes the loop for long-lived
/// sessions: every fully-evaluated chunk records its estimated work and measured
/// wall-clock, and an exponentially-weighted average moves the target so chunks
/// converge towards `TARGET_CHUNK_NANOS` (0.5 ms) of real time each. Early-exited chunks
/// (certain-empty cut-offs, undetermined closes) are not recorded — their timings
/// reflect the exit, not the work.
///
/// Calibration is **per prepared-query fingerprint**: every query reads and feeds its
/// own EWMA cell, so one pathological query (huge formula, cold columnar views) cannot
/// distort chunking for every other prepared query sharing the server's tuner. A
/// fingerprint without samples starts from the static default, and an aggregate cell
/// feeds [`ChunkTuner::stats`] for observability.
///
/// Tuning only changes how the product is *split*; every execution stays bit-identical
/// to the sequential path regardless of the chunk count. Share one tuner per session
/// (or per [`crate::BatchExecutor`]) — it is internally synchronised and updates are
/// deliberately racy-but-monotonic (a lost update costs one sample, never correctness).
#[derive(Debug)]
pub struct ChunkTuner {
    /// The aggregate cell: every recorded chunk moves it, regardless of fingerprint.
    aggregate: TunerCell,
    /// Per-fingerprint calibration cells, bounded by [`TUNER_QUERY_LIMIT`].
    per_query: std::sync::RwLock<std::collections::HashMap<u64, Arc<TunerCell>>>,
}

impl Default for ChunkTuner {
    fn default() -> Self {
        ChunkTuner::new()
    }
}

impl ChunkTuner {
    /// A tuner starting from the static `TARGET_CHUNK_COST` guess.
    pub fn new() -> Self {
        ChunkTuner {
            aggregate: TunerCell::new(),
            per_query: std::sync::RwLock::new(std::collections::HashMap::new()),
        }
    }

    /// A shared tuner, ready to hand to a session or executor.
    pub fn shared() -> Arc<Self> {
        Arc::new(ChunkTuner::new())
    }

    /// The aggregate per-chunk work target, in estimated tuple-evaluations. Chunk
    /// sizing reads [`ChunkTuner::target_chunk_cost_for`] instead; this is the
    /// observability view over every recorded chunk.
    pub fn target_chunk_cost(&self) -> u128 {
        self.aggregate.target.load(Ordering::Relaxed) as u128
    }

    /// The calibrated per-chunk work target for one query fingerprint: its own cell
    /// when that query's chunks have been measured before, the static default
    /// otherwise — never another query's measurements.
    pub fn target_chunk_cost_for(&self, fingerprint: u64) -> u128 {
        let cells = self.per_query.read().expect("tuner lock");
        match cells.get(&fingerprint) {
            Some(cell) if cell.samples.load(Ordering::Relaxed) > 0 => {
                cell.target.load(Ordering::Relaxed) as u128
            }
            _ => TARGET_CHUNK_COST,
        }
    }

    /// The aggregate counters at one instant.
    pub fn stats(&self) -> ChunkTunerStats {
        ChunkTunerStats {
            target_chunk_cost: self.aggregate.target.load(Ordering::Relaxed),
            samples: self.aggregate.samples.load(Ordering::Relaxed),
        }
    }

    /// Records one fully-evaluated chunk of the given query: `work` estimated
    /// tuple-evaluations took `elapsed_nanos` of wall-clock. Feeds the query's own
    /// cell (created on first sample, up to [`TUNER_QUERY_LIMIT`] queries) and the
    /// aggregate.
    fn record_for(&self, fingerprint: u64, work: u128, elapsed_nanos: u128) {
        if work == 0 {
            return;
        }
        let cell = {
            let cells = self.per_query.read().expect("tuner lock");
            cells.get(&fingerprint).cloned()
        };
        let cell = match cell {
            Some(cell) => Some(cell),
            None => {
                let mut cells = self.per_query.write().expect("tuner lock");
                if cells.len() < TUNER_QUERY_LIMIT || cells.contains_key(&fingerprint) {
                    Some(Arc::clone(
                        cells.entry(fingerprint).or_insert_with(|| Arc::new(TunerCell::new())),
                    ))
                } else {
                    None
                }
            }
        };
        if let Some(cell) = cell {
            cell.record(work, elapsed_nanos);
        }
        self.aggregate.record(work, elapsed_nanos);
    }
}

/// Hard ceiling on the ranges [`chunk_ranges`] materialises. One entry per chunk is
/// allocated, so an unclamped caller-supplied count could otherwise loop (and allocate)
/// itself to death; engine callers stay far below this via [`adaptive_chunk_count`].
const MAX_CHUNKS: u128 = 65_536;

/// Splits `[0, total)` into `chunks` contiguous ranges of near-equal length (the first
/// `total % chunks` ranges are one longer). The ranges cover the product exactly once:
/// no gaps, no overlaps, in ascending order. Everything is `u128` — repair products
/// routinely exceed `usize::MAX`, and truncating here would silently drop repairs.
/// `chunks` is clamped to `[1, min(total, 65536)]` (one allocation per chunk; see
/// the private `MAX_CHUNKS` bound).
pub fn chunk_ranges(total: u128, chunks: u128) -> Vec<(u128, u128)> {
    let chunks = chunks.min(total).clamp(1, MAX_CHUNKS);
    let base = total / chunks;
    let remainder = total % chunks;
    let mut ranges = Vec::with_capacity(usize::try_from(chunks).unwrap_or(0));
    let mut start = 0u128;
    for index in 0..chunks {
        let len = base + u128::from(index < remainder);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// An odometer over the cartesian product of per-component preferred repairs, visiting
/// selections in the exact order of the sequential recursion (the last list varies
/// fastest — row-major). `advance` touches only the components whose digit changed, so
/// stepping is cheap even with many components.
struct SelectionCursor<'a> {
    lists: &'a [(usize, Arc<Vec<TupleSet>>)],
    digits: Vec<usize>,
    current: Vec<TupleSet>,
}

impl<'a> SelectionCursor<'a> {
    /// A cursor positioned on the `start`-th selection (row-major index).
    fn new(
        snapshot: &EngineSnapshot,
        lists: &'a [(usize, Arc<Vec<TupleSet>>)],
        start: u128,
    ) -> Self {
        let mut digits = vec![0usize; lists.len()];
        let mut remainder = start;
        for (index, (_, choices)) in lists.iter().enumerate().rev() {
            let len = choices.len() as u128;
            digits[index] = (remainder % len) as usize;
            remainder /= len;
        }
        let mut current = snapshot.base_selection();
        for (index, (rel, choices)) in lists.iter().enumerate() {
            current[*rel].union_with(&choices[digits[index]]);
        }
        SelectionCursor { lists, digits, current }
    }

    /// The current selection, index-aligned with the snapshot's relations.
    fn selection(&self) -> &[TupleSet] {
        &self.current
    }

    /// Steps to the next selection in enumeration order (wraps at the end). Distinct
    /// components are vertex-disjoint, so swapping one component's choice in and out
    /// never disturbs the others.
    fn advance(&mut self) {
        for index in (0..self.lists.len()).rev() {
            let (rel, choices) = &self.lists[index];
            self.current[*rel].remove_all(&choices[self.digits[index]]);
            if self.digits[index] + 1 < choices.len() {
                self.digits[index] += 1;
                self.current[*rel].union_with(&choices[self.digits[index]]);
                return;
            }
            self.digits[index] = 0;
            self.current[*rel].union_with(&choices[0]);
        }
    }
}

/// A streaming cursor over the (memoised, shared) answer rows of one execution.
///
/// Rows are sorted and de-duplicated; the row buffer lives behind an [`Arc`], so cloning
/// a cursor or re-executing the same prepared query shares it instead of copying.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    columns: Arc<Vec<String>>,
    rows: Arc<Vec<Vec<Value>>>,
    next: usize,
}

impl AnswerSet {
    fn new(columns: Arc<Vec<String>>, rows: Arc<Vec<Vec<Value>>>) -> Self {
        AnswerSet { columns, rows, next: 0 }
    }

    /// Column headers: the query's free variables, in lexicographic order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Zero-copy view of all rows (independent of the cursor position).
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Whether the answer set has no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Iterator for AnswerSet {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        let row = self.rows.get(self.next)?.clone();
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.rows.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for AnswerSet {}

impl fmt::Display for AnswerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in self.rows.iter() {
            let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", rendered.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use crate::snapshot::EngineBuilder;
    use crate::RepairContext;

    const Q1: &str =
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";

    fn snapshot_of(ctx: &RepairContext) -> EngineSnapshot {
        EngineBuilder::new().relation(ctx.instance().clone(), ctx.fds().clone()).build().unwrap()
    }

    #[test]
    fn preparation_happens_once_and_is_reusable() {
        let query = PreparedQuery::parse(Q1).unwrap();
        assert_eq!(query.class(), QueryClass::Conjunctive);
        assert!(query.is_closed());
        assert_eq!(query.relations(), ["Mgr".to_string()]);
        assert_eq!(query.source(), Some(Q1));
        // Fingerprints are stable across re-preparation.
        assert_eq!(query.fingerprint(), PreparedQuery::parse(Q1).unwrap().fingerprint());
    }

    #[test]
    fn closed_profiles_replay_to_the_consistent_answer() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        // A conjunctive closed query, a ground query, and family-sensitive variants.
        let queries = [
            Q1,
            "Mgr('Mary','R&D',40,3)",
            "EXISTS n,s,r . Mgr(n,'R&D',s,r)",
            "EXISTS d,s,r . Mgr('Mary',d,s,r) AND s > 25",
        ];
        for text in queries {
            let query = PreparedQuery::parse(text).unwrap();
            for kind in FamilyKind::ALL {
                let profile = query.closed_profile(&snapshot, kind).unwrap();
                let replayed = profile.outcome();
                let direct = query.consistent_answer(&snapshot, kind).unwrap();
                assert_eq!(replayed.certainly_true, direct.certainly_true, "{text} {kind:?}");
                assert_eq!(replayed.certainly_false, direct.certainly_false, "{text} {kind:?}");
                // Ground queries under Rep answer through the polynomial fast path
                // (examined == 0); every other combination walks the same enumeration
                // the profile records, so the replayed counter must match exactly.
                if direct.examined != 0 {
                    assert_eq!(replayed.examined, direct.examined, "{text} {kind:?}");
                }
            }
        }
        // An open query has no closed profile.
        let open = PreparedQuery::parse("EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
        assert!(open.closed_profile(&snapshot, FamilyKind::Rep).is_err());
    }

    #[test]
    fn closed_answers_match_the_legacy_cqa_procedure() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query = PreparedQuery::parse(Q1).unwrap();
        for kind in FamilyKind::ALL {
            let piped = query.consistent_answer(&snapshot, kind).unwrap();
            let legacy = crate::cqa::preferred_consistent_answer(
                &ctx,
                &ctx.empty_priority(),
                kind.family().as_ref(),
                query.formula(),
            )
            .unwrap();
            assert_eq!(piped.certainly_true, legacy.certainly_true, "{}", kind.label());
            assert_eq!(piped.certainly_false, legacy.certainly_false, "{}", kind.label());
        }
    }

    #[test]
    fn repeated_executions_hit_the_answer_memo() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query = PreparedQuery::parse("EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
        let first: Vec<_> =
            query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap().collect();
        let after_first = snapshot.memo_stats();
        assert_eq!(after_first.answer_hits, 0);
        let second: Vec<_> =
            query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap().collect();
        assert_eq!(first, second);
        let after_second = snapshot.memo_stats();
        assert_eq!(after_second.answer_hits, 1);
        // The second execution did not re-enumerate any component.
        assert_eq!(after_second.component_misses, after_first.component_misses);
    }

    #[test]
    fn answer_sets_stream_sorted_rows_with_columns() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query = PreparedQuery::parse("EXISTS s,r . Mgr('Mary',x,s,r)").unwrap();
        let possible = query.execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        assert_eq!(possible.columns(), ["x".to_string()]);
        assert_eq!(possible.len(), 2);
        let rows: Vec<_> = possible.clone().collect();
        assert_eq!(rows.len(), 2);
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted, "rows stream in sorted order");
        assert!(possible.to_string().contains('x'));
        let certain = query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap();
        assert!(certain.is_empty());
    }

    #[test]
    fn closed_queries_flow_through_execute_as_zero_column_rows() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query = PreparedQuery::parse(Q1).unwrap();
        // Q1 is undetermined: true in some repairs (→ possible) but not all (→ certain).
        let certain = query.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap();
        assert!(certain.is_empty());
        let possible = query.execute(&snapshot, FamilyKind::Rep, Semantics::Possible).unwrap();
        assert_eq!(possible.len(), 1);
        assert_eq!(possible.columns().len(), 0);
    }

    #[test]
    fn ground_fast_path_is_preserved_and_memoised() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let query =
            PreparedQuery::parse("Mgr('Mary','R&D',40,3) OR Mgr('Mary','IT',20,1)").unwrap();
        assert_eq!(query.class(), QueryClass::Ground);
        let outcome = query.consistent_answer(&snapshot, FamilyKind::Rep).unwrap();
        assert!(outcome.certainly_true);
        assert_eq!(outcome.examined, 0);
        let again = query.consistent_answer(&snapshot, FamilyKind::Rep).unwrap();
        assert_eq!(outcome, again);
        assert!(snapshot.memo_stats().answer_hits >= 1);
        // Other families run the generic pipeline and examine repairs.
        let outcome = query.consistent_answer(&snapshot, FamilyKind::Global).unwrap();
        assert!(outcome.certainly_true);
        assert!(outcome.examined > 0);
    }

    #[test]
    fn errors_are_propagated_like_the_legacy_path() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let open = PreparedQuery::parse("EXISTS s,r . Mgr(x,'R&D',s,r)").unwrap();
        assert!(matches!(
            open.consistent_answer(&snapshot, FamilyKind::Rep),
            Err(QueryError::FreeVariables { .. })
        ));
        let unknown = PreparedQuery::parse("Nope(x)").unwrap();
        assert!(matches!(
            unknown.execute(&snapshot, FamilyKind::Rep, Semantics::Certain),
            Err(QueryError::UnknownRelation { .. })
        ));
        assert!(PreparedQuery::parse("Mgr(").is_err());
    }

    #[test]
    fn queries_join_across_relations_of_a_multi_relation_snapshot() {
        let mgr = example1();
        let other = example4(2);
        let snapshot = EngineBuilder::new()
            .relation(mgr.instance().clone(), mgr.fds().clone())
            .relation(other.instance().clone(), other.fds().clone())
            .build()
            .unwrap();
        // Mentions only R: certain answers over R's repairs, Mgr is irrelevant.
        let query = PreparedQuery::parse("EXISTS b . R(x,b)").unwrap();
        let certain = query.certain_answers(&snapshot, FamilyKind::Rep).unwrap();
        assert_eq!(certain, vec![vec![Value::int(0)], vec![Value::int(1)]]);
        // A cross-relation conjunction mentions both.
        let join = PreparedQuery::parse("EXISTS d,s,r,b . Mgr('Mary',d,s,r) AND R(x,b) AND s > 15")
            .unwrap();
        let possible = join.possible_answers(&snapshot, FamilyKind::Rep).unwrap();
        assert_eq!(possible, vec![vec![Value::int(0)], vec![Value::int(1)]]);
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        let (ctx, priority) = example9();
        let snapshot = snapshot_of(&ctx).with_priority(priority).unwrap();
        let queries = [
            PreparedQuery::parse("EXISTS b,c,d . R(a,b,c,d)").unwrap(),
            PreparedQuery::parse("EXISTS a,c,d . R(a,b,c,d) AND b >= 0").unwrap(),
            PreparedQuery::parse("EXISTS a,b,c,d . R(a,b,c,d) AND a > b").unwrap(),
        ];
        for query in &queries {
            for kind in FamilyKind::ALL {
                for semantics in [Semantics::Certain, Semantics::Possible] {
                    // Fresh memos so both paths really execute.
                    let sequential_snapshot = snapshot.with_cleared_memo();
                    let parallel_snapshot = snapshot.with_cleared_memo();
                    let sequential: Vec<_> =
                        query.execute(&sequential_snapshot, kind, semantics).unwrap().collect();
                    let parallel: Vec<_> = query
                        .execute_with(
                            &parallel_snapshot,
                            kind,
                            semantics,
                            crate::Parallelism::threads(4),
                        )
                        .unwrap()
                        .collect();
                    assert_eq!(sequential, parallel, "{} {:?}", kind.label(), semantics);
                }
            }
        }
    }

    #[test]
    fn parallel_closed_outcomes_match_including_examined() {
        let ctx = example1();
        let queries = [Q1, "EXISTS d,s,r . Mgr('Mary',d,s,r) AND s > 15"];
        for text in queries {
            let query = PreparedQuery::parse(text).unwrap();
            for kind in FamilyKind::ALL {
                let sequential_snapshot = snapshot_of(&ctx);
                let parallel_snapshot = snapshot_of(&ctx);
                let sequential = query.consistent_answer(&sequential_snapshot, kind).unwrap();
                let parallel = query
                    .consistent_answer_with(
                        &parallel_snapshot,
                        kind,
                        crate::Parallelism::threads(3),
                    )
                    .unwrap();
                assert_eq!(sequential, parallel, "{} on {text}", kind.label());
            }
        }
    }

    #[test]
    fn parallel_errors_match_the_sequential_path() {
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let unknown = PreparedQuery::parse("Nope(x)").unwrap();
        let sequential =
            unknown.execute(&snapshot.with_cleared_memo(), FamilyKind::Rep, Semantics::Certain);
        let parallel = unknown.execute_with(
            &snapshot.with_cleared_memo(),
            FamilyKind::Rep,
            Semantics::Certain,
            crate::Parallelism::threads(4),
        );
        assert_eq!(sequential.unwrap_err(), parallel.unwrap_err());
    }

    #[test]
    fn batch_executor_matches_per_query_execution() {
        use crate::{BatchExecutor, BatchRequest, Parallelism};
        let ctx = example1();
        let snapshot = snapshot_of(&ctx);
        let open = Arc::new(PreparedQuery::parse("EXISTS d,s,r . Mgr(x,d,s,r)").unwrap());
        let closed = Arc::new(PreparedQuery::parse(Q1).unwrap());
        let mut requests = Vec::new();
        for kind in FamilyKind::ALL {
            requests.push(BatchRequest::execute(Arc::clone(&open), kind, Semantics::Certain));
            requests.push(BatchRequest::execute(Arc::clone(&open), kind, Semantics::Possible));
            requests.push(BatchRequest::consistent_answer(Arc::clone(&closed), kind));
        }
        let executor = BatchExecutor::with_parallelism(snapshot.clone(), Parallelism::threads(4));
        let responses = executor.run(&requests);
        assert_eq!(responses.len(), requests.len());
        let reference = snapshot_of(&ctx);
        for (request, response) in requests.iter().zip(responses) {
            match (request, response.unwrap()) {
                (crate::BatchRequest::Execute { query, family, semantics }, batched) => {
                    let direct: Vec<_> =
                        query.execute(&reference, *family, *semantics).unwrap().collect();
                    let batched: Vec<_> = batched.rows().unwrap().clone().collect();
                    assert_eq!(direct, batched);
                }
                (crate::BatchRequest::ConsistentAnswer { query, family }, batched) => {
                    let direct = query.consistent_answer(&reference, *family).unwrap();
                    assert_eq!(direct, batched.outcome().unwrap());
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_partition_exactly_even_beyond_usize() {
        for (total, chunks) in
            [(0u128, 4u128), (1, 4), (7, 3), (4096, 16), (1 << 80, 64), (u128::MAX - 1, 37)]
        {
            let ranges = chunk_ranges(total, chunks);
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].0, 0, "total {total} chunks {chunks}");
            for window in ranges.windows(2) {
                assert_eq!(window[0].1, window[1].0, "gap/overlap at {window:?}");
                assert!(window[0].0 <= window[0].1);
            }
            assert_eq!(ranges.last().unwrap().1, total, "total {total} chunks {chunks}");
        }
    }

    #[test]
    fn adaptive_chunk_counts_scale_with_estimated_work() {
        let four = crate::Parallelism::threads(4);
        // Tiny products collapse to one chunk per selection.
        assert_eq!(adaptive_chunk_count(3, 10, four), 3);
        // Small-but-parallel products stay at one chunk per worker.
        assert_eq!(adaptive_chunk_count(64, 1, four), 4);
        // Heavier work grows the chunk count between the clamps...
        let mid = adaptive_chunk_count(4096, 12, four);
        assert!(mid > 4 && mid < 64, "mid-size product got {mid} chunks");
        // ...and heavy products saturate at MAX_CHUNKS_PER_WORKER per worker.
        assert_eq!(adaptive_chunk_count(1 << 80, 100, four), 64);
        // Saturated work products do not overflow.
        assert_eq!(adaptive_chunk_count(u128::MAX - 1, u128::MAX, four), 64);
    }

    #[test]
    fn chunk_tuner_moves_the_target_with_measured_costs() {
        let tuner = ChunkTuner::new();
        let fp = 0xfeed;
        assert_eq!(tuner.stats(), ChunkTunerStats { target_chunk_cost: 4096, samples: 0 });
        assert_eq!(tuner.target_chunk_cost_for(fp), 4096);
        // Chunks that finish far faster than the wall-clock target pull the target up...
        for _ in 0..64 {
            tuner.record_for(fp, 4096, 1_000); // 4096 evals in 1µs — dirt cheap
        }
        let fast = tuner.stats();
        assert!(fast.target_chunk_cost > 4096, "cheap chunks must grow, got {fast:?}");
        assert_eq!(fast.samples, 64);
        assert!(tuner.target_chunk_cost_for(fp) > 4096);
        // ...and chunks that blow through it pull the target down, within the clamps.
        for _ in 0..128 {
            tuner.record_for(fp, 4096, 4_000_000_000); // 4096 evals in 4s — very expensive
        }
        let slow = tuner.stats();
        assert!(slow.target_chunk_cost < fast.target_chunk_cost, "{slow:?}");
        assert!(slow.target_chunk_cost >= MIN_TARGET_CHUNK_COST);
        // Degenerate samples never move the target or the counter.
        let before = tuner.stats();
        tuner.record_for(fp, 0, 12345);
        assert_eq!(tuner.stats(), before);
    }

    #[test]
    fn chunk_tuner_calibration_is_per_fingerprint() {
        // The historical bug: one pathological query dragged the process-global EWMA
        // down for every prepared query sharing the tuner. Calibration cells are now
        // keyed by fingerprint, so a distorted query leaves its neighbours on their
        // own (or the default) target.
        let tuner = ChunkTuner::new();
        let (pathological, innocent) = (0xbad, 0x600d);
        for _ in 0..128 {
            tuner.record_for(pathological, 4096, 4_000_000_000);
        }
        assert!(tuner.target_chunk_cost_for(pathological) < 4096);
        assert_eq!(
            tuner.target_chunk_cost_for(innocent),
            4096,
            "an unsampled query must read the static default, not its neighbour's EWMA"
        );
        for _ in 0..64 {
            tuner.record_for(innocent, 4096, 1_000);
        }
        assert!(tuner.target_chunk_cost_for(innocent) > 4096);
        assert!(tuner.target_chunk_cost_for(pathological) < 4096, "still isolated");
    }

    #[test]
    fn tuned_executions_feed_the_tuner_and_stay_bit_identical() {
        let ctx = example4(9);
        let snapshot = snapshot_of(&ctx);
        let tuner = ChunkTuner::new();
        let query = PreparedQuery::parse("EXISTS y . R(x,y)").unwrap();
        let tuned: Vec<_> = query
            .execute_tuned(
                &snapshot.with_cleared_memo(),
                FamilyKind::Rep,
                Semantics::Possible,
                crate::Parallelism::threads(2),
                &tuner,
            )
            .unwrap()
            .collect();
        let sequential: Vec<_> = query
            .execute(&snapshot.with_cleared_memo(), FamilyKind::Rep, Semantics::Possible)
            .unwrap()
            .collect();
        assert_eq!(tuned, sequential);
        let stats = tuner.stats();
        assert!(stats.samples > 0, "fully-evaluated chunks must be recorded: {stats:?}");
        assert_ne!(stats.target_chunk_cost, 4096, "measured costs must move the target");
        // Closed executions feed the same loop.
        let closed = PreparedQuery::parse("EXISTS x,y . R(x,y) AND x > 100").unwrap();
        let before = tuner.stats().samples;
        let outcome = closed
            .consistent_answer_tuned(
                &snapshot.with_cleared_memo(),
                FamilyKind::Rep,
                crate::Parallelism::threads(2),
                &tuner,
            )
            .unwrap();
        assert!(outcome.certainly_false);
        assert!(tuner.stats().samples > before);
    }

    #[test]
    fn single_request_batches_use_the_pool_and_the_shared_tuner() {
        use crate::{BatchExecutor, BatchRequest, Parallelism};
        let ctx = example4(9);
        let snapshot = snapshot_of(&ctx);
        let tuner = ChunkTuner::shared();
        let executor = BatchExecutor::with_tuner(
            snapshot.with_cleared_memo(),
            Parallelism::threads(2),
            Arc::clone(&tuner),
        );
        let query = Arc::new(PreparedQuery::parse("EXISTS y . R(x,y)").unwrap());
        let request =
            BatchRequest::execute(Arc::clone(&query), FamilyKind::Rep, Semantics::Possible);
        let responses = executor.run(std::slice::from_ref(&request));
        assert_eq!(responses.len(), 1);
        let rows: Vec<_> = responses[0].as_ref().unwrap().rows().unwrap().clone().collect();
        let direct: Vec<_> = query
            .execute(&snapshot_of(&ctx), FamilyKind::Rep, Semantics::Possible)
            .unwrap()
            .collect();
        assert_eq!(rows, direct);
        assert!(tuner.stats().samples > 0, "single-request batches must chunk and record");
        assert!(Arc::ptr_eq(executor.tuner(), &tuner));
    }

    #[test]
    fn repair_products_beyond_u64_execute_in_parallel_without_truncation() {
        // 80 independent two-repair components: 2^80 repairs, far beyond usize::MAX.
        // A certain-answer query that empties immediately exercises the chunked path
        // (cursor seeks into the >2^64 product) and terminates through the shared
        // early-exit flag; any usize truncation in chunking would panic or misindex.
        let ctx = example4(80);
        let snapshot = snapshot_of(&ctx);
        assert_eq!(snapshot.count_repairs(), 1u128 << 80);
        assert!(snapshot.count_repairs() > u64::MAX as u128);
        let query = PreparedQuery::parse("EXISTS y . R(x,y) AND x < 0").unwrap();
        let sequential: Vec<_> = query
            .execute(&snapshot.with_cleared_memo(), FamilyKind::Rep, Semantics::Certain)
            .unwrap()
            .collect();
        let parallel: Vec<_> = query
            .execute_with(
                &snapshot.with_cleared_memo(),
                FamilyKind::Rep,
                Semantics::Certain,
                crate::Parallelism::threads(4),
            )
            .unwrap()
            .collect();
        assert_eq!(sequential, parallel);
        assert!(parallel.is_empty());
    }

    #[test]
    fn selection_cursor_seeks_correctly_past_u64_boundaries() {
        // The cursor must decompose start indices above 2^64 digit-exactly: seeking to
        // `start` and advancing must agree with seeking to `start + 1`.
        let ctx = example4(80);
        let snapshot = snapshot_of(&ctx);
        let lists = snapshot.selection_lists(FamilyKind::Rep, &[0]).unwrap();
        for start in [0u128, 1, (1 << 70) - 1, 1 << 70, (1 << 80) - 2] {
            let mut cursor = SelectionCursor::new(&snapshot, &lists, start);
            cursor.advance();
            let next = SelectionCursor::new(&snapshot, &lists, start + 1);
            assert_eq!(cursor.selection(), next.selection(), "start {start}");
        }
    }

    #[test]
    fn reuse_across_snapshots_and_derived_priorities() {
        let (ctx, priority) = example9();
        let query = PreparedQuery::parse("R(1,1,0,0)").unwrap();
        let base = snapshot_of(&ctx);
        let with_priority = base.with_priority(priority).unwrap();
        // One prepared query, three snapshots: the plain one, the derived one, and a
        // fresh build; answers agree between derived and fresh.
        let fresh = EngineBuilder::new()
            .relation(ctx.instance().clone(), ctx.fds().clone())
            .priority_pairs(&[
                (pdqi_relation::TupleId(0), pdqi_relation::TupleId(1)),
                (pdqi_relation::TupleId(1), pdqi_relation::TupleId(2)),
                (pdqi_relation::TupleId(2), pdqi_relation::TupleId(3)),
                (pdqi_relation::TupleId(3), pdqi_relation::TupleId(4)),
            ])
            .build()
            .unwrap();
        for kind in FamilyKind::ALL {
            let derived = query.consistent_answer(&with_priority, kind).unwrap();
            let rebuilt = query.consistent_answer(&fresh, kind).unwrap();
            assert_eq!(derived.certainly_true, rebuilt.certainly_true, "{}", kind.label());
            assert_eq!(derived.certainly_false, rebuilt.certainly_false, "{}", kind.label());
        }
    }
}
