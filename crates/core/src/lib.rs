//! Preference-driven querying of inconsistent relational databases.
//!
//! This crate is the heart of the `pdqi` workspace: it implements the framework of
//! S. Staworko, J. Chomicki and J. Marcinkowski, *Preference-Driven Querying of
//! Inconsistent Relational Databases* (EDBT 2006 Workshops):
//!
//! * **repairs** of an inconsistent instance w.r.t. functional dependencies — the maximal
//!   consistent subsets, represented through the conflict graph ([`repair`]),
//! * the paper's three **optimality notions** — local, semi-global and global — plus the
//!   `≪` lifting of a priority to repairs ([`optimality`]),
//! * the four **families of preferred repairs** `Rep ⊇ L-Rep ⊇ S-Rep ⊇ G-Rep ⊇ C-Rep`
//!   with membership tests (X-repair checking) and enumeration ([`families`]),
//! * **Algorithm 1**, the winnow-driven cleaning procedure whose possible outputs are
//!   exactly the common repairs C-Rep ([`clean`]),
//! * executable checks of the desirable **properties P1–P4** and of the paper's
//!   propositions and theorems ([`properties`]),
//! * **preferred consistent query answers** for every family, with both the generic
//!   enumeration-based procedure and the polynomial-time algorithm for quantifier-free
//!   queries under the plain repair family ([`cqa`], [`cqa_ground`]),
//! * a one-stop façade, [`PdqiEngine`] ([`engine`]).
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use pdqi_relation::{RelationSchema, RelationInstance, Value, ValueType};
//! use pdqi_constraints::FdSet;
//! use pdqi_core::{PdqiEngine, FamilyKind};
//!
//! // The integrated manager instance of the paper's Example 1.
//! let schema = Arc::new(RelationSchema::from_pairs("Mgr", &[
//!     ("Name", ValueType::Name), ("Dept", ValueType::Name),
//!     ("Salary", ValueType::Int), ("Reports", ValueType::Int),
//! ]).unwrap());
//! let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
//!     vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
//!     vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
//!     vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
//!     vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
//! ]).unwrap();
//! let fds = FdSet::parse(Arc::clone(&schema),
//!     &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"]).unwrap();
//!
//! let engine = PdqiEngine::new(instance, fds);
//! assert_eq!(engine.count_repairs(), 3);           // Example 2
//! let q1 = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";
//! let answer = engine.consistent_answer_text(q1, FamilyKind::Rep).unwrap();
//! assert!(!answer.certainly_true);                 // true is NOT a consistent answer to Q1
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clean;
pub mod cqa;
pub mod cqa_ground;
pub mod engine;
pub mod families;
pub mod hyper;
pub mod optimality;
pub mod properties;
pub mod repair;

pub use clean::{clean_with_total_priority, CleaningError};
pub use cqa::{preferred_consistent_answer, CqaOutcome};
pub use engine::PdqiEngine;
pub use hyper::HyperRepairContext;
pub use families::{
    AllRepairs, CommonOptimal, FamilyKind, GlobalOptimal, LocalOptimal, RepairFamily,
    SemiGlobalOptimal,
};
pub use optimality::{
    is_globally_optimal, is_locally_optimal, is_semi_globally_optimal, preferred_over,
};
pub use repair::RepairContext;
