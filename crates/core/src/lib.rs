//! Preference-driven querying of inconsistent relational databases.
//!
//! This crate is the heart of the `pdqi` workspace: it implements the framework of
//! S. Staworko, J. Chomicki and J. Marcinkowski, *Preference-Driven Querying of
//! Inconsistent Relational Databases* (EDBT 2006 Workshops):
//!
//! * **repairs** of an inconsistent instance w.r.t. functional dependencies — the maximal
//!   consistent subsets, represented through the conflict graph ([`repair`]),
//! * the paper's three **optimality notions** — local, semi-global and global — plus the
//!   `≪` lifting of a priority to repairs ([`optimality`]),
//! * the four **families of preferred repairs** `Rep ⊇ L-Rep ⊇ S-Rep ⊇ G-Rep ⊇ C-Rep`
//!   with membership tests (X-repair checking) and enumeration ([`families`]),
//! * **Algorithm 1**, the winnow-driven cleaning procedure whose possible outputs are
//!   exactly the common repairs C-Rep ([`clean`]),
//! * executable checks of the desirable **properties P1–P4** and of the paper's
//!   propositions and theorems ([`properties`]),
//! * **preferred consistent query answers** for every family, with both the generic
//!   enumeration-based procedure and the polynomial-time algorithm for quantifier-free
//!   queries under the plain repair family ([`cqa`], [`cqa_ground`]),
//! * the **prepared-query engine**: [`EngineBuilder`] / [`EngineSnapshot`] /
//!   [`PreparedQuery`], the primary API ([`snapshot`], [`prepared`]),
//! * the **serving core**: [`SnapshotRegistry`], one atomically-swappable
//!   [`Arc`](std::sync::Arc)-shared snapshot per table with generation counters, the
//!   structure SQL sessions and the `pdqi-server` network front end serve from
//!   ([`registry`]),
//! * the **incremental delta-maintenance subsystem**: a [`Mutation`] batch of row
//!   inserts/deletes derives a snapshot for the mutated instance through
//!   [`EngineSnapshot::with_mutations`] — re-partitioning only the affected conflict
//!   components and carrying over every untouched memo entry, bit-identical to a
//!   fresh build ([`delta`]),
//! * the **schema-delta subsystem**: `ALTER TABLE … ADD FD` derives a snapshot through
//!   [`EngineSnapshot::with_fd_added`] — scanning only the new FD's LHS groups for
//!   edges, re-partitioning only the components those edges touch, and sharing the
//!   whole parent (graph, memo, columnar views) when the FD adds no edge at all
//!   ([`schema_delta`]),
//! * the **continuous-query subsystem**: a [`SubscriptionManager`] observes registry
//!   generation swaps and pushes incremental [`AnswerDelta`]s to registered prepared
//!   queries — proving answers unchanged from the swap's [`ChangeScope`] (and skipping
//!   re-execution) whenever the mutation or priority revision cannot have touched the
//!   query's component footprint ([`subscribe`]).
//!
//! # Quick start
//!
//! The primary API separates the *fixed* part of the paper's setting — the database,
//! its constraints and the priority, frozen into an immutable [`EngineSnapshot`] — from
//! the *repeated* part, the queries, which are parsed and classified once into
//! [`PreparedQuery`] values and executed many times. Work done per snapshot (conflict
//! graph, connected components, per-component preferred repairs, answers) is memoised
//! and shared, so repeated and overlapping executions are cheap.
//!
//! ```
//! use std::sync::Arc;
//! use pdqi_relation::{RelationSchema, RelationInstance, Value, ValueType};
//! use pdqi_constraints::FdSet;
//! use pdqi_core::{EngineBuilder, FamilyKind, PreparedQuery, Semantics};
//!
//! // The integrated manager instance of the paper's Example 1.
//! let schema = Arc::new(RelationSchema::from_pairs("Mgr", &[
//!     ("Name", ValueType::Name), ("Dept", ValueType::Name),
//!     ("Salary", ValueType::Int), ("Reports", ValueType::Int),
//! ]).unwrap());
//! let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
//!     vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
//!     vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
//!     vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
//!     vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
//! ]).unwrap();
//! let fds = FdSet::parse(Arc::clone(&schema),
//!     &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"]).unwrap();
//!
//! // Fixed once: the snapshot. Conflict graph and components are computed here.
//! let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
//! assert_eq!(snapshot.count_repairs(), 3);         // Example 2
//!
//! // Prepared once, executed as often as needed.
//! let q1 = PreparedQuery::parse(
//!     "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2",
//! ).unwrap();
//! let answer = q1.consistent_answer(&snapshot, FamilyKind::Rep).unwrap();
//! assert!(!answer.certainly_true);                 // true is NOT a consistent answer to Q1
//!
//! // Open queries stream their answers.
//! let managers = PreparedQuery::parse("EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
//! let certain = managers.execute(&snapshot, FamilyKind::Rep, Semantics::Certain).unwrap();
//! assert_eq!(certain.count(), 2);                  // Mary and John manage in every repair
//!
//! // Preferences revise cheaply: only affected components are recomputed.
//! let priority = snapshot.context().priority_from_pairs(&[]).unwrap();
//! let revised = snapshot.with_priority(priority).unwrap();
//! assert_eq!(revised.count_repairs(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clean;
pub mod cqa;
pub mod cqa_ground;
pub mod delta;
pub mod families;
pub mod hyper;
pub mod optimality;
pub mod parallel;
pub mod prepared;
pub mod properties;
pub mod registry;
pub mod repair;
pub mod schema_delta;
pub mod shard_plan;
pub mod snapshot;
pub mod subscribe;
pub mod window;

pub use clean::{clean_with_total_priority, CleaningError};
pub use cqa::{preferred_consistent_answer, CqaOutcome};
pub use delta::{Mutation, MutationError, MutationReport};
pub use families::{
    AllRepairs, CommonOptimal, FamilyKind, GlobalOptimal, LocalOptimal, RepairFamily,
    SemiGlobalOptimal,
};
pub use hyper::HyperRepairContext;
pub use optimality::{
    is_globally_optimal, is_locally_optimal, is_semi_globally_optimal, preferred_over,
};
pub use parallel::{BatchExecutor, BatchRequest, BatchResponse, Parallelism, MAX_THREADS};
pub use pdqi_query::{force_naive_plan, naive_plan_forced, plan_stats, PhysicalPlan, PlanStats};
pub use prepared::{
    AnswerSet, ChunkTuner, ChunkTunerStats, ClosedProfile, PreparedQuery, Semantics,
};
pub use registry::{
    ChangeScope, RegistryStats, ReviseError, SnapshotLease, SnapshotRegistry, SwapEvent,
    SwapObserver, TableStats,
};
pub use repair::RepairContext;
pub use schema_delta::{FdDeltaError, FdDeltaReport};
pub use shard_plan::{RouteSpec, ShardPlan, ShardPlanError};
pub use snapshot::{BuildError, EngineBuilder, EngineSnapshot, MemoStats, Shard};
pub use subscribe::{
    AnswerDelta, SubscribeError, SubscribeOptions, SubscribeStats, Subscribed, SubscriptionEvent,
    SubscriptionInfo, SubscriptionManager,
};
pub use window::{
    ReportStrategy, WindowStats, WriteCoalescer, WriteError, WriteFrame, WriteOutcome, WriteStats,
    MAX_COALESCED_BATCH,
};
