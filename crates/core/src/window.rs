//! Windowed continuous queries: report strategies over the subscription subsystem
//! plus a write-coalescing front for the registry's revision locks.
//!
//! [`SubscriptionManager`](crate::SubscriptionManager) pushes one
//! [`AnswerDelta`] per generation swap. That is the right default,
//! but under a write burst k row-level mutations cost k delta derivations, k swaps and
//! k pushes, and a subscriber has no way to ask for "at most one update per time
//! slice" or "the answer as of the last N generations". This module adds both halves:
//!
//! * **Report strategies** ([`ReportStrategy`]): every subscription carries one.
//!   - [`ReportStrategy::PerGeneration`] — today's behaviour and the default: one
//!     delta per answer-changing swap.
//!   - [`ReportStrategy::Coalesced`] — time-sliced coalescing: answer-changing swaps
//!     fold into one *pending* net delta, flushed when `max_batch` swaps folded or
//!     (checked at drain time — observers run under the writer lock and cannot wait
//!     on timers) `max_delay` elapsed since the first fold. The flushed delta is the
//!     two-pointer diff of the last *reported* answer against the current one, so the
//!     added/removed sets of intermediate churn cancel; a burst that returns to the
//!     reported answer flushes nothing at all.
//!   - [`ReportStrategy::WindowedLastN`] — the reported answer is the union of the
//!     answers at the last N generations of the watched table. Every generation
//!     slides the window: the new answer enters, the oldest expires, and the pushed
//!     delta carries the expiry (rows only the expired generation still supported
//!     disappear N swaps after a deletion, not immediately).
//!
//!   All three strategies report deltas against the same monotone view, so folding
//!   any strategy's stream reproduces, at quiescence (for windows: once the last N
//!   generations share one answer), exactly the per-generation fold and a fresh
//!   execution — the bit-identity pin `tests/window.rs` holds at every parallelism.
//!
//! * **Write pipelining** ([`WriteCoalescer`]): a bounded coalescing queue in front
//!   of each table's revision lock. Concurrent `MUTATE`/`INSERT`/`DELETE` frames
//!   enqueue a [`WriteFrame`] and one caller becomes the batch leader; the leader
//!   drains up to [`MAX_COALESCED_BATCH`] queued frames *after* acquiring the
//!   revision lock (inside [`SnapshotRegistry::revise_scoped`]'s build closure, so
//!   every frame queued while the lock was busy folds in), nets them into one
//!   [`Mutation`], runs one `with_mutations` derivation, and publishes one swap —
//!   one delta derivation and one push for the whole burst. The combined
//!   [`ChangeScope::Mutation`] names exactly the netted relations, so skip proofs
//!   keep working; per-frame `inserted`/`deleted` reports are reconstructed by
//!   replaying the frames over the base relation's row set under the same set
//!   semantics the engine applies.
//!
//! ```text
//!        MUTATE ──┐                       ┌────────────────────────────────┐
//!        INSERT ──┼─► pending frames ──►  │ leader: drain → net Mutation   │
//!        DELETE ──┘   (per table,         │ → one with_mutations → 1 swap  │
//!                      bounded)           └────────────┬───────────────────┘
//!                                                      ▼
//!                                       subscribers: one AnswerDelta
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, TryLockError};
use std::time::{Duration, Instant};

use pdqi_relation::Value;

use crate::delta::{Mutation, MutationError};
use crate::parallel::Parallelism;
use crate::registry::{ChangeScope, ReviseError, SnapshotRegistry};
use crate::snapshot::EngineSnapshot;
use crate::subscribe::{diff_rows, AnswerDelta};

/// Most frames one [`WriteCoalescer`] batch folds into a single derivation. Frames
/// beyond the bound wait for the next batch — the queue is bounded, a runaway burst
/// cannot grow one derivation (or its combined report replay) without limit.
pub const MAX_COALESCED_BATCH: usize = 128;

/// How a subscription turns answer-changing swaps into pushed deltas. See the
/// [module docs](self) for the semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportStrategy {
    /// One delta per answer-changing swap (the default; PR 6's behaviour).
    #[default]
    PerGeneration,
    /// Fold answer-changing swaps into one pending net delta, flushed after
    /// `max_batch` folds or once `max_delay` elapsed since the first (checked when
    /// the subscriber drains).
    Coalesced {
        /// Flush the pending delta once this much time passed since its first fold.
        max_delay: Duration,
        /// Flush the pending delta once this many swaps folded into it (≥ 1).
        max_batch: u64,
    },
    /// Report the union of the answers at the last `n` generations; expiry deltas
    /// drop rows as the generations that supported them slide out.
    WindowedLastN {
        /// Window width in generations (≥ 1; `1` behaves like per-generation).
        n: usize,
    },
}

impl ReportStrategy {
    /// Coalescing that flushes every `n` answer-changing swaps (`SUBSCRIBE … EVERY n`):
    /// count-sliced, no time bound.
    pub fn every(n: u64) -> Self {
        ReportStrategy::Coalesced { max_delay: Duration::MAX, max_batch: n.max(1) }
    }

    /// Coalescing that flushes once `max_delay` passed since the first undelivered
    /// change (`SUBSCRIBE … COALESCE ms`): time-sliced, no count bound.
    pub fn coalesce(max_delay: Duration) -> Self {
        ReportStrategy::Coalesced { max_delay, max_batch: u64::MAX }
    }

    /// A last-`n`-generations window (`SUBSCRIBE … WINDOW n`).
    pub fn window(n: usize) -> Self {
        ReportStrategy::WindowedLastN { n: n.max(1) }
    }

    /// The strategy with degenerate bounds clamped (zero batch/window → 1).
    pub fn normalised(self) -> Self {
        match self {
            ReportStrategy::Coalesced { max_delay, max_batch } => {
                ReportStrategy::Coalesced { max_delay, max_batch: max_batch.max(1) }
            }
            ReportStrategy::WindowedLastN { n } => ReportStrategy::WindowedLastN { n: n.max(1) },
            ReportStrategy::PerGeneration => ReportStrategy::PerGeneration,
        }
    }
}

impl fmt::Display for ReportStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportStrategy::PerGeneration => f.write_str("per-generation"),
            ReportStrategy::Coalesced { max_delay, max_batch } => {
                if *max_batch == u64::MAX {
                    write!(f, "coalesce {}ms", max_delay.as_millis())
                } else if *max_delay == Duration::MAX {
                    write!(f, "every {max_batch}")
                } else {
                    write!(f, "coalesce {}ms/{}", max_delay.as_millis(), max_batch)
                }
            }
            ReportStrategy::WindowedLastN { n } => write!(f, "window {n}"),
        }
    }
}

/// Report-strategy counters, surfaced next to
/// [`SubscribeStats`](crate::SubscribeStats) by
/// [`SubscriptionManager::window_stats`](crate::SubscriptionManager::window_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Live subscriptions using [`ReportStrategy::Coalesced`].
    pub coalesced_subscribers: usize,
    /// Live subscriptions using [`ReportStrategy::WindowedLastN`].
    pub windowed_subscribers: usize,
    /// Answer-changing swaps folded into pending coalesced deltas instead of being
    /// pushed individually.
    pub folded_swaps: u64,
    /// Pending coalesced deltas flushed with a non-empty net diff (fully cancelled
    /// churn flushes nothing and counts nothing).
    pub coalesced_flushes: u64,
    /// Windowed deltas that dropped rows (a supporting generation slid out, or a
    /// deletion outlived the window).
    pub expiry_deltas: u64,
    /// Pending coalesced deltas dropped because a lagged resync replaced them with
    /// the full answer (they must never replay across a resync).
    pub pending_dropped: u64,
}

/// The manager-level atomics behind [`WindowStats`] (shared by every subscription's
/// [`ReportState`] so counters survive unsubscribes).
#[derive(Debug, Default)]
pub(crate) struct WindowCounters {
    pub(crate) folded_swaps: AtomicU64,
    pub(crate) coalesced_flushes: AtomicU64,
    pub(crate) expiry_deltas: AtomicU64,
    pub(crate) pending_dropped: AtomicU64,
}

/// Per-subscription strategy state: what the subscriber has been told (`reported`),
/// what is pending, and — for windows — the last N per-generation answers.
#[derive(Debug)]
pub(crate) struct ReportState {
    strategy: ReportStrategy,
    /// The answer implied by every event pushed so far: folding the subscriber's
    /// drained stream onto the initial answer yields exactly this row set.
    reported: Vec<Vec<Value>>,
    /// When the first undelivered change folded into the pending coalesced delta.
    pending_since: Option<Instant>,
    /// Answer-changing swaps folded since the last flush.
    pending_swaps: u64,
    /// Last-N per-generation answers, oldest first (windowed strategies only).
    window: VecDeque<(u64, Vec<Vec<Value>>)>,
}

impl ReportState {
    pub(crate) fn new(strategy: ReportStrategy, initial: Vec<Vec<Value>>, generation: u64) -> Self {
        let strategy = strategy.normalised();
        let mut window = VecDeque::new();
        if matches!(strategy, ReportStrategy::WindowedLastN { .. }) {
            window.push_back((generation, initial.clone()));
        }
        ReportState { strategy, reported: initial, pending_since: None, pending_swaps: 0, window }
    }

    pub(crate) fn strategy(&self) -> ReportStrategy {
        self.strategy
    }

    /// Advances the state across one swap of the watched table: `rows` is the
    /// per-generation answer at `generation`, `changed` whether it differs from the
    /// previous generation's. Returns the delta to push now, if any.
    pub(crate) fn advance(
        &mut self,
        generation: u64,
        rows: &[Vec<Value>],
        changed: bool,
        counters: &WindowCounters,
    ) -> Option<AnswerDelta> {
        match self.strategy {
            ReportStrategy::PerGeneration => {
                if !changed {
                    return None;
                }
                self.emit(generation, rows.to_vec(), counters)
            }
            ReportStrategy::Coalesced { max_batch, .. } => {
                if !changed {
                    return None;
                }
                if self.pending_since.is_none() {
                    self.pending_since = Some(Instant::now());
                }
                self.pending_swaps += 1;
                counters.folded_swaps.fetch_add(1, Ordering::Relaxed);
                if self.pending_swaps >= max_batch {
                    self.flush(generation, rows, counters)
                } else {
                    None
                }
            }
            ReportStrategy::WindowedLastN { n } => {
                // Unchanged answers still slide the window: the generation count is
                // what expires old entries, not the answer content.
                self.window.push_back((generation, rows.to_vec()));
                while self.window.len() > n {
                    self.window.pop_front();
                }
                let view = self.union();
                self.emit(generation, view, counters)
            }
        }
    }

    /// Deadline check, run when the subscriber drains: a pending coalesced delta
    /// whose `max_delay` elapsed flushes now.
    pub(crate) fn flush_due(
        &mut self,
        generation: u64,
        rows: &[Vec<Value>],
        counters: &WindowCounters,
    ) -> Option<AnswerDelta> {
        let ReportStrategy::Coalesced { max_delay, .. } = self.strategy else {
            return None;
        };
        if self.pending_since?.elapsed() < max_delay {
            return None;
        }
        self.flush(generation, rows, counters)
    }

    /// The strategy-level current answer: what a fully caught-up subscriber holds.
    pub(crate) fn view(&self, rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
        if matches!(self.strategy, ReportStrategy::WindowedLastN { .. }) {
            self.union()
        } else {
            rows.to_vec()
        }
    }

    /// Resynchronises after a lag: any pending coalesced delta is dropped (the full
    /// answer supersedes it — replaying it after the resync would corrupt the fold)
    /// and the reported answer snaps to the current view, which is returned for the
    /// `Lagged` event.
    pub(crate) fn resync(
        &mut self,
        rows: &[Vec<Value>],
        counters: &WindowCounters,
    ) -> Vec<Vec<Value>> {
        if self.pending_since.take().is_some() {
            counters.pending_dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.pending_swaps = 0;
        let view = self.view(rows);
        self.reported = view.clone();
        view
    }

    fn flush(
        &mut self,
        generation: u64,
        rows: &[Vec<Value>],
        counters: &WindowCounters,
    ) -> Option<AnswerDelta> {
        self.pending_since = None;
        self.pending_swaps = 0;
        let delta = self.emit(generation, rows.to_vec(), counters);
        if delta.is_some() {
            counters.coalesced_flushes.fetch_add(1, Ordering::Relaxed);
        }
        delta
    }

    /// Diffs the reported answer against `view` and commits `view` as reported.
    fn emit(
        &mut self,
        generation: u64,
        view: Vec<Vec<Value>>,
        counters: &WindowCounters,
    ) -> Option<AnswerDelta> {
        let (added, removed) = diff_rows(&self.reported, &view);
        self.reported = view;
        if added.is_empty() && removed.is_empty() {
            return None;
        }
        if matches!(self.strategy, ReportStrategy::WindowedLastN { .. }) && !removed.is_empty() {
            counters.expiry_deltas.fetch_add(1, Ordering::Relaxed);
        }
        Some(AnswerDelta { generation, added, removed })
    }

    /// Sorted, de-duplicated union of the window's answers.
    fn union(&self) -> Vec<Vec<Value>> {
        if self.window.len() == 1 {
            return self.window[0].1.clone();
        }
        let set: BTreeSet<&Vec<Value>> = self.window.iter().flat_map(|(_, r)| r.iter()).collect();
        set.into_iter().cloned().collect()
    }
}

/// One queued write: the typed rows of a `MUTATE`/`INSERT`/`DELETE` frame. Within a
/// frame, deletes apply before inserts (the engine's batch rule).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteFrame {
    /// Rows to insert.
    pub inserts: Vec<Vec<Value>>,
    /// Rows to delete (no-ops when absent).
    pub deletes: Vec<Vec<Value>>,
}

impl WriteFrame {
    /// A frame inserting `inserts` and deleting `deletes`.
    pub fn new(inserts: Vec<Vec<Value>>, deletes: Vec<Vec<Value>>) -> Self {
        WriteFrame { inserts, deletes }
    }
}

/// What one [`WriteFrame`] did, after its batch's single derivation swapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The generation the batch's swap published (shared by every frame of the
    /// batch).
    pub generation: u64,
    /// Rows this frame genuinely inserted (set semantics, in arrival order within
    /// the batch).
    pub inserted: usize,
    /// Rows this frame genuinely deleted.
    pub deleted: usize,
    /// How many *other* frames shared the derivation (0 = the frame paid for its
    /// own).
    pub batched_with: usize,
}

/// [`WriteCoalescer`] counters: the pipelining win, observable (`STATS` renders
/// `coalesced_writes=`/`derivations_saved=` from these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteStats {
    /// Write frames accepted into the queue.
    pub frames: u64,
    /// Derivations actually run (batches published).
    pub batches: u64,
    /// Frames that shared their derivation with at least one other frame.
    pub coalesced_writes: u64,
    /// Derivations avoided by folding: `Σ (batch size − 1)` over multi-frame
    /// batches.
    pub derivations_saved: u64,
}

/// A write that could not be applied: the batch's derivation failed. Carries the
/// underlying error's rendering (every frame of a failed batch receives the same
/// error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteError(pub String);

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WriteError {}

/// How long a follower waits on its ticket before re-checking for leadership. Purely
/// a liveness backstop: the leader notifies every ticket it completes.
const FOLLOWER_POLL: Duration = Duration::from_millis(5);

#[derive(Default)]
struct Ticket {
    slot: Mutex<Option<Result<WriteOutcome, WriteError>>>,
    ready: Condvar,
}

impl Ticket {
    fn take(&self) -> Option<Result<WriteOutcome, WriteError>> {
        self.slot.lock().expect("write ticket").take()
    }

    fn fill(&self, result: Result<WriteOutcome, WriteError>) {
        *self.slot.lock().expect("write ticket") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let guard = self.slot.lock().expect("write ticket");
        if guard.is_some() {
            return;
        }
        let _ = self.ready.wait_timeout(guard, timeout).expect("write ticket");
    }
}

struct TableQueue {
    pending: Mutex<VecDeque<(WriteFrame, Arc<Ticket>)>>,
    /// Leader election: at most one batch per table is in flight. Held across the
    /// derivation, so follower frames queue up and the next leader folds them all.
    leader: Mutex<()>,
}

/// Sentinel-capable error for the batch build closure: `Empty` marks a race (another
/// leader drained our frames first) and aborts the revision without a swap.
enum BatchBuild {
    Empty,
    Mutation(MutationError),
}

/// The bounded write-coalescing queue in front of each table's revision lock. See
/// the [module docs](self).
pub struct WriteCoalescer {
    registry: Arc<SnapshotRegistry>,
    parallelism: Parallelism,
    /// Group-commit delay: how long the batch leader waits after taking the
    /// revision lock before draining, so writes still in flight join the batch.
    hold: Duration,
    tables: Mutex<BTreeMap<String, Arc<TableQueue>>>,
    frames: AtomicU64,
    batches: AtomicU64,
    coalesced_writes: AtomicU64,
    derivations_saved: AtomicU64,
}

impl WriteCoalescer {
    /// A coalescer deriving batches over `registry` with `parallelism` workers.
    pub fn new(registry: Arc<SnapshotRegistry>, parallelism: Parallelism) -> Arc<Self> {
        Self::with_hold(registry, parallelism, Duration::ZERO)
    }

    /// Like [`WriteCoalescer::new`] with a group-commit delay: the batch leader
    /// sleeps `hold` after acquiring the revision lock and before draining, so
    /// concurrent writers whose frames are still in flight land in the same batch
    /// (cf. PostgreSQL's `commit_delay`). Every write pays up to `hold` extra
    /// latency in exchange for fewer derivations under concurrent load; the default
    /// is zero, which coalesces only what already queued while the lock was busy.
    pub fn with_hold(
        registry: Arc<SnapshotRegistry>,
        parallelism: Parallelism,
        hold: Duration,
    ) -> Arc<Self> {
        Arc::new(WriteCoalescer {
            registry,
            parallelism,
            hold,
            tables: Mutex::new(BTreeMap::new()),
            frames: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced_writes: AtomicU64::new(0),
            derivations_saved: AtomicU64::new(0),
        })
    }

    /// Applies one write frame to `table`, blocking until its batch's swap
    /// published. Uncontended frames behave exactly like
    /// [`SnapshotRegistry::apply`]; frames arriving while the revision lock is busy
    /// fold into the next batch.
    pub fn apply(&self, table: &str, frame: WriteFrame) -> Result<WriteOutcome, WriteError> {
        let mut results = self.apply_frames(table, vec![frame]);
        results.pop().expect("one result per frame")
    }

    /// Enqueues every frame at once and drives batches until all have resolved,
    /// returning per-frame outcomes in order. Uncontended, a batch of
    /// k ≤ [`MAX_COALESCED_BATCH`] frames performs exactly one derivation and one
    /// swap — the deterministic surface the burst tests and `e22_window` measure.
    pub fn apply_frames(
        &self,
        table: &str,
        frames: Vec<WriteFrame>,
    ) -> Vec<Result<WriteOutcome, WriteError>> {
        let queue = self.queue(table);
        let tickets: Vec<Arc<Ticket>> =
            (0..frames.len()).map(|_| Arc::<Ticket>::default()).collect();
        {
            let mut pending = queue.pending.lock().expect("write queue");
            for (frame, ticket) in frames.into_iter().zip(&tickets) {
                pending.push_back((frame, Arc::clone(ticket)));
            }
        }
        self.frames.fetch_add(tickets.len() as u64, Ordering::Relaxed);
        tickets
            .iter()
            .map(|ticket| loop {
                if let Some(result) = ticket.take() {
                    break result;
                }
                match queue.leader.try_lock() {
                    Ok(_leading) => {
                        // A previous leader may have served us between the check and
                        // the election; don't run an empty batch for it.
                        if let Some(result) = ticket.take() {
                            break result;
                        }
                        self.run_batch(table, &queue);
                    }
                    Err(TryLockError::WouldBlock) => ticket.wait(FOLLOWER_POLL),
                    Err(TryLockError::Poisoned(_)) => panic!("write coalescer leader poisoned"),
                }
            })
            .collect()
    }

    /// The coalescer's counters at one instant.
    pub fn stats(&self) -> WriteStats {
        WriteStats {
            frames: self.frames.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_writes: self.coalesced_writes.load(Ordering::Relaxed),
            derivations_saved: self.derivations_saved.load(Ordering::Relaxed),
        }
    }

    fn queue(&self, table: &str) -> Arc<TableQueue> {
        let mut tables = self.tables.lock().expect("write coalescer tables");
        Arc::clone(tables.entry(table.to_string()).or_insert_with(|| {
            Arc::new(TableQueue { pending: Mutex::new(VecDeque::new()), leader: Mutex::new(()) })
        }))
    }

    /// Leads one batch: drains pending frames **under the revision lock**, nets them
    /// into one mutation, derives once, and distributes per-frame outcomes. Caller
    /// holds the leader lock.
    fn run_batch(&self, table: &str, queue: &TableQueue) {
        let mut drained: Vec<(WriteFrame, Arc<Ticket>)> = Vec::new();
        let mut reports: Vec<(usize, usize)> = Vec::new();
        let outcome = self.registry.revise_scoped(table, |base| {
            if !self.hold.is_zero() {
                // Group-commit window: in-flight writers enqueue while we sleep and
                // the drain below picks them up.
                std::thread::sleep(self.hold);
            }
            {
                let mut pending = queue.pending.lock().expect("write queue");
                let take = pending.len().min(MAX_COALESCED_BATCH);
                drained.extend(pending.drain(..take));
            }
            if drained.is_empty() {
                return Err(BatchBuild::Empty);
            }
            let (net, per_frame) = Self::fold(base, table, &drained);
            reports = per_frame;
            let (snapshot, _combined) = base
                .with_mutations_reported(&net, self.parallelism)
                .map_err(BatchBuild::Mutation)?;
            Ok((snapshot, ChangeScope::Mutation { relations: net.relation_names() }))
        });
        match outcome {
            Ok(generation) => {
                let k = drained.len();
                self.batches.fetch_add(1, Ordering::Relaxed);
                if k > 1 {
                    self.coalesced_writes.fetch_add(k as u64, Ordering::Relaxed);
                    self.derivations_saved.fetch_add((k - 1) as u64, Ordering::Relaxed);
                }
                for ((_, ticket), &(inserted, deleted)) in drained.iter().zip(&reports) {
                    ticket.fill(Ok(WriteOutcome {
                        generation,
                        inserted,
                        deleted,
                        batched_with: k - 1,
                    }));
                }
            }
            // Another leader drained our candidate frames before we took the lock:
            // nothing swapped, their tickets are (being) filled elsewhere.
            Err(ReviseError::Build(BatchBuild::Empty)) => {}
            Err(error) => {
                // Render like the `ReviseError` the un-coalesced path surfaced, so
                // wire error texts are unchanged.
                let message = match error {
                    ReviseError::UnknownTable(t) => format!("registry serves no table `{t}`"),
                    ReviseError::Build(BatchBuild::Mutation(e)) => format!("revision failed: {e}"),
                    ReviseError::Build(BatchBuild::Empty) => unreachable!("handled above"),
                };
                if drained.is_empty() {
                    // The registry rejected the table *before* the build closure —
                    // and its drain — ever ran. Take the pending frames now so their
                    // callers receive the error instead of re-electing a leader over
                    // an undrained queue forever.
                    let mut pending = queue.pending.lock().expect("write queue");
                    let take = pending.len().min(MAX_COALESCED_BATCH);
                    drained.extend(pending.drain(..take));
                }
                for (_, ticket) in &drained {
                    ticket.fill(Err(WriteError(message.clone())));
                }
            }
        }
    }

    /// Nets `drained` into one mutation and reconstructs per-frame reports.
    ///
    /// `present` replays every frame, in arrival order, over the base relation's row
    /// set with the engine's set semantics (insert of a stored row and delete of an
    /// absent row are no-ops; within a frame deletes go first). The net mutation is
    /// the symmetric difference of the start and end sets, so fully cancelled churn
    /// (insert then delete, or delete then re-insert) vanishes from the derivation —
    /// value-identical to applying the frames one by one.
    fn fold(
        base: &EngineSnapshot,
        table: &str,
        drained: &[(WriteFrame, Arc<Ticket>)],
    ) -> (Mutation, Vec<(usize, usize)>) {
        let original: BTreeSet<Vec<Value>> = base
            .context_of(table)
            .map(|ctx| ctx.instance().iter().map(|(_, t)| t.values().to_vec()).collect())
            .unwrap_or_default();
        let mut present = original.clone();
        let mut reports = Vec::with_capacity(drained.len());
        for (frame, _) in drained {
            let mut inserted = 0usize;
            let mut deleted = 0usize;
            for row in &frame.deletes {
                if present.remove(row) {
                    deleted += 1;
                }
            }
            for row in &frame.inserts {
                if present.insert(row.clone()) {
                    inserted += 1;
                }
            }
            reports.push((inserted, deleted));
        }
        let deletes: Vec<Vec<Value>> = original.difference(&present).cloned().collect();
        let inserts: Vec<Vec<Value>> = present.difference(&original).cloned().collect();
        (Mutation::new().delete_rows(table, deletes).insert_rows(table, inserts), reports)
    }
}

impl fmt::Debug for WriteCoalescer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteCoalescer").field("stats", &self.stats()).finish()
    }
}
