//! Repairs and the repair context.
//!
//! Definition 1 of the paper: given an instance `r` and a set of functional dependencies
//! `F`, a *repair* is a maximal subset of `r` consistent with `F`. Repairs are exactly
//! the maximal independent sets of the conflict graph, which is how everything here
//! represents and manipulates them (a repair is a [`TupleSet`] against a fixed instance).
//!
//! [`RepairContext`] bundles the instance, its constraints and the conflict graph; it is
//! the shared input of the repair families, the cleaning algorithm and the CQA engines.

use std::ops::ControlFlow;
use std::sync::{Arc, OnceLock};

use pdqi_constraints::{ConflictGraph, FdSet};
use pdqi_priority::Priority;
use pdqi_relation::{ColumnarView, RelationInstance, TupleSet};
use pdqi_solve::GraphMisEnumerator;

/// An inconsistent (or consistent) instance together with its constraints and conflict
/// graph — the fixed part of every repair-related computation.
#[derive(Debug, Clone)]
pub struct RepairContext {
    instance: RelationInstance,
    fds: FdSet,
    graph: Arc<ConflictGraph>,
    columns: OnceLock<Arc<ColumnarView>>,
}

impl RepairContext {
    /// Builds the context (and the conflict graph) for `instance` under `fds`.
    pub fn new(instance: RelationInstance, fds: FdSet) -> Self {
        let graph = Arc::new(ConflictGraph::build(&instance, &fds));
        RepairContext { instance, fds, graph, columns: OnceLock::new() }
    }

    /// A context over a conflict graph computed elsewhere (the sharded snapshot builder
    /// fans per-FD edge scans across workers and merges them before assembling the
    /// context). The graph must be exactly `ConflictGraph::build(&instance, &fds)`.
    pub(crate) fn with_graph(
        instance: RelationInstance,
        fds: FdSet,
        graph: Arc<ConflictGraph>,
    ) -> Self {
        debug_assert_eq!(graph.vertex_count(), instance.len());
        RepairContext { instance, fds, graph, columns: OnceLock::new() }
    }

    /// A context sharing another context's instance and (already-built) columnar view
    /// but with a different FD set and conflict graph — used by schema deltas
    /// (`EngineSnapshot::with_fd_added`) so the columnar transpose survives derivations
    /// whose instance is unchanged.
    pub(crate) fn with_columns_from(
        parent: &RepairContext,
        fds: FdSet,
        graph: Arc<ConflictGraph>,
    ) -> Self {
        debug_assert_eq!(graph.vertex_count(), parent.instance.len());
        RepairContext {
            instance: parent.instance.clone(),
            fds,
            graph,
            columns: parent.columns.clone(),
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &RelationInstance {
        &self.instance
    }

    /// The functional dependencies.
    pub fn fds(&self) -> &FdSet {
        &self.fds
    }

    /// The conflict graph.
    pub fn graph(&self) -> &Arc<ConflictGraph> {
        &self.graph
    }

    /// The columnar transpose of the instance, built lazily on first use and shared by
    /// every clone made after that point (snapshots clone their entries per derivation,
    /// so the transpose is paid once per distinct instance, not once per query).
    pub fn columns(&self) -> &Arc<ColumnarView> {
        self.columns.get_or_init(|| Arc::new(ColumnarView::build(&self.instance)))
    }

    /// Whether the instance is consistent (no conflict at all).
    pub fn is_consistent(&self) -> bool {
        self.graph.edge_count() == 0
    }

    /// Repair checking for the plain repair family: is `candidate` a maximal consistent
    /// subset of the instance? (First row of Fig. 5 — PTIME.)
    pub fn is_repair(&self, candidate: &TupleSet) -> bool {
        candidate.is_subset_of(&self.instance.all_ids())
            && self.graph.is_maximal_independent(candidate)
    }

    /// Visits every repair exactly once; the callback may stop early. Returns `true` if
    /// the enumeration ran to completion.
    pub fn for_each_repair<F>(&self, callback: F) -> bool
    where
        F: FnMut(&TupleSet) -> ControlFlow<()>,
    {
        GraphMisEnumerator::new(&self.graph).for_each(callback)
    }

    /// Collects up to `limit` repairs.
    pub fn repairs(&self, limit: usize) -> Vec<TupleSet> {
        GraphMisEnumerator::new(&self.graph).collect(limit)
    }

    /// The number of repairs (product of per-component counts, saturating at `u128::MAX`).
    pub fn count_repairs(&self) -> u128 {
        GraphMisEnumerator::new(&self.graph).count()
    }

    /// One repair, produced greedily.
    pub fn some_repair(&self) -> TupleSet {
        GraphMisEnumerator::new(&self.graph).first()
    }

    /// The empty priority over this context's conflict graph.
    pub fn empty_priority(&self) -> Priority {
        Priority::empty(Arc::clone(&self.graph))
    }

    /// A priority built from explicit `winner ≻ loser` pairs over this context's graph.
    pub fn priority_from_pairs(
        &self,
        pairs: &[(pdqi_relation::TupleId, pdqi_relation::TupleId)],
    ) -> Result<Priority, pdqi_priority::PriorityError> {
        Priority::from_pairs(Arc::clone(&self.graph), pairs)
    }

    /// Materialises the sub-instance corresponding to a repair (fresh tuple ids).
    pub fn materialise(&self, repair: &TupleSet) -> RelationInstance {
        self.instance.restrict(repair)
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    //! Shared test fixtures mirroring the paper's running examples.

    use super::*;
    use pdqi_relation::{RelationSchema, TupleId, Value, ValueType};

    /// Example 1: the integrated `Mgr` instance with its two key dependencies.
    /// Tuple ids: 0 = (Mary,R&D,40,3), 1 = (John,R&D,10,2), 2 = (Mary,IT,20,1),
    /// 3 = (John,PR,30,4).
    pub fn example1() -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
                vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
                vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
            ],
        )
        .unwrap();
        let fds =
            FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
                .unwrap();
        RepairContext::new(instance, fds)
    }

    /// Example 7: `R(A,B)` with key `A → B` and three tuples sharing the key value.
    /// Tuple ids: 0 = ta = (1,1), 1 = tb = (1,2), 2 = tc = (1,3).
    pub fn example7() -> (RepairContext, Priority) {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::int(1), Value::int(1)],
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(1), Value::int(3)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        let ctx = RepairContext::new(instance, fds);
        let priority =
            ctx.priority_from_pairs(&[(TupleId(0), TupleId(2)), (TupleId(0), TupleId(1))]).unwrap();
        (ctx, priority)
    }

    /// Example 8: `R(A,B,C)` with `A → B`; ta = (1,1,1), tb = (1,1,2), tc = (1,2,3) and
    /// the total priority tc ≻ ta, tc ≻ tb. Ids: 0 = ta, 1 = tb, 2 = tc.
    pub fn example8() -> (RepairContext, Priority) {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::int(1), Value::int(1), Value::int(1)],
                vec![Value::int(1), Value::int(1), Value::int(2)],
                vec![Value::int(1), Value::int(2), Value::int(3)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        let ctx = RepairContext::new(instance, fds);
        let priority =
            ctx.priority_from_pairs(&[(TupleId(2), TupleId(0)), (TupleId(2), TupleId(1))]).unwrap();
        (ctx, priority)
    }

    /// Example 9: `R(A,B,C,D)` with `A → B` and `C → D`; the five tuples form a conflict
    /// path ta – tb – tc – td – te with the total priority ta ≻ tb ≻ tc ≻ td ≻ te.
    /// Ids: 0 = ta, 1 = tb, 2 = tc, 3 = td, 4 = te.
    pub fn example9() -> (RepairContext, Priority) {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[
                    ("A", ValueType::Int),
                    ("B", ValueType::Int),
                    ("C", ValueType::Int),
                    ("D", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::int(1), Value::int(1), Value::int(0), Value::int(0)],
                vec![Value::int(1), Value::int(2), Value::int(1), Value::int(1)],
                vec![Value::int(2), Value::int(1), Value::int(1), Value::int(2)],
                vec![Value::int(2), Value::int(2), Value::int(2), Value::int(1)],
                vec![Value::int(0), Value::int(0), Value::int(2), Value::int(2)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B", "C -> D"]).unwrap();
        let ctx = RepairContext::new(instance, fds);
        let priority = ctx
            .priority_from_pairs(&[
                (TupleId(0), TupleId(1)),
                (TupleId(1), TupleId(2)),
                (TupleId(2), TupleId(3)),
                (TupleId(3), TupleId(4)),
            ])
            .unwrap();
        (ctx, priority)
    }

    /// The *intended* Example 9 scenario (see the erratum note in `EXPERIMENTS.md`).
    ///
    /// The literal tuple data printed in the paper yields a 5-vertex conflict *path*,
    /// which has four repairs and — under the stated total priority — a single
    /// semi-globally optimal repair, so it cannot demonstrate the non-categoricity of
    /// `S-Rep` the example is meant to show. This fixture reconstructs the intended
    /// scenario described in Section 3.3: mutual conflicts generated by several
    /// functional dependencies with the user's priority covering only some of them.
    /// Conflict edges: the path ta–tb–tc–td–te plus the chords ta–td and tb–te; the
    /// priority orients only the path edges (ta ≻ tb ≻ tc ≻ td ≻ te) and is therefore
    /// *not* total. The repairs are exactly r1 = {ta,tc,te} and r2 = {tb,td}; both are
    /// semi-globally optimal, and only r1 is globally optimal.
    /// Ids: 0 = ta, 1 = tb, 2 = tc, 3 = td, 4 = te.
    pub fn example9_intended() -> (RepairContext, Priority) {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[
                    ("A1", ValueType::Int),
                    ("B1", ValueType::Int),
                    ("A2", ValueType::Int),
                    ("B2", ValueType::Int),
                    ("A3", ValueType::Int),
                    ("B3", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let row = |v: [i64; 6]| v.iter().map(|&n| Value::int(n)).collect::<Vec<_>>();
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                row([1, 1, 10, 0, 5, 1]), // ta
                row([1, 2, 11, 1, 6, 1]), // tb
                row([2, 1, 11, 2, 7, 0]), // tc
                row([2, 2, 12, 1, 5, 2]), // td
                row([3, 0, 12, 2, 6, 2]), // te
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A1 -> B1", "A2 -> B2", "A3 -> B3"]).unwrap();
        let ctx = RepairContext::new(instance, fds);
        let priority = ctx
            .priority_from_pairs(&[
                (TupleId(0), TupleId(1)),
                (TupleId(1), TupleId(2)),
                (TupleId(2), TupleId(3)),
                (TupleId(3), TupleId(4)),
            ])
            .unwrap();
        (ctx, priority)
    }

    /// Example 4: the instance `r_n` with `2ⁿ` repairs.
    pub fn example4(n: i64) -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let mut rows = Vec::new();
        for i in 0..n {
            rows.push(vec![Value::int(i), Value::int(0)]);
            rows.push(vec![Value::int(i), Value::int(1)]);
        }
        let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        RepairContext::new(instance, fds)
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;
    use pdqi_relation::TupleId;

    #[test]
    fn example_2_repairs_are_recognised_and_enumerated() {
        let ctx = example1();
        assert!(!ctx.is_consistent());
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(3)]);
        let r2 = TupleSet::from_ids([TupleId(1), TupleId(2)]);
        let r3 = TupleSet::from_ids([TupleId(2), TupleId(3)]);
        for repair in [&r1, &r2, &r3] {
            assert!(ctx.is_repair(repair));
        }
        // Non-maximal and inconsistent subsets are rejected.
        assert!(!ctx.is_repair(&TupleSet::from_ids([TupleId(2)])));
        assert!(!ctx.is_repair(&TupleSet::from_ids([TupleId(0), TupleId(1)])));
        // Sets mentioning unknown tuples are rejected.
        assert!(!ctx.is_repair(&TupleSet::from_ids([TupleId(2), TupleId(3), TupleId(9)])));
        assert_eq!(ctx.count_repairs(), 3);
        let all = ctx.repairs(10);
        assert_eq!(all.len(), 3);
        assert!(all.contains(&r1) && all.contains(&r2) && all.contains(&r3));
        assert!(ctx.is_repair(&ctx.some_repair()));
    }

    #[test]
    fn consistent_relations_have_a_single_repair() {
        let ctx = example1();
        let consistent = ctx.materialise(&TupleSet::from_ids([TupleId(2), TupleId(3)]));
        let sub_ctx = RepairContext::new(consistent, ctx.fds().clone());
        assert!(sub_ctx.is_consistent());
        assert_eq!(sub_ctx.count_repairs(), 1);
        assert_eq!(sub_ctx.repairs(10)[0], sub_ctx.instance().all_ids());
    }

    #[test]
    fn example_4_repair_counts() {
        for n in [0i64, 1, 4, 10] {
            let ctx = example4(n);
            assert_eq!(ctx.count_repairs(), 1u128 << n);
        }
    }

    #[test]
    fn early_termination_of_repair_enumeration() {
        let ctx = example4(12);
        let mut seen = 0;
        let completed = ctx.for_each_repair(|_| {
            seen += 1;
            if seen >= 100 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(!completed);
        assert_eq!(seen, 100);
    }

    #[test]
    fn materialised_repairs_are_consistent_instances() {
        let ctx = example1();
        for repair in ctx.repairs(10) {
            let materialised = ctx.materialise(&repair);
            assert!(pdqi_constraints::is_consistent(&materialised, ctx.fds()));
            assert_eq!(materialised.len(), repair.len());
        }
    }
}
