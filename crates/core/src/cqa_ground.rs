//! Polynomial-time consistent query answering for quantifier-free queries under `Rep`.
//!
//! The first row of the paper's Fig. 5 (quoted from \[6, 7\]) states that consistent
//! answers to *{∀,∃}-free* queries — ground Boolean combinations of atoms and
//! comparisons — can be computed in polynomial time in the size of the database, without
//! enumerating repairs. This module implements that algorithm for the single-relation,
//! functional-dependency setting of the paper:
//!
//! 1. `true` is the consistent answer to `Q` iff **no repair satisfies `¬Q`**;
//! 2. `¬Q` is brought into negation normal form and then disjunctive normal form (the
//!    query is fixed, so this blow-up does not depend on the data);
//! 3. a disjunct is a conjunction of ground literals: *positive* tuples that must belong
//!    to the repair, *negative* tuples that must not, and comparisons that are decided
//!    immediately;
//! 4. a repair satisfying the disjunct exists iff the positive tuples form an independent
//!    set and every negative tuple (that exists in the instance and is not forced in)
//!    can be assigned a *blocker* — a conflicting tuple that is itself compatible with
//!    the positive tuples and the other blockers. The number of negative literals is
//!    bounded by the query, so the search over blocker choices is polynomial in the data.

use std::fmt;

use pdqi_query::ast::{Formula, Term};
use pdqi_query::classify::is_quantifier_free;
use pdqi_query::normalize::to_nnf;
use pdqi_query::QueryError;
use pdqi_relation::{TupleId, TupleSet, Value};

use crate::repair::RepairContext;

/// Errors specific to the ground-query algorithm (on top of ordinary query errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundCqaError {
    /// The query is not ground (it contains variables or quantifiers).
    NotGround,
    /// A query-analysis or evaluation error.
    Query(QueryError),
}

impl fmt::Display for GroundCqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundCqaError::NotGround => f.write_str(
                "the polynomial algorithm requires a ground (quantifier-free, variable-free) query",
            ),
            GroundCqaError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GroundCqaError {}

impl From<QueryError> for GroundCqaError {
    fn from(e: QueryError) -> Self {
        GroundCqaError::Query(e)
    }
}

/// Whether `true` is the consistent answer to the ground query `query` under the plain
/// repair family, computed in polynomial time (no repair enumeration).
pub fn ground_consistent_answer(
    ctx: &RepairContext,
    query: &Formula,
) -> Result<bool, GroundCqaError> {
    let negated = Formula::Not(Box::new(query.clone()));
    Ok(!exists_repair_satisfying_ground(ctx, &negated)?)
}

/// Whether some repair satisfies the ground query (the dual building block; `false` is
/// the consistent answer to `Q` iff no repair satisfies `Q`).
pub fn exists_repair_satisfying_ground(
    ctx: &RepairContext,
    query: &Formula,
) -> Result<bool, GroundCqaError> {
    if !is_quantifier_free(query) || !query.free_vars().is_empty() || !query.bound_vars().is_empty()
    {
        return Err(GroundCqaError::NotGround);
    }
    let nnf = to_nnf(query);
    let disjuncts = to_dnf(ctx, &nnf)?;
    for disjunct in disjuncts {
        if disjunct_satisfiable(ctx, &disjunct)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// A ground literal after constant folding.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GroundLiteral {
    /// The repair must contain this tuple of the instance.
    MustContain(TupleId),
    /// The repair must not contain this tuple of the instance.
    MustExclude(TupleId),
}

/// A conjunction of ground literals (comparisons and atoms over absent tuples have
/// already been folded away); `None` marks an unsatisfiable disjunct.
type Disjunct = Vec<GroundLiteral>;

fn to_dnf(ctx: &RepairContext, formula: &Formula) -> Result<Vec<Disjunct>, GroundCqaError> {
    match formula {
        Formula::True => Ok(vec![vec![]]),
        Formula::False => Ok(vec![]),
        Formula::Comparison(cmp) => {
            let left = constant_of(&cmp.left)?;
            let right = constant_of(&cmp.right)?;
            let holds = cmp.op.eval(&left, &right).map_err(QueryError::from)?;
            Ok(if holds { vec![vec![]] } else { vec![] })
        }
        Formula::Atom(atom) => {
            let id = resolve_atom(ctx, atom)?;
            Ok(match id {
                // The tuple is not in the instance, so no repair (a subset) contains it.
                None => vec![],
                Some(id) => vec![vec![GroundLiteral::MustContain(id)]],
            })
        }
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Atom(atom) => {
                let id = resolve_atom(ctx, atom)?;
                Ok(match id {
                    None => vec![vec![]],
                    Some(id) => vec![vec![GroundLiteral::MustExclude(id)]],
                })
            }
            Formula::Comparison(cmp) => {
                let left = constant_of(&cmp.left)?;
                let right = constant_of(&cmp.right)?;
                let holds = cmp.op.eval(&left, &right).map_err(QueryError::from)?;
                Ok(if holds { vec![] } else { vec![vec![]] })
            }
            Formula::True => Ok(vec![]),
            Formula::False => Ok(vec![vec![]]),
            // `to_nnf` leaves negation only on atoms and constants.
            _ => unreachable!("negation below NNF only guards atoms and constants"),
        },
        Formula::Or(a, b) => {
            let mut disjuncts = to_dnf(ctx, a)?;
            disjuncts.extend(to_dnf(ctx, b)?);
            Ok(disjuncts)
        }
        Formula::And(a, b) => {
            let left = to_dnf(ctx, a)?;
            let right = to_dnf(ctx, b)?;
            let mut product = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut combined = l.clone();
                    combined.extend(r.iter().cloned());
                    product.push(combined);
                }
            }
            Ok(product)
        }
        Formula::Implies(..) | Formula::Exists(..) | Formula::Forall(..) => {
            unreachable!("NNF of a quantifier-free formula contains no implication or quantifier")
        }
    }
}

fn constant_of(term: &Term) -> Result<Value, GroundCqaError> {
    match term {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(_) => Err(GroundCqaError::NotGround),
    }
}

/// Resolves a ground atom to the tuple id it denotes, if the tuple exists in the
/// instance. Atoms over other relations are an error (the paper's setting has a single
/// relation).
fn resolve_atom(
    ctx: &RepairContext,
    atom: &pdqi_query::ast::Atom,
) -> Result<Option<TupleId>, GroundCqaError> {
    let schema = ctx.instance().schema();
    if atom.relation != schema.name() {
        return Err(GroundCqaError::Query(QueryError::UnknownRelation {
            relation: atom.relation.clone(),
        }));
    }
    if atom.args.len() != schema.arity() {
        return Err(GroundCqaError::Query(QueryError::ArityMismatch {
            relation: atom.relation.clone(),
            expected: schema.arity(),
            actual: atom.args.len(),
        }));
    }
    let mut values = Vec::with_capacity(atom.args.len());
    for arg in &atom.args {
        values.push(constant_of(arg)?);
    }
    let tuple = pdqi_relation::Tuple::new(values);
    Ok(ctx.instance().id_of(&tuple))
}

/// Whether some repair satisfies the conjunction of ground literals.
fn disjunct_satisfiable(
    ctx: &RepairContext,
    literals: &[GroundLiteral],
) -> Result<bool, GroundCqaError> {
    let graph = ctx.graph();
    let mut positive = TupleSet::with_capacity(graph.vertex_count());
    let mut negative = TupleSet::with_capacity(graph.vertex_count());
    for literal in literals {
        match literal {
            GroundLiteral::MustContain(id) => {
                positive.insert(*id);
            }
            GroundLiteral::MustExclude(id) => {
                negative.insert(*id);
            }
        }
    }
    // A tuple required both in and out is a contradiction.
    if !positive.is_disjoint_from(&negative) {
        return Ok(false);
    }
    // The positive tuples must be mutually consistent.
    if !graph.is_independent(&positive) {
        return Ok(false);
    }
    // Each negative tuple must end up excluded from a *maximal* independent set, i.e. it
    // needs a conflicting "blocker" inside the repair. A blocker already provided by the
    // positive tuples costs nothing; the remaining ones are chosen by backtracking over
    // the (data-sized) candidate lists — the number of negative literals is bounded by
    // the query, so this search is polynomial in the data.
    let needs_blocker: Vec<TupleId> =
        negative.iter().filter(|&n| graph.neighbors(n).is_disjoint_from(&positive)).collect();
    Ok(assign_blockers(ctx, &positive, &negative, &needs_blocker, 0))
}

fn assign_blockers(
    ctx: &RepairContext,
    chosen: &TupleSet,
    negative: &TupleSet,
    pending: &[TupleId],
    index: usize,
) -> bool {
    let graph = ctx.graph();
    if index == pending.len() {
        return true;
    }
    let target = pending[index];
    // Already blocked by a previously chosen blocker?
    if !graph.neighbors(target).is_disjoint_from(chosen) {
        return assign_blockers(ctx, chosen, negative, pending, index + 1);
    }
    for blocker in graph.neighbors(target).iter() {
        if negative.contains(blocker) {
            continue;
        }
        if !graph.neighbors(blocker).is_disjoint_from(chosen) {
            continue;
        }
        let mut extended = chosen.clone();
        extended.insert(blocker);
        if assign_blockers(ctx, &extended, negative, pending, index + 1) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqa::preferred_consistent_answer;
    use crate::families::AllRepairs;
    use crate::repair::fixtures::*;
    use pdqi_query::parse_formula;

    /// The naive (enumeration-based) consistent answer, used as ground truth.
    fn naive(ctx: &RepairContext, text: &str) -> bool {
        let query = parse_formula(text).unwrap();
        let empty = ctx.empty_priority();
        preferred_consistent_answer(ctx, &empty, &AllRepairs, &query).unwrap().certainly_true
    }

    fn fast(ctx: &RepairContext, text: &str) -> bool {
        ground_consistent_answer(ctx, &parse_formula(text).unwrap()).unwrap()
    }

    #[test]
    fn ground_atoms_over_the_example_1_instance() {
        let ctx = example1();
        // (Mary, IT, 20, 1) is in some repairs but not all: not a consistent answer.
        assert!(!fast(&ctx, "Mgr('Mary','IT',20,1)"));
        // Its negation is not a consistent answer either.
        assert!(!fast(&ctx, "NOT Mgr('Mary','IT',20,1)"));
        // A tuple that is not in the instance is certainly absent.
        assert!(fast(&ctx, "NOT Mgr('Mary','PR',99,9)"));
        assert!(!fast(&ctx, "Mgr('Mary','PR',99,9)"));
    }

    #[test]
    fn disjunctions_capture_certain_knowledge() {
        let ctx = example1();
        // Every repair contains a Mary tuple: either (Mary,R&D,40,3) or (Mary,IT,20,1).
        assert!(fast(&ctx, "Mgr('Mary','R&D',40,3) OR Mgr('Mary','IT',20,1)"));
        // Symmetrically for John.
        assert!(fast(&ctx, "Mgr('John','R&D',10,2) OR Mgr('John','PR',30,4)"));
        // But no repair contains both Mary tuples.
        assert!(fast(&ctx, "NOT (Mgr('Mary','R&D',40,3) AND Mgr('Mary','IT',20,1))"));
    }

    #[test]
    fn comparisons_are_folded() {
        let ctx = example1();
        assert!(fast(&ctx, "1 < 2"));
        assert!(!fast(&ctx, "2 < 1"));
        assert!(fast(&ctx, "Mgr('Mary','R&D',40,3) OR 1 = 1"));
        assert!(!fast(&ctx, "Mgr('Mary','R&D',40,3) AND 1 = 2"));
    }

    #[test]
    fn agrees_with_the_naive_procedure_on_a_query_battery() {
        let contexts = [example1(), example4(3), example8().0, example9().0];
        let queries = [
            "Mgr('Mary','R&D',40,3)",
            "NOT Mgr('John','R&D',10,2)",
            "Mgr('Mary','R&D',40,3) OR Mgr('Mary','IT',20,1)",
            "Mgr('Mary','R&D',40,3) -> Mgr('John','PR',30,4)",
            "NOT (Mgr('Mary','R&D',40,3) AND Mgr('John','R&D',10,2))",
            "R(0,0) OR R(0,1)",
            "R(0,0) AND R(1,0)",
            "NOT R(0,0) OR NOT R(0,1)",
            "R(1,1,1) OR R(1,1,2) OR R(1,2,3)",
            "NOT R(1,1,1) AND NOT R(1,1,2)",
            "R(1,1,0,0) OR R(1,2,1,1)",
            "NOT R(2,1,1,2) OR NOT R(2,2,2,1)",
            "TRUE",
            "FALSE",
        ];
        for ctx in &contexts {
            for query in queries {
                // Skip queries whose relation/arity does not match this context.
                let parsed = parse_formula(query).unwrap();
                let applies = parsed
                    .relations()
                    .iter()
                    .all(|r| r == ctx.instance().schema().name() && parsed.size() > 0);
                let arity_ok = !matches!(
                    ground_consistent_answer(ctx, &parsed),
                    Err(GroundCqaError::Query(_))
                );
                if !applies || !arity_ok {
                    continue;
                }
                assert_eq!(
                    fast(ctx, query),
                    naive(ctx, query),
                    "disagreement on `{query}` over {}",
                    ctx.instance().schema()
                );
            }
        }
    }

    #[test]
    fn non_ground_queries_are_rejected() {
        let ctx = example1();
        let open = parse_formula("Mgr(x,'R&D',40,3)").unwrap();
        assert!(matches!(ground_consistent_answer(&ctx, &open), Err(GroundCqaError::NotGround)));
        let quantified = parse_formula("EXISTS d,s,r . Mgr('Mary',d,s,r)").unwrap();
        assert!(matches!(
            ground_consistent_answer(&ctx, &quantified),
            Err(GroundCqaError::NotGround)
        ));
    }

    #[test]
    fn unknown_relations_and_arity_mismatches_are_reported() {
        let ctx = example1();
        assert!(matches!(
            ground_consistent_answer(&ctx, &parse_formula("Nope(1)").unwrap()),
            Err(GroundCqaError::Query(QueryError::UnknownRelation { .. }))
        ));
        assert!(matches!(
            ground_consistent_answer(&ctx, &parse_formula("Mgr('Mary',1)").unwrap()),
            Err(GroundCqaError::Query(QueryError::ArityMismatch { .. }))
        ));
    }

    #[test]
    fn blocker_interaction_is_handled() {
        // Two negative literals whose only blockers conflict with each other: no repair
        // excludes both. Conflict graph: n1 – b – n2 (b is the only blocker for both...),
        // here we build it so that n1's blockers are {b1}, n2's blockers are {b2} and
        // b1 conflicts with b2: excluding both n1 and n2 is impossible.
        use pdqi_constraints::FdSet;
        use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
        use std::sync::Arc;
        // Schema R(A,B,C) with FDs A -> B and  C -> B.
        // Tuples: n1=(1,0,9), b1=(1,1,5), b2=(2,2,5), n2=(2,0,8).
        // Conflicts: n1-b1 (A=1, B differs), n2-b2 (A=2, B differs), b1-b2 (C=5, B differs).
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::int(1), Value::int(0), Value::int(9)],
                vec![Value::int(1), Value::int(1), Value::int(5)],
                vec![Value::int(2), Value::int(2), Value::int(5)],
                vec![Value::int(2), Value::int(0), Value::int(8)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B", "C -> B"]).unwrap();
        let ctx = RepairContext::new(instance, fds);
        assert_eq!(ctx.graph().edge_count(), 3);
        // "Some repair excludes both n1 and n2" must be false...
        let q = parse_formula("NOT R(1,0,9) AND NOT R(2,0,8)").unwrap();
        assert!(!exists_repair_satisfying_ground(&ctx, &q).unwrap());
        // ... so "n1 or n2 is present" is a consistent answer.
        assert!(fast(&ctx, "R(1,0,9) OR R(2,0,8)"));
        assert!(naive(&ctx, "R(1,0,9) OR R(2,0,8)"));
        // Excluding a single one of them is possible.
        assert!(
            exists_repair_satisfying_ground(&ctx, &parse_formula("NOT R(1,0,9)").unwrap()).unwrap()
        );
    }
}
