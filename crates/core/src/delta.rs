//! Incremental delta maintenance: INSERT/DELETE without snapshot rebuilds.
//!
//! The paper's machinery factorises over connected components of the conflict graph:
//! conflicts and priority edges never cross components, so a tuple change can only
//! affect the components its conflicts participate in (Staworko & Chomicki's
//! prioritized-repair framework localises repairs the same way). This module exploits
//! that to derive a snapshot for a **mutated instance** without re-doing the work an
//! unaffected component already paid for:
//!
//! ```text
//! Mutation {R: +rows/−rows}             (validated against R's schema)
//!      │
//!      ├─ id remap          survivors keep their relative order; fresh inserts append
//!      ├─ edge delta        old edges among survivors carry over (a conflict is a
//!      │                    property of the two tuples alone); only edges touching an
//!      │                    inserted tuple are scanned, via
//!      │                    `pdqi_constraints::fd_conflict_edges_touching`
//!      ├─ affected region   components containing a deleted tuple, components adjacent
//!      │                    to an inserted tuple, the inserted tuples, and any
//!      │                    conflict-free tuple they now conflict with
//!      ├─ re-partition      connected components recomputed for the region only;
//!      │                    untouched components carry over (splits and merges happen
//!      │                    inside the region by construction)
//!      └─ memo carry-over   every untouched `(component, family)` entry survives with
//!                           its tuple ids and global component id remapped; the
//!                           invalidated entries are re-enumerated eagerly across
//!                           workers, largest components first
//! ```
//!
//! [`EngineSnapshot::with_mutations`] is **bit-identical to a fresh build** of the
//! mutated instance — same tuple ids, same conflict graph, same component order and
//! global component ids, same shard plans, same preferred repairs in the same
//! enumeration order, same answers — at every degree of parallelism (pinned by the
//! `incremental` test suite). What the delta path saves is the full pairwise conflict
//! scan and, far more importantly, the per-component preferred-repair enumerations of
//! every component the mutation did not touch.
//!
//! The serving stack threads this end to end: [`crate::SnapshotRegistry::apply`]
//! publishes delta-derived snapshots under the per-table revision lock, `sql::Session`
//! applies INSERT/DELETE as deltas instead of marking tables stale, and the
//! `pdqi-server` wire protocol exposes `INSERT`/`DELETE` frames so remote clients
//! mutate without a rebuild.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use pdqi_constraints::{fd_conflict_edges_touching, ConflictGraph};
use pdqi_priority::{Priority, PriorityError};
use pdqi_relation::{RelationError, RelationInstance, TupleId, TupleSet, Value};

use crate::families::FamilyKind;
use crate::parallel::Parallelism;
use crate::repair::RepairContext;
use crate::snapshot::{EngineSnapshot, Memo, RelationEntry, SnapshotInner};

/// A batch of row insertions and deletions, grouped per relation.
///
/// Rows are given by **value** (the wire protocol and the SQL surface address tuples by
/// value; set semantics make values canonical). Within one batch, deletes are applied
/// before inserts: deleting a row and inserting an equal row in the same batch removes
/// the old tuple and appends a fresh one with a new id — exactly what rebuilding from
/// the edited row list would produce.
///
/// ```
/// use pdqi_core::Mutation;
/// use pdqi_relation::Value;
/// let mutation = Mutation::new()
///     .insert("R", vec![Value::int(7), Value::int(0)])
///     .delete("R", vec![Value::int(1), Value::int(1)]);
/// assert_eq!(mutation.relation_names(), vec!["R".to_string()]);
/// assert!(!mutation.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mutation {
    relations: BTreeMap<String, RelationMutation>,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct RelationMutation {
    deletes: Vec<Vec<Value>>,
    inserts: Vec<Vec<Value>>,
}

impl Mutation {
    /// An empty batch.
    pub fn new() -> Self {
        Mutation::default()
    }

    /// Adds one row to insert into `relation`.
    pub fn insert(mut self, relation: &str, row: Vec<Value>) -> Self {
        self.relations.entry(relation.to_string()).or_default().inserts.push(row);
        self
    }

    /// Adds one row to delete from `relation` (a no-op if the row is not stored).
    pub fn delete(mut self, relation: &str, row: Vec<Value>) -> Self {
        self.relations.entry(relation.to_string()).or_default().deletes.push(row);
        self
    }

    /// Adds several rows to insert into `relation`.
    pub fn insert_rows(self, relation: &str, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        rows.into_iter().fold(self, |m, row| m.insert(relation, row))
    }

    /// Adds several rows to delete from `relation`.
    pub fn delete_rows(self, relation: &str, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        rows.into_iter().fold(self, |m, row| m.delete(relation, row))
    }

    /// Whether the batch contains no row at all.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(|m| m.inserts.is_empty() && m.deletes.is_empty())
    }

    /// The relations the batch touches, in lexicographic order.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }
}

/// Errors raised while applying a [`Mutation`] to a snapshot.
#[derive(Debug)]
pub enum MutationError {
    /// The mutation names a relation the snapshot does not contain.
    UnknownRelation {
        /// The offending relation name.
        relation: String,
    },
    /// A row did not fit the relation's schema (wrong arity or value type).
    Relation {
        /// The relation the row was aimed at.
        relation: String,
        /// The underlying schema error.
        source: RelationError,
    },
    /// The carried-over priority could not be re-installed over the mutated graph.
    /// Surviving priority edges stay conflict edges and acyclic, so this is defensive:
    /// it cannot fire for priorities the snapshot itself produced.
    Priority {
        /// The relation whose priority failed.
        relation: String,
        /// The underlying priority error.
        source: PriorityError,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::UnknownRelation { relation } => {
                write!(f, "snapshot has no relation `{relation}`")
            }
            MutationError::Relation { relation, source } => {
                write!(f, "row does not fit `{relation}`: {source}")
            }
            MutationError::Priority { relation, source } => {
                write!(f, "priority of `{relation}` cannot be carried over: {source}")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// What applying a [`Mutation`] actually did, for observability and wire responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MutationReport {
    /// Rows genuinely inserted (duplicates of stored tuples collapse under set
    /// semantics and do not count).
    pub inserted: usize,
    /// Tuples genuinely removed (deletes of absent rows are no-ops).
    pub deleted: usize,
    /// Old components invalidated by the mutation (deleted from, or now conflicting
    /// with an inserted tuple).
    pub invalidated_components: usize,
    /// `(component, family)` memo entries carried over from the parent snapshot.
    pub carried_entries: usize,
    /// `(component, family)` memo entries eagerly re-enumerated across workers.
    pub recomputed_entries: usize,
}

/// One relation's derived state plus the bookkeeping the snapshot-level stitch needs.
struct RelationDelta {
    /// The new entry, before `comp_offset`/shard stitching.
    entry: RelationEntry,
    /// Old local component index → new local component index for carried (untouched)
    /// components; `None` marks an invalidated component.
    carried: Vec<Option<usize>>,
    /// Old tuple id → new tuple id (`None` = deleted). `None` at the outer level means
    /// the relation is untouched and ids are identical.
    id_map: Option<Vec<Option<TupleId>>>,
    /// New local component indices that did not carry over (the re-partitioned region).
    fresh: Vec<usize>,
    /// Rows genuinely inserted / tuples genuinely deleted.
    inserted: usize,
    deleted: usize,
}

impl RelationDelta {
    /// The identity delta: the relation is untouched and shares everything.
    fn unchanged(entry: &RelationEntry) -> Self {
        RelationDelta {
            carried: (0..entry.components.len()).map(Some).collect(),
            entry: entry.share(),
            id_map: None,
            fresh: Vec::new(),
            inserted: 0,
            deleted: 0,
        }
    }
}

/// Remaps every tuple id of `set` through the survivor map.
fn remap_set(set: &TupleSet, id_map: &[Option<TupleId>]) -> TupleSet {
    set.iter()
        .map(|id| id_map[id.index()].expect("carried sets only contain surviving tuples"))
        .collect()
}

/// Derives one relation's post-mutation entry, re-partitioning only the components the
/// mutation can have touched. See the [module docs](self) for the decomposition.
fn derive_relation(
    entry: &RelationEntry,
    mutation: &RelationMutation,
) -> Result<RelationDelta, MutationError> {
    let old_instance = entry.ctx.instance();
    let schema = Arc::clone(old_instance.schema());
    let name = schema.name().to_string();
    let wrap = |source: RelationError| MutationError::Relation { relation: name.clone(), source };

    // Deletes first: resolve rows to old tuple ids (absent rows are no-ops).
    let mut deleted_ids = TupleSet::with_capacity(old_instance.len());
    for row in &mutation.deletes {
        let tuple = schema.tuple(row.clone()).map_err(wrap)?;
        if let Some(id) = old_instance.id_of(&tuple) {
            deleted_ids.insert(id);
        }
    }

    // The new instance: survivors in old-id order (so the remap is monotone — relative
    // order, and with it every enumeration order, is preserved), then fresh inserts.
    // This is exactly the id assignment `RelationInstance::from_rows` produces for the
    // edited row list.
    let mut new_instance = RelationInstance::new(Arc::clone(&schema));
    let mut id_map: Vec<Option<TupleId>> = vec![None; old_instance.len()];
    for (id, tuple) in old_instance.iter() {
        if deleted_ids.contains(id) {
            continue;
        }
        let (new_id, fresh) = new_instance.insert_tuple(tuple.clone());
        debug_assert!(fresh, "instances hold each tuple once");
        id_map[id.index()] = Some(new_id);
    }
    let mut added = TupleSet::new();
    let mut inserted = 0usize;
    for row in &mutation.inserts {
        let tuple = schema.tuple(row.clone()).map_err(wrap)?;
        let (new_id, fresh) = new_instance.insert_tuple(tuple);
        if fresh {
            added.insert(new_id);
            inserted += 1;
        }
    }
    let deleted = deleted_ids.len();
    if inserted == 0 && deleted == 0 {
        return Ok(RelationDelta::unchanged(entry));
    }

    // The new conflict graph: edges among survivors carry over (a conflict depends only
    // on the two tuples), remapped — the map is monotone, so the list stays sorted —
    // plus the per-FD edge deltas incident to the inserted tuples.
    let old_graph = entry.ctx.graph();
    let survivor_edges: Vec<(TupleId, TupleId)> = old_graph
        .edges()
        .iter()
        .filter_map(|&(a, b)| match (id_map[a.index()], id_map[b.index()]) {
            (Some(a), Some(b)) => Some((a.min(b), a.max(b))),
            _ => None,
        })
        .collect();
    let fds = entry.ctx.fds().clone();
    let mut edge_lists = vec![survivor_edges];
    for fd in fds.fds() {
        edge_lists.push(fd_conflict_edges_touching(&new_instance, fd, &added));
    }
    let new_graph = Arc::new(ConflictGraph::from_edge_lists(new_instance.len(), &edge_lists));

    // The priority carries over edge-wise: surviving pairs remain conflict edges of the
    // new graph and a subset of an acyclic orientation is acyclic.
    let survivor_pairs: Vec<(TupleId, TupleId)> = entry
        .priority
        .edges()
        .into_iter()
        .filter_map(|(w, l)| match (id_map[w.index()], id_map[l.index()]) {
            (Some(w), Some(l)) => Some((w, l)),
            _ => None,
        })
        .collect();
    let priority = Priority::from_pairs(Arc::clone(&new_graph), &survivor_pairs)
        .map_err(|source| MutationError::Priority { relation: name.clone(), source })?;

    // The affected region (in new-id space): inserted tuples, every component that lost
    // a tuple, every component (or conflict-free tuple) now adjacent to an inserted
    // tuple. The region is closed under new-graph adjacency — old edges never cross
    // components and new edges always touch an inserted tuple — so re-partitioning it
    // in isolation is exact, and splits/merges stay inside it by construction.
    let mut old_of: Vec<Option<TupleId>> = vec![None; new_instance.len()];
    for (old, new) in id_map.iter().enumerate() {
        if let Some(new) = new {
            old_of[new.index()] = Some(TupleId(old as u32));
        }
    }
    let mut affected_old: Vec<bool> = vec![false; entry.components.len()];
    for id in deleted_ids.iter() {
        let comp = entry.comp_of[id.index()];
        if comp != usize::MAX {
            affected_old[comp] = true;
        }
    }
    let mut region = TupleSet::with_capacity(new_instance.len());
    for id in added.iter() {
        region.insert(id);
        for neighbor in new_graph.neighbors(id).iter() {
            if added.contains(neighbor) {
                continue;
            }
            let old = old_of[neighbor.index()].expect("non-added tuples are survivors");
            let comp = entry.comp_of[old.index()];
            if comp == usize::MAX {
                // A previously conflict-free tuple joins a component.
                region.insert(neighbor);
            } else {
                affected_old[comp] = true;
            }
        }
    }
    for (comp, members) in entry.components.iter().enumerate() {
        if !affected_old[comp] {
            continue;
        }
        for old in members.iter() {
            if let Some(new_id) = id_map[old.index()] {
                region.insert(new_id);
            }
        }
    }

    // Re-partition the region: BFS from region vertices in ascending id order finds its
    // components exactly like `ConflictGraph::connected_components` would (each is
    // discovered at its minimal member); singletons fall back to the conflict-free base.
    let mut visited = TupleSet::with_capacity(new_instance.len());
    let mut fresh_parts: Vec<TupleSet> = Vec::new();
    for start in region.iter() {
        if visited.contains(start) {
            continue;
        }
        visited.insert(start);
        let mut members = TupleSet::with_capacity(new_instance.len());
        let mut stack = vec![start];
        while let Some(vertex) = stack.pop() {
            members.insert(vertex);
            for neighbor in new_graph.neighbors(vertex).iter() {
                if !visited.contains(neighbor) {
                    visited.insert(neighbor);
                    stack.push(neighbor);
                }
            }
        }
        if members.len() >= 2 {
            fresh_parts.push(members);
        }
    }

    // Assemble the new component list: carried components (remapped) and fresh region
    // components, ordered by minimal member id — the order a full
    // `connected_components` pass on the new graph produces.
    enum Origin {
        Carried(usize),
        Fresh,
    }
    let mut assembled: Vec<(TupleId, TupleSet, Origin)> = Vec::new();
    for (old_local, members) in entry.components.iter().enumerate() {
        if affected_old[old_local] {
            continue;
        }
        let remapped = remap_set(members, &id_map);
        let min = remapped.first().expect("components are non-empty");
        assembled.push((min, remapped, Origin::Carried(old_local)));
    }
    for members in fresh_parts {
        let min = members.first().expect("fresh components are non-empty");
        assembled.push((min, members, Origin::Fresh));
    }
    assembled.sort_by_key(|&(min, _, _)| min);

    let mut components = Vec::with_capacity(assembled.len());
    let mut carried: Vec<Option<usize>> = vec![None; entry.components.len()];
    let mut fresh = Vec::new();
    for (new_local, (_, members, origin)) in assembled.into_iter().enumerate() {
        match origin {
            Origin::Carried(old_local) => carried[old_local] = Some(new_local),
            Origin::Fresh => fresh.push(new_local),
        }
        components.push(members);
    }
    let mut comp_of = vec![usize::MAX; new_instance.len()];
    for (index, members) in components.iter().enumerate() {
        for id in members.iter() {
            comp_of[id.index()] = index;
        }
    }
    let mut base = TupleSet::with_capacity(new_instance.len());
    for id in new_instance.ids() {
        if comp_of[id.index()] == usize::MAX {
            base.insert(id);
        }
    }

    let ctx = RepairContext::with_graph(new_instance, fds, new_graph);
    Ok(RelationDelta {
        entry: RelationEntry {
            ctx: Arc::new(ctx),
            priority,
            components: Arc::new(components),
            base: Arc::new(base),
            comp_of: Arc::new(comp_of),
            comp_offset: 0,
            shards: Arc::new(Vec::new()),
        },
        carried,
        id_map: Some(id_map),
        fresh,
        inserted,
        deleted,
    })
}

impl EngineSnapshot {
    /// Derives a snapshot for the mutated instance — **bit-identical to a fresh build**
    /// of the edited rows at every degree of parallelism — re-partitioning only the
    /// affected components and carrying over every untouched memo entry. See the
    /// [module docs](self).
    pub fn with_mutations(
        &self,
        mutation: &Mutation,
        parallelism: Parallelism,
    ) -> Result<EngineSnapshot, MutationError> {
        self.with_mutations_reported(mutation, parallelism).map(|(snapshot, _)| snapshot)
    }

    /// [`EngineSnapshot::with_mutations`] plus a [`MutationReport`] describing what the
    /// delta actually did (rows applied, components invalidated, memo entries carried
    /// and eagerly re-enumerated).
    pub fn with_mutations_reported(
        &self,
        mutation: &Mutation,
        parallelism: Parallelism,
    ) -> Result<(EngineSnapshot, MutationReport), MutationError> {
        for relation in mutation.relations.keys() {
            if self.entry_index(relation).is_none() {
                return Err(MutationError::UnknownRelation { relation: relation.clone() });
            }
        }

        // Per-relation deltas, in entry (insertion) order.
        let entries = self.entries();
        let mut deltas = Vec::with_capacity(entries.len());
        for entry in entries {
            let name = entry.ctx.instance().schema().name();
            match mutation.relations.get(name) {
                Some(relation_mutation) => deltas.push(derive_relation(entry, relation_mutation)?),
                None => deltas.push(RelationDelta::unchanged(entry)),
            }
        }

        // Stitch offsets and shard plans in relation order, building the old→new global
        // component id map as we go (untouched relations keep their locals but their
        // offsets shift when an earlier relation's component count changed).
        let mut report = MutationReport::default();
        let mut new_entries = Vec::with_capacity(entries.len());
        let mut id_maps: Vec<Option<Vec<Option<TupleId>>>> = Vec::with_capacity(entries.len());
        let mut global_map: Vec<Option<usize>> = vec![None; self.component_count()];
        let mut fresh_jobs: Vec<(usize, usize)> = Vec::new();
        let mut new_offset = 0usize;
        for (rel, delta) in deltas.into_iter().enumerate() {
            let old_offset = entries[rel].comp_offset;
            for (old_local, new_local) in delta.carried.iter().enumerate() {
                if let Some(new_local) = new_local {
                    global_map[old_offset + old_local] = Some(new_offset + new_local);
                }
            }
            report.inserted += delta.inserted;
            report.deleted += delta.deleted;
            report.invalidated_components += delta.carried.iter().filter(|c| c.is_none()).count();
            fresh_jobs.extend(delta.fresh.iter().map(|&local| (rel, local)));
            let entry = delta.entry.with_offset(rel, new_offset);
            new_offset += entry.components.len();
            id_maps.push(delta.id_map);
            new_entries.push(entry);
        }

        // Carry the component memo: every entry of an untouched component survives with
        // its global id and tuple ids remapped (the monotone remap preserves both the
        // repairs and their enumeration order). Families seen per relation feed the
        // eager re-enumeration below.
        let memo = Memo::default();
        let mut families_by_rel: Vec<Vec<FamilyKind>> = vec![Vec::new(); entries.len()];
        self.inner.memo.components.for_each(|&(old_global, kind), sets| {
            let (rel, _) = self.locate_component(old_global);
            if !families_by_rel[rel].contains(&kind) {
                families_by_rel[rel].push(kind);
            }
            if let Some(new_global) = global_map[old_global] {
                let value = match &id_maps[rel] {
                    None => Arc::clone(sets),
                    Some(id_map) => {
                        Arc::new(sets.iter().map(|set| remap_set(set, id_map)).collect())
                    }
                };
                memo.components.insert_if_missing((new_global, kind), &value);
                report.carried_entries += 1;
            }
        });

        // Carry answers that depend only on untouched relations (a conflict-free
        // mutated relation contributes no component id, so `depends_on` alone cannot
        // tell — hence the per-entry relation list), with their global component ids
        // remapped; anything reading a mutated relation is recomputed on demand.
        memo.carry_answers_from(&self.inner.memo, |answer| {
            if answer.relations.iter().any(|&rel| id_maps[rel].is_some()) {
                return None;
            }
            answer.depends_on.iter().map(|&global| global_map[global]).collect()
        });
        memo.carry_plans_from(&self.inner.memo, |plan| {
            if plan.relations.iter().any(|&rel| id_maps[rel].is_some()) {
                return None;
            }
            plan.depends_on.iter().map(|&global| global_map[global]).collect()
        });

        let derived = EngineSnapshot {
            inner: Arc::new(SnapshotInner {
                relations: new_entries,
                by_name: self.inner.by_name.clone(),
                memo,
            }),
        };

        // Eagerly re-enumerate the invalidated slice: for every re-partitioned
        // component, each family the parent had memoised for its relation — fanned out
        // across workers, largest components first, exactly like
        // `with_priority_revalidated` does for priority changes.
        let mut jobs: Vec<(usize, usize, FamilyKind)> = Vec::new();
        for &(rel, local) in &fresh_jobs {
            for &kind in &families_by_rel[rel] {
                jobs.push((rel, local, kind));
            }
        }
        let weights: Vec<u128> = jobs
            .iter()
            .map(|&(rel, local, _)| derived.entries()[rel].components[local].len() as u128)
            .collect();
        let order = pdqi_solve::mis::schedule_by_descending_weight(&weights);
        let jobs: Vec<(usize, usize, FamilyKind)> = order.into_iter().map(|i| jobs[i]).collect();
        crate::parallel::run_jobs(parallelism, jobs.len(), |i| {
            let (rel, local, kind) = jobs[i];
            derived.component_preferred(rel, local, kind);
        });
        report.recomputed_entries = jobs.len();

        Ok((derived, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::EngineBuilder;
    use pdqi_constraints::FdSet;
    use pdqi_relation::{RelationSchema, ValueType};

    fn schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        )
    }

    fn snapshot_of(rows: &[(i64, i64)]) -> EngineSnapshot {
        let instance = RelationInstance::from_rows(
            schema(),
            rows.iter().map(|&(a, b)| vec![Value::int(a), Value::int(b)]).collect(),
        )
        .unwrap();
        let fds = FdSet::parse(schema(), &["A -> B"]).unwrap();
        EngineBuilder::new().relation(instance, fds).build().unwrap()
    }

    fn row(a: i64, b: i64) -> Vec<Value> {
        vec![Value::int(a), Value::int(b)]
    }

    #[test]
    fn mutation_batches_collect_rows_per_relation() {
        let mutation =
            Mutation::new().insert_rows("R", [row(1, 0), row(2, 0)]).delete_rows("S", [row(3, 0)]);
        assert_eq!(mutation.relation_names(), vec!["R".to_string(), "S".to_string()]);
        assert!(!mutation.is_empty());
        assert!(Mutation::new().is_empty());
    }

    #[test]
    fn inserts_extend_and_deletes_shrink_bit_identically_to_a_rebuild() {
        // Three two-tuple components; mutate the middle one.
        let base = snapshot_of(&[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
        let mutation = Mutation::new().delete("R", row(1, 1)).insert("R", row(1, 2));
        let (derived, report) =
            base.with_mutations_reported(&mutation, Parallelism::sequential()).unwrap();
        assert_eq!(report.inserted, 1);
        assert_eq!(report.deleted, 1);
        let fresh = snapshot_of(&[(0, 0), (0, 1), (1, 0), (2, 0), (2, 1), (1, 2)]);
        assert_eq!(derived.graph().edges(), fresh.graph().edges());
        assert_eq!(derived.component_count(), fresh.component_count());
        assert_eq!(derived.shards(), fresh.shards());
        assert_eq!(
            derived.preferred_repairs(FamilyKind::Rep, usize::MAX),
            fresh.preferred_repairs(FamilyKind::Rep, usize::MAX)
        );
    }

    #[test]
    fn untouched_component_memo_entries_carry_over() {
        let base = snapshot_of(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        base.preferred_repairs(FamilyKind::Rep, usize::MAX);
        let warm = base.memo_stats();
        assert_eq!(warm.component_misses, 2);
        // Insert a tuple conflicting with component 1 only.
        let mutation = Mutation::new().insert("R", row(1, 2));
        let (derived, report) =
            base.with_mutations_reported(&mutation, Parallelism::sequential()).unwrap();
        assert_eq!(report.invalidated_components, 1);
        assert_eq!(report.carried_entries, 1);
        // Component 0 was carried; only the grown component was re-enumerated (eagerly).
        assert_eq!(report.recomputed_entries, 1);
        let stats = derived.memo_stats();
        assert_eq!(stats.component_misses, 1);
        derived.preferred_repairs(FamilyKind::Rep, usize::MAX);
        assert_eq!(derived.memo_stats().component_misses, 1, "no further enumeration needed");
    }

    #[test]
    fn noop_mutations_share_everything() {
        let base = snapshot_of(&[(0, 0), (0, 1)]);
        base.preferred_repairs(FamilyKind::Local, usize::MAX);
        // Deleting an absent row and re-inserting a stored row are both no-ops.
        let mutation = Mutation::new().delete("R", row(9, 9)).insert("R", row(0, 0));
        let (derived, report) =
            base.with_mutations_reported(&mutation, Parallelism::sequential()).unwrap();
        assert_eq!(report, MutationReport { carried_entries: 1, ..MutationReport::default() });
        assert!(Arc::ptr_eq(base.graph(), derived.graph()));
        derived.preferred_repairs(FamilyKind::Local, usize::MAX);
        assert_eq!(derived.memo_stats().component_misses, 0);
    }

    #[test]
    fn errors_are_reported_before_any_work() {
        let base = snapshot_of(&[(0, 0), (0, 1)]);
        let unknown = Mutation::new().insert("Nope", row(1, 1));
        assert!(matches!(
            base.with_mutations(&unknown, Parallelism::sequential()),
            Err(MutationError::UnknownRelation { .. })
        ));
        let bad_arity = Mutation::new().insert("R", vec![Value::int(1)]);
        assert!(matches!(
            base.with_mutations(&bad_arity, Parallelism::sequential()),
            Err(MutationError::Relation { .. })
        ));
        let bad_type = Mutation::new().delete("R", vec![Value::name("x"), Value::int(0)]);
        assert!(matches!(
            base.with_mutations(&bad_type, Parallelism::sequential()),
            Err(MutationError::Relation { .. })
        ));
    }

    #[test]
    fn priorities_carry_over_minus_deleted_edges() {
        let base = snapshot_of(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let priority = base
            .context()
            .priority_from_pairs(&[(TupleId(0), TupleId(1)), (TupleId(2), TupleId(3))])
            .unwrap();
        let prioritised = base.with_priority(priority).unwrap();
        let mutation = Mutation::new().delete("R", row(0, 1));
        let derived = prioritised.with_mutations(&mutation, Parallelism::sequential()).unwrap();
        // The (0,1) edge died with its loser; the (2,3) edge survives remapped to (1,2).
        assert_eq!(derived.priority().edges(), vec![(TupleId(1), TupleId(2))]);
        assert_eq!(derived.preferred_repair_count(FamilyKind::Global), 1);
    }
}
