//! Continuous queries: a subscription subsystem that turns generation swaps into
//! incremental answer deltas.
//!
//! The serving pipeline already knows, for every swap, *what changed*: a row-level
//! [`Mutation`](crate::Mutation) names the relations it touched, and a priority
//! revision reports the conflict components it invalidated (the same metadata the
//! answer memo uses to carry entries across derivations). Polling clients throw that
//! knowledge away — they re-execute their prepared query against every new generation
//! even when the answer provably did not change. A [`SubscriptionManager`] keeps it:
//!
//! * clients register `(prepared query, family, semantics)` triples with
//!   [`SubscriptionManager::subscribe`]; the manager executes the query once against
//!   the current snapshot and remembers the full answer;
//! * the manager is a [`SwapObserver`]: on every generation swap it first tries to
//!   **prove the answer unchanged** from the swap's [`ChangeScope`] — a mutation of
//!   relations the query does not read, a priority revision that touched no
//!   component the answer depends on (or a `Rep`-family query, which never depends on
//!   the priority at all), or a schema delta whose FD added no conflict edge or whose
//!   relation the query never reads — and skips re-execution entirely;
//! * only genuinely affected queries fall back to **execute-and-diff**: re-run against
//!   the new snapshot (memo-assisted — untouched components stream from carried
//!   entries) and diff the sorted answer sets into an [`AnswerDelta`], bit-identical
//!   to diffing two full executions at any parallelism degree;
//! * deltas land on a **bounded** per-subscriber queue drained by the consumer (the
//!   server's connection handler, a session, a test). A subscriber that falls behind
//!   loses its queue, not the server's memory: the queue collapses into one
//!   [`SubscriptionEvent::Lagged`] resync carrying the current full answer.
//!
//! The soundness of the skip rule is the paper's factorisation: preferred repairs —
//! and hence preferred consistent answers — factor over conflict-graph components, so
//! an answer whose component footprint is disjoint from the swap's invalidation
//! footprint is carried over verbatim by the derivation itself.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pdqi_query::QueryError;
use pdqi_relation::Value;

use crate::families::FamilyKind;
use crate::parallel::Parallelism;
use crate::prepared::{PreparedQuery, Semantics};
use crate::registry::{ChangeScope, SnapshotRegistry, SwapEvent, SwapObserver};
use crate::window::{ReportState, ReportStrategy, WindowCounters, WindowStats};

/// Default bound on a subscriber's undrained event queue. Beyond it the queue
/// collapses into one [`SubscriptionEvent::Lagged`] resync — a slow subscriber costs
/// one full answer, never unbounded memory.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// One incremental answer change: the rows that appeared and disappeared between two
/// consecutive generations. Applying `added`/`removed` to the previous full answer
/// reproduces the new full answer exactly (both sides are sorted, de-duplicated row
/// sets, so the delta is canonical).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerDelta {
    /// The generation the delta leads *to*.
    pub generation: u64,
    /// Rows present in the new answer but not the previous one (sorted).
    pub added: Vec<Vec<Value>>,
    /// Rows present in the previous answer but not the new one (sorted).
    pub removed: Vec<Vec<Value>>,
}

/// One event on a subscriber's queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptionEvent {
    /// The answer changed: apply the delta to the previously known answer.
    Delta(AnswerDelta),
    /// The subscriber fell behind and its queue was collapsed: resynchronise from
    /// this full answer (the current one — intermediate deltas are gone).
    Lagged {
        /// The generation the full answer is current at.
        generation: u64,
        /// The full answer rows at that generation (sorted, de-duplicated).
        rows: Vec<Vec<Value>>,
    },
}

/// A snapshot of the manager's counters, mirroring
/// [`MemoStats`](crate::MemoStats)-style observability for the push path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscribeStats {
    /// Currently registered subscriptions.
    pub subscribers: usize,
    /// Deltas enqueued for subscribers (empty diffs push nothing and count nothing).
    pub deltas_pushed: u64,
    /// Swaps skipped per subscription because the change scope proved the answer
    /// unchanged — no re-execution happened.
    pub skipped_unchanged: u64,
    /// Query executions the manager ran (one per registration, plus one per swap
    /// that could not be proven unchanged).
    pub executions: u64,
    /// Times a subscriber's queue overflowed and collapsed into a lagged resync.
    pub lagged_resyncs: u64,
}

/// Per-subscription options for [`SubscriptionManager::subscribe_with`]: the report
/// strategy (see [`crate::window`]) and an optional queue-capacity override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscribeOptions {
    /// How swaps become pushed deltas (default: one delta per answer-changing swap).
    pub strategy: ReportStrategy,
    /// Overrides the manager's per-subscriber queue bound (clamped to ≥ 1);
    /// `None` uses the manager-wide capacity.
    pub queue_capacity: Option<usize>,
}

/// What [`SubscriptionManager::subscribe`] hands back: the subscription id plus the
/// initial full answer the deltas build on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscribed {
    /// The id used with [`SubscriptionManager::drain`] / `unsubscribe`.
    pub id: u64,
    /// The generation the initial answer was executed at.
    pub generation: u64,
    /// The answer's column headers (the query's free variables).
    pub columns: Vec<String>,
    /// The initial full answer (sorted, de-duplicated).
    pub rows: Vec<Vec<Value>>,
}

/// One row of [`SubscriptionManager::list`]: the registration parameters plus the
/// subscription's current position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionInfo {
    /// The subscription id.
    pub id: u64,
    /// The query text the subscription was registered with.
    pub query: String,
    /// The registry table the subscription watches.
    pub table: String,
    /// The repair family quantified over.
    pub family: FamilyKind,
    /// The open-query semantics.
    pub semantics: Semantics,
    /// The last generation the stored answer is current at.
    pub generation: u64,
    /// Undrained events on the subscriber's queue.
    pub pending: usize,
    /// Whether the queue overflowed and the next drain resynchronises.
    pub lagged: bool,
    /// The subscription's report strategy.
    pub strategy: ReportStrategy,
}

/// Errors raised by [`SubscriptionManager::subscribe`].
#[derive(Debug)]
pub enum SubscribeError {
    /// The query reads zero or several tables; subscriptions watch exactly one
    /// registry slot.
    NotSingleTable {
        /// How many tables the query reads.
        tables: usize,
    },
    /// The registry serves no snapshot for the query's table.
    UnknownTable(String),
    /// The initial execution failed.
    Query(QueryError),
}

impl fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscribeError::NotSingleTable { tables } => {
                write!(f, "subscriptions read exactly one table (this query reads {tables})")
            }
            SubscribeError::UnknownTable(table) => {
                write!(f, "registry serves no table `{table}`")
            }
            SubscribeError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for SubscribeError {}

/// One registered continuous query.
struct Subscription {
    query: Arc<PreparedQuery>,
    text: String,
    table: String,
    family: FamilyKind,
    semantics: Semantics,
    /// The full answer at `generation` (sorted, de-duplicated — the shape
    /// [`crate::AnswerSet`] yields).
    rows: Vec<Vec<Value>>,
    generation: u64,
    queue: VecDeque<SubscriptionEvent>,
    lagged: bool,
    /// Report-strategy state: what the subscriber was told, pending coalesced
    /// deltas, the last-N window (see [`crate::window`]).
    report: ReportState,
    /// Per-subscription queue bound; `None` falls back to the manager's.
    queue_capacity: Option<usize>,
}

#[derive(Default)]
struct ManagerInner {
    next_id: u64,
    subscriptions: BTreeMap<u64, Subscription>,
}

/// The continuous-query manager: registers subscriptions, observes registry swaps,
/// proves answers unchanged where it can, and queues [`AnswerDelta`]s where it
/// cannot. See the [module docs](self).
///
/// Attach it to a registry once with [`SubscriptionManager::attach`]; everything else
/// goes through subscription ids.
pub struct SubscriptionManager {
    parallelism: Parallelism,
    queue_capacity: usize,
    inner: Mutex<ManagerInner>,
    deltas_pushed: AtomicU64,
    skipped_unchanged: AtomicU64,
    executions: AtomicU64,
    lagged_resyncs: AtomicU64,
    window_counters: WindowCounters,
}

impl SubscriptionManager {
    /// A manager executing affected queries with `parallelism` workers and the
    /// default queue bound.
    pub fn new(parallelism: Parallelism) -> Arc<Self> {
        Self::with_queue_capacity(parallelism, DEFAULT_QUEUE_CAPACITY)
    }

    /// [`SubscriptionManager::new`] with an explicit per-subscriber queue bound
    /// (clamped to at least 1).
    pub fn with_queue_capacity(parallelism: Parallelism, queue_capacity: usize) -> Arc<Self> {
        Arc::new(SubscriptionManager {
            parallelism,
            queue_capacity: queue_capacity.max(1),
            inner: Mutex::new(ManagerInner::default()),
            deltas_pushed: AtomicU64::new(0),
            skipped_unchanged: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            lagged_resyncs: AtomicU64::new(0),
            window_counters: WindowCounters::default(),
        })
    }

    /// Registers this manager as `registry`'s swap observer. Call once per registry;
    /// subscriptions registered before or after both work.
    pub fn attach(self: &Arc<Self>, registry: &SnapshotRegistry) {
        registry.register_observer(Arc::clone(self) as Arc<dyn SwapObserver>);
    }

    /// Registers a continuous query and returns its id plus the initial full answer.
    ///
    /// The initial execution and the registration happen under the manager lock, and
    /// swap notifications take the same lock *after* the slot swapped — so a swap
    /// concurrent with `subscribe` either lands before the initial read (the answer
    /// already reflects it) or notifies after registration (a delta arrives). No swap
    /// can fall between the initial answer and the first delta.
    pub fn subscribe(
        &self,
        registry: &SnapshotRegistry,
        query: Arc<PreparedQuery>,
        family: FamilyKind,
        semantics: Semantics,
    ) -> Result<Subscribed, SubscribeError> {
        self.subscribe_with(registry, query, family, semantics, SubscribeOptions::default())
    }

    /// [`SubscriptionManager::subscribe`] with explicit [`SubscribeOptions`]: a
    /// report strategy (`EVERY n` / `WINDOW n` / `COALESCE ms` on the wire) and an
    /// optional per-subscription queue bound (`QUEUE n`).
    pub fn subscribe_with(
        &self,
        registry: &SnapshotRegistry,
        query: Arc<PreparedQuery>,
        family: FamilyKind,
        semantics: Semantics,
        options: SubscribeOptions,
    ) -> Result<Subscribed, SubscribeError> {
        let tables = query.relations();
        let [table] = tables else {
            return Err(SubscribeError::NotSingleTable { tables: tables.len() });
        };
        let table = table.clone();
        let mut inner = self.inner.lock().expect("subscription manager lock");
        let lease =
            registry.read(&table).ok_or_else(|| SubscribeError::UnknownTable(table.clone()))?;
        let answer = query
            .execute_with(lease.snapshot(), family, semantics, self.parallelism)
            .map_err(SubscribeError::Query)?;
        self.executions.fetch_add(1, Ordering::Relaxed);
        let columns: Vec<String> = answer.columns().to_vec();
        let rows: Vec<Vec<Value>> = answer.rows().to_vec();
        inner.next_id += 1;
        let id = inner.next_id;
        let text = query.source().map_or_else(|| query.formula().to_string(), str::to_string);
        inner.subscriptions.insert(
            id,
            Subscription {
                query,
                text,
                table,
                family,
                semantics,
                rows: rows.clone(),
                generation: lease.generation(),
                queue: VecDeque::new(),
                lagged: false,
                report: ReportState::new(options.strategy, rows.clone(), lease.generation()),
                queue_capacity: options.queue_capacity.map(|c| c.max(1)),
            },
        );
        Ok(Subscribed { id, generation: lease.generation(), columns, rows })
    }

    /// Drops a subscription (undrained events are discarded). Returns whether it
    /// existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        self.inner.lock().expect("subscription manager lock").subscriptions.remove(&id).is_some()
    }

    /// Takes every queued event of subscription `id`, oldest first. A lagged
    /// subscriber gets exactly one [`SubscriptionEvent::Lagged`] resync instead of
    /// its lost deltas — and any pending coalesced delta is dropped, never replayed,
    /// because the resync's full answer already contains it. Draining is also when
    /// coalesced deadlines resolve: a pending delta whose `max_delay` elapsed is
    /// flushed onto the returned events (observers run under the writer lock, so the
    /// swap path cannot wait on timers). Unknown ids drain nothing.
    pub fn drain(&self, id: u64) -> Vec<SubscriptionEvent> {
        let mut inner = self.inner.lock().expect("subscription manager lock");
        let Some(subscription) = inner.subscriptions.get_mut(&id) else {
            return Vec::new();
        };
        if subscription.lagged {
            subscription.lagged = false;
            subscription.queue.clear();
            let rows = subscription.report.resync(&subscription.rows, &self.window_counters);
            return vec![SubscriptionEvent::Lagged { generation: subscription.generation, rows }];
        }
        let mut events: Vec<SubscriptionEvent> = subscription.queue.drain(..).collect();
        if let Some(delta) = subscription.report.flush_due(
            subscription.generation,
            &subscription.rows,
            &self.window_counters,
        ) {
            self.deltas_pushed.fetch_add(1, Ordering::Relaxed);
            events.push(SubscriptionEvent::Delta(delta));
        }
        events
    }

    /// The manager's counters at one instant.
    pub fn stats(&self) -> SubscribeStats {
        SubscribeStats {
            subscribers: self.inner.lock().expect("subscription manager lock").subscriptions.len(),
            deltas_pushed: self.deltas_pushed.load(Ordering::Relaxed),
            skipped_unchanged: self.skipped_unchanged.load(Ordering::Relaxed),
            executions: self.executions.load(Ordering::Relaxed),
            lagged_resyncs: self.lagged_resyncs.load(Ordering::Relaxed),
        }
    }

    /// Report-strategy counters: how many subscribers coalesce or window, how many
    /// swaps folded, flushed, expired or were dropped at a resync.
    pub fn window_stats(&self) -> WindowStats {
        let (mut coalesced, mut windowed) = (0usize, 0usize);
        {
            let inner = self.inner.lock().expect("subscription manager lock");
            for subscription in inner.subscriptions.values() {
                match subscription.report.strategy() {
                    ReportStrategy::Coalesced { .. } => coalesced += 1,
                    ReportStrategy::WindowedLastN { .. } => windowed += 1,
                    ReportStrategy::PerGeneration => {}
                }
            }
        }
        WindowStats {
            coalesced_subscribers: coalesced,
            windowed_subscribers: windowed,
            folded_swaps: self.window_counters.folded_swaps.load(Ordering::Relaxed),
            coalesced_flushes: self.window_counters.coalesced_flushes.load(Ordering::Relaxed),
            expiry_deltas: self.window_counters.expiry_deltas.load(Ordering::Relaxed),
            pending_dropped: self.window_counters.pending_dropped.load(Ordering::Relaxed),
        }
    }

    /// Every live subscription, in id order.
    pub fn list(&self) -> Vec<SubscriptionInfo> {
        let inner = self.inner.lock().expect("subscription manager lock");
        inner
            .subscriptions
            .iter()
            .map(|(&id, s)| SubscriptionInfo {
                id,
                query: s.text.clone(),
                table: s.table.clone(),
                family: s.family,
                semantics: s.semantics,
                generation: s.generation,
                pending: s.queue.len(),
                lagged: s.lagged,
                strategy: s.report.strategy(),
            })
            .collect()
    }

    /// How many live subscriptions watch `table`.
    pub fn subscriber_count_for(&self, table: &str) -> usize {
        let inner = self.inner.lock().expect("subscription manager lock");
        inner.subscriptions.values().filter(|s| s.table == table).count()
    }

    /// Whether `scope` proves `subscription`'s answer unchanged across the swap.
    ///
    /// * a swap of a **different table** cannot touch it (subscriptions bind to one
    ///   registry slot);
    /// * a [`ChangeScope::Mutation`] that names none of the query's relations carried
    ///   the relation's tuples, components and memo entries over verbatim;
    /// * a [`ChangeScope::Priority`] is invisible to `Rep`-family answers, to queries
    ///   that do not read the revised relation, and to every query when the revision
    ///   touched no component (`affected` is empty). When the query *does* read the
    ///   revised relation and components were touched, its answer depends on all of
    ///   that relation's components, so no finer test applies;
    /// * a [`ChangeScope::Schema`] (an FD added as a delta) is invisible to queries
    ///   that do not read the altered relation, and to every query when the FD added
    ///   no conflict edge (`affected` is empty — the snapshot's repairs are identical).
    ///   Unlike a priority revision there is **no `Rep` exemption**: new conflict
    ///   edges change the repair space of every family.
    fn provably_unchanged(subscription: &Subscription, event: &SwapEvent<'_>) -> bool {
        if subscription.table != event.table {
            return true;
        }
        match event.scope {
            ChangeScope::Rebuild => false,
            ChangeScope::Mutation { relations } => {
                !subscription.query.relations().iter().any(|read| relations.contains(read))
            }
            ChangeScope::Priority { relation, affected } => {
                subscription.family == FamilyKind::Rep
                    || affected.is_empty()
                    || !subscription.query.relations().iter().any(|read| read == relation)
            }
            ChangeScope::Schema { relation, affected } => {
                affected.is_empty()
                    || !subscription.query.relations().iter().any(|read| read == relation)
            }
        }
    }

    /// Enqueues `event` on `subscription`'s bounded queue, collapsing to lagged on
    /// overflow.
    fn enqueue(&self, subscription: &mut Subscription, event: SubscriptionEvent) {
        if subscription.lagged {
            // Already collapsed: the next drain resyncs from the stored full answer,
            // which this swap just updated. Queueing more deltas would re-order them
            // around the resync.
            return;
        }
        let capacity = subscription.queue_capacity.unwrap_or(self.queue_capacity);
        if subscription.queue.len() >= capacity {
            subscription.queue.clear();
            subscription.lagged = true;
            self.lagged_resyncs.fetch_add(1, Ordering::Relaxed);
            return;
        }
        subscription.queue.push_back(event);
    }

    /// Runs the subscription's report strategy across a swap of its table and
    /// enqueues whatever delta it produces.
    fn advance(&self, subscription: &mut Subscription, generation: u64, changed: bool) {
        subscription.generation = generation;
        let delta = subscription.report.advance(
            generation,
            &subscription.rows,
            changed,
            &self.window_counters,
        );
        if let Some(delta) = delta {
            self.deltas_pushed.fetch_add(1, Ordering::Relaxed);
            self.enqueue(subscription, SubscriptionEvent::Delta(delta));
        }
    }
}

/// Two-pointer diff of sorted, de-duplicated row sets.
pub(crate) fn diff_rows(
    old: &[Vec<Value>],
    new: &[Vec<Value>],
) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                removed.push(old[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j].clone());
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&old[i..]);
    added.extend_from_slice(&new[j..]);
    (added, removed)
}

impl SwapObserver for SubscriptionManager {
    fn on_swap(&self, event: &SwapEvent<'_>) {
        let mut inner = self.inner.lock().expect("subscription manager lock");
        let inner = &mut *inner;
        for subscription in inner.subscriptions.values_mut() {
            // The registration itself ran against this generation (or a per-table
            // writer delivered it already): nothing new to derive.
            if subscription.table == event.table && subscription.generation == event.generation {
                continue;
            }
            if Self::provably_unchanged(subscription, event) {
                self.skipped_unchanged.fetch_add(1, Ordering::Relaxed);
                if subscription.table == event.table {
                    // The stored answer is current at the new generation too. The
                    // strategy still advances: a window slides on every generation
                    // of its table, expiring old entries even when the new answer is
                    // unchanged.
                    self.advance(subscription, event.generation, false);
                }
                continue;
            }
            let answer = match subscription.query.execute_with(
                event.snapshot,
                subscription.family,
                subscription.semantics,
                self.parallelism,
            ) {
                Ok(answer) => answer,
                // Registered queries execute against schemas that mutations and
                // revisions cannot change; if execution fails anyway (e.g. a rebuild
                // replaced the table with an incompatible snapshot), keep the old
                // answer and force a resync so the subscriber learns its position
                // (any pending coalesced delta is dropped at that resync).
                Err(_) => {
                    subscription.lagged = true;
                    self.lagged_resyncs.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            self.executions.fetch_add(1, Ordering::Relaxed);
            let new_rows: Vec<Vec<Value>> = answer.rows().to_vec();
            let changed = new_rows != subscription.rows;
            subscription.rows = new_rows;
            // A re-execution that found the answer unchanged pushes nothing for
            // per-generation subscribers (a delta would be noise — and it does not
            // count as "proven" either: the proof failed, the execution decided),
            // but strategies advance regardless: windows slide, coalesced pendings
            // stay open.
            self.advance(subscription, event.generation, changed);
        }
    }
}

impl fmt::Debug for SubscriptionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubscriptionManager").field("stats", &self.stats()).finish()
    }
}
