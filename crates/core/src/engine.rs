//! The legacy one-stop engine façade, now a thin shim over the snapshot pipeline.
//!
//! [`PdqiEngine`] predates the prepared-query API and is kept for backwards
//! compatibility: every method delegates to an internal [`EngineSnapshot`], so the
//! legacy surface and the new one run the exact same code path (including the
//! per-component and per-query memos). New code should use the primary API instead:
//!
//! ```
//! use pdqi_core::{EngineBuilder, FamilyKind, PreparedQuery, Semantics};
//! # use std::sync::Arc;
//! # use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
//! # use pdqi_constraints::FdSet;
//! # let schema = Arc::new(RelationSchema::from_pairs(
//! #     "R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap());
//! # let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
//! #     vec![Value::int(1), Value::int(1)], vec![Value::int(1), Value::int(2)],
//! # ]).unwrap();
//! # let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
//! let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
//! let query = PreparedQuery::parse("EXISTS b . R(1,b)").unwrap();
//! let outcome = query.consistent_answer(&snapshot, FamilyKind::Rep).unwrap();
//! assert!(outcome.certainly_true);
//! ```
//!
//! The shims differ from the historical implementation in one respect only: mutating the
//! priority (`set_priority*`) derives a new snapshot behind the scenes, which keeps the
//! memoised work of unaffected conflict-graph components.

#![allow(deprecated)]

use std::sync::Arc;

use pdqi_constraints::{ConflictGraph, FdSet};
use pdqi_priority::{
    priority_from_scores, priority_from_source_reliability, Priority, SourceOrder,
};
use pdqi_query::{Formula, QueryError};
use pdqi_relation::{RelationInstance, TupleId, TupleSet, Value};

use crate::clean::CleaningError;
use crate::cqa::CqaOutcome;
use crate::families::FamilyKind;
use crate::prepared::{PreparedQuery, Semantics};
use crate::repair::RepairContext;
use crate::snapshot::{EngineBuilder, EngineSnapshot};

/// A preference-driven consistent-query-answering engine over one relation instance.
///
/// Deprecated shim: see the [module docs](self) and use
/// [`EngineBuilder`] / [`PreparedQuery`] directly.
#[deprecated(
    since = "0.2.0",
    note = "use EngineBuilder to build an EngineSnapshot and PreparedQuery to run queries"
)]
pub struct PdqiEngine {
    snapshot: EngineSnapshot,
}

impl PdqiEngine {
    /// Creates an engine with the empty priority (plain consistent query answering).
    pub fn new(instance: RelationInstance, fds: FdSet) -> Self {
        let snapshot = EngineBuilder::new()
            .relation(instance, fds)
            .build()
            .expect("a single relation with the empty priority always builds");
        PdqiEngine { snapshot }
    }

    /// Creates an engine and immediately installs a priority built from explicit
    /// `winner ≻ loser` tuple-id pairs.
    pub fn with_priority_pairs(
        instance: RelationInstance,
        fds: FdSet,
        pairs: &[(TupleId, TupleId)],
    ) -> Result<Self, pdqi_priority::PriorityError> {
        let snapshot =
            EngineBuilder::new().relation(instance, fds).priority_pairs(pairs).build().map_err(
                |e| {
                    e.as_priority_error()
                        .cloned()
                        .expect("a single-relation build only fails through its priority")
                },
            )?;
        Ok(PdqiEngine { snapshot })
    }

    /// The engine's current snapshot: the entry point to the prepared-query pipeline.
    pub fn snapshot(&self) -> &EngineSnapshot {
        &self.snapshot
    }

    /// The repair context (instance, constraints, conflict graph).
    pub fn context(&self) -> &RepairContext {
        self.snapshot.context()
    }

    /// The underlying instance.
    pub fn instance(&self) -> &RelationInstance {
        self.snapshot.context().instance()
    }

    /// The conflict graph.
    pub fn graph(&self) -> &Arc<ConflictGraph> {
        self.snapshot.graph()
    }

    /// The current priority.
    pub fn priority(&self) -> &Priority {
        self.snapshot.priority()
    }

    /// Replaces the priority. The priority must orient this engine's conflict graph
    /// (build it through [`PdqiEngine::graph`]).
    pub fn set_priority(&mut self, priority: Priority) {
        self.snapshot = self
            .snapshot
            .with_priority(priority)
            .expect("the priority must orient this engine's conflict graph");
    }

    /// Installs a priority derived from per-tuple scores (higher score wins each conflict).
    pub fn set_priority_from_scores(&mut self, scores: &[i64]) {
        self.set_priority(priority_from_scores(Arc::clone(self.snapshot.graph()), scores));
    }

    /// Installs a priority derived from per-tuple provenance and a source-reliability
    /// order (the Example 3 scenario).
    pub fn set_priority_from_sources(&mut self, source_of: &[String], order: &SourceOrder) {
        self.set_priority(priority_from_source_reliability(
            Arc::clone(self.snapshot.graph()),
            source_of,
            order,
        ));
    }

    /// Whether the instance is consistent.
    pub fn is_consistent(&self) -> bool {
        self.snapshot.is_consistent()
    }

    /// The number of repairs.
    pub fn count_repairs(&self) -> u128 {
        self.snapshot.count_repairs()
    }

    /// Up to `limit` repairs.
    pub fn repairs(&self, limit: usize) -> Vec<TupleSet> {
        self.snapshot.repairs(limit)
    }

    /// Up to `limit` preferred repairs of the given family under the current priority.
    pub fn preferred_repairs(&self, kind: FamilyKind, limit: usize) -> Vec<TupleSet> {
        self.snapshot.preferred_repairs(kind, limit)
    }

    /// X-repair checking: whether `candidate` is a preferred repair of the given family.
    pub fn is_preferred_repair(&self, kind: FamilyKind, candidate: &TupleSet) -> bool {
        self.snapshot.is_preferred_repair(kind, candidate)
    }

    /// Algorithm 1: the unique cleaning outcome for a total priority (Prop. 1).
    pub fn clean(&self) -> Result<TupleSet, CleaningError> {
        self.snapshot.clean()
    }

    /// The preferred consistent answer to a closed query under the given family.
    ///
    /// Ground queries under the plain repair family are answered through the
    /// polynomial-time conflict-graph algorithm instead of repair enumeration.
    pub fn consistent_answer(
        &self,
        query: &Formula,
        kind: FamilyKind,
    ) -> Result<CqaOutcome, QueryError> {
        PreparedQuery::from_formula(query.clone()).consistent_answer(&self.snapshot, kind)
    }

    /// Parses and answers a closed query.
    pub fn consistent_answer_text(
        &self,
        query: &str,
        kind: FamilyKind,
    ) -> Result<CqaOutcome, QueryError> {
        PreparedQuery::parse(query)?.consistent_answer(&self.snapshot, kind)
    }

    /// Certain answers (present in every preferred repair) to an open query.
    pub fn certain_answers(
        &self,
        query: &Formula,
        kind: FamilyKind,
    ) -> Result<Vec<Vec<Value>>, QueryError> {
        Ok(PreparedQuery::from_formula(query.clone())
            .execute(&self.snapshot, kind, Semantics::Certain)?
            .collect())
    }

    /// Possible answers (present in some preferred repair) to an open query.
    pub fn possible_answers(
        &self,
        query: &Formula,
        kind: FamilyKind,
    ) -> Result<Vec<Vec<Value>>, QueryError> {
        Ok(PreparedQuery::from_formula(query.clone())
            .execute(&self.snapshot, kind, Semantics::Possible)?
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;
    use pdqi_priority::SourceOrder;
    use pdqi_query::parse_formula;

    const Q1: &str =
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";
    const Q2: &str = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2";

    fn example1_engine() -> PdqiEngine {
        let ctx = example1();
        PdqiEngine::new(ctx.instance().clone(), ctx.fds().clone())
    }

    #[test]
    fn the_paper_walkthrough_examples_1_to_3() {
        let mut engine = example1_engine();
        assert!(!engine.is_consistent());
        assert_eq!(engine.count_repairs(), 3);

        // Example 1/2: without preferences neither true nor false is consistent for Q1.
        let q1 = engine.consistent_answer_text(Q1, FamilyKind::Rep).unwrap();
        assert!(q1.is_undetermined());

        // Example 3: s3 is less reliable than s1 and s2; under G-Rep, Q2 becomes true.
        let mut order = SourceOrder::new();
        order.prefer("s1", "s3").prefer("s2", "s3");
        let sources = vec!["s1".to_string(), "s2".to_string(), "s3".to_string(), "s3".to_string()];
        engine.set_priority_from_sources(&sources, &order);
        assert_eq!(engine.preferred_repairs(FamilyKind::Global, 10).len(), 2);
        let q2 = engine.consistent_answer_text(Q2, FamilyKind::Global).unwrap();
        assert!(q2.certainly_true);
        // Q1 is now certainly false under the preferred repairs.
        let q1 = engine.consistent_answer_text(Q1, FamilyKind::Global).unwrap();
        assert!(q1.certainly_false);
    }

    #[test]
    fn ground_queries_use_the_fast_path_under_rep() {
        let engine = example1_engine();
        let outcome = engine
            .consistent_answer_text(
                "Mgr('Mary','R&D',40,3) OR Mgr('Mary','IT',20,1)",
                FamilyKind::Rep,
            )
            .unwrap();
        assert!(outcome.certainly_true);
        // The fast path does not enumerate repairs.
        assert_eq!(outcome.examined, 0);
        // Under another family the generic path is used and repairs are examined.
        let outcome = engine
            .consistent_answer_text(
                "Mgr('Mary','R&D',40,3) OR Mgr('Mary','IT',20,1)",
                FamilyKind::Global,
            )
            .unwrap();
        assert!(outcome.certainly_true);
        assert!(outcome.examined > 0);
    }

    #[test]
    fn cleaning_requires_and_uses_a_total_priority() {
        let mut engine = example1_engine();
        assert!(engine.clean().is_err());
        // Salary as the score yields a total priority on Example 1's conflicts.
        engine.set_priority_from_scores(&[40, 10, 20, 30]);
        assert!(engine.priority().is_total());
        let cleaned = engine.clean().unwrap();
        assert!(engine.context().is_repair(&cleaned));
        // The cleaning outcome is the unique preferred repair of C-Rep and G-Rep (P4).
        assert_eq!(engine.preferred_repairs(FamilyKind::Common, 10), vec![cleaned.clone()]);
        assert_eq!(engine.preferred_repairs(FamilyKind::Global, 10), vec![cleaned]);
    }

    #[test]
    fn priority_pairs_constructor_validates_against_the_conflict_graph() {
        let ctx = example1();
        let engine = PdqiEngine::with_priority_pairs(
            ctx.instance().clone(),
            ctx.fds().clone(),
            &[(TupleId(0), TupleId(1))],
        )
        .unwrap();
        assert_eq!(engine.priority().edge_count(), 1);
        assert!(PdqiEngine::with_priority_pairs(
            ctx.instance().clone(),
            ctx.fds().clone(),
            &[(TupleId(0), TupleId(3))],
        )
        .is_err());
    }

    #[test]
    fn open_query_answers_are_exposed() {
        let engine = example1_engine();
        let query = parse_formula("EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
        assert_eq!(engine.certain_answers(&query, FamilyKind::Rep).unwrap().len(), 2);
        assert_eq!(engine.possible_answers(&query, FamilyKind::Rep).unwrap().len(), 2);
    }

    #[test]
    fn preferred_repair_checking_is_exposed() {
        let mut engine = example1_engine();
        engine.set_priority_from_scores(&[40, 10, 20, 30]);
        let preferred = engine.preferred_repairs(FamilyKind::Global, 10);
        assert_eq!(preferred.len(), 1);
        assert!(engine.is_preferred_repair(FamilyKind::Global, &preferred[0]));
        for repair in engine.repairs(10) {
            if repair != preferred[0] {
                assert!(!engine.is_preferred_repair(FamilyKind::Global, &repair));
            }
        }
    }

    #[test]
    fn the_shim_and_the_snapshot_share_one_memo() {
        let mut engine = example1_engine();
        engine.set_priority_from_scores(&[40, 10, 20, 30]);
        engine.preferred_repairs(FamilyKind::Global, 10);
        let warmed = engine.snapshot().memo_stats();
        assert!(warmed.component_misses > 0);
        // Running the same enumeration through the snapshot hits the shared memo.
        engine.snapshot().preferred_repairs(FamilyKind::Global, 10);
        let after = engine.snapshot().memo_stats();
        assert_eq!(after.component_misses, warmed.component_misses);
        assert!(after.component_hits > warmed.component_hits);
    }
}
