//! The paper's optimality notions (Section 3).
//!
//! Properties P1–P4 alone do not force a family of preferred repairs to actually *use*
//! the priority (Example 6), so the paper introduces three increasingly aggressive
//! notions of repair optimality:
//!
//! 1. **locally optimal** — no single tuple of the repair can be swapped for a dominating
//!    tuple while staying consistent;
//! 2. **semi-globally optimal** — no *set* of tuples of the repair can be swapped for a
//!    single tuple dominating all of them while staying consistent;
//! 3. **globally optimal** — characterised by Proposition 5 as `≪`-maximality, where
//!    `r1 ≪ r2` iff every tuple of `r1 \ r2` is dominated by some tuple of `r2 \ r1`.
//!
//! Global optimality implies semi-global optimality implies local optimality. Local and
//! semi-global optimality are decidable in polynomial time (Theorem 4, Corollary 1);
//! global optimality is co-NP-complete (Theorem 5) and is decided here by the
//! backtracking search of [`pdqi_solve::search`].

use pdqi_constraints::ConflictGraph;
use pdqi_priority::Priority;
use pdqi_relation::{TupleId, TupleSet};

/// The `≪` relation of Proposition 5: `r2` is preferred over `r1` iff every tuple of
/// `r1 \ r2` is dominated by some tuple of `r2 \ r1`.
///
/// Note that `r ≪ r` holds vacuously for every repair (the difference is empty); the
/// paper's maximality condition therefore quantifies over *other* repairs only.
pub fn preferred_over(priority: &Priority, r1: &TupleSet, r2: &TupleSet) -> bool {
    pdqi_solve::search::dominates_base(priority, r1, r2)
}

/// Whether the repair is **locally optimal**: there is no tuple `x ∈ repair` and tuple
/// `y` with `y ≻ x` such that `(repair \ {x}) ∪ {y}` is consistent.
///
/// `repair` is assumed to be a repair of `graph` (a maximal independent set).
pub fn is_locally_optimal(graph: &ConflictGraph, priority: &Priority, repair: &TupleSet) -> bool {
    // A swap of x for y keeps consistency iff y's only neighbour inside the repair is x.
    // Scan candidate replacements y outside the repair.
    for y in 0..graph.vertex_count() {
        let y = TupleId(y as u32);
        if repair.contains(y) {
            continue;
        }
        let inside = graph.neighbors(y).intersection(repair);
        if inside.len() != 1 {
            continue;
        }
        let x = inside.first().expect("the intersection has exactly one member");
        if priority.dominates(y, x) {
            return false;
        }
    }
    true
}

/// Whether the repair is **semi-globally optimal**: there is no nonempty set
/// `X ⊆ repair` and tuple `y` with `y ≻ x` for every `x ∈ X` such that
/// `(repair \ X) ∪ {y}` is consistent.
///
/// Equivalently (as observed in Section 4.2 of the paper): there is no tuple `y` outside
/// the repair all of whose neighbours inside the repair are dominated by `y`.
pub fn is_semi_globally_optimal(
    graph: &ConflictGraph,
    priority: &Priority,
    repair: &TupleSet,
) -> bool {
    for y in 0..graph.vertex_count() {
        let y = TupleId(y as u32);
        if repair.contains(y) {
            continue;
        }
        let inside = graph.neighbors(y).intersection(repair);
        // `repair` is maximal, so `inside` is nonempty for every outside tuple; the guard
        // keeps the predicate meaningful for arbitrary consistent subsets as well.
        if inside.is_empty() {
            continue;
        }
        if inside.iter().all(|x| priority.dominates(y, x)) {
            return false;
        }
    }
    true
}

/// Whether the repair is **globally optimal**, via the `≪`-maximality characterisation of
/// Proposition 5: no other repair `≪`-dominates it. This is the co-NP-hard check of
/// Theorem 5; it is decided by backtracking search over the repairs of the conflict
/// graph with domination-aware pruning.
pub fn is_globally_optimal(graph: &ConflictGraph, priority: &Priority, repair: &TupleSet) -> bool {
    pdqi_solve::exists_dominating_repair(graph, priority, repair).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::fixtures::*;

    #[test]
    fn example_7_only_ta_is_locally_optimal() {
        let (ctx, priority) = example7();
        let repairs = ctx.repairs(10);
        assert_eq!(repairs.len(), 3);
        let ta = TupleSet::from_ids([TupleId(0)]);
        for repair in &repairs {
            let expected = *repair == ta;
            assert_eq!(is_locally_optimal(ctx.graph(), &priority, repair), expected);
        }
    }

    #[test]
    fn example_8_local_optimality_is_too_weak_but_semi_global_is_not() {
        let (ctx, priority) = example8();
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(1)]); // {ta, tb}
        let r2 = TupleSet::from_ids([TupleId(2)]); // {tc}
                                                   // Both repairs are locally optimal (Example 8) ...
        assert!(is_locally_optimal(ctx.graph(), &priority, &r1));
        assert!(is_locally_optimal(ctx.graph(), &priority, &r2));
        // ... but only {tc} is semi-globally optimal (Section 3.2).
        assert!(!is_semi_globally_optimal(ctx.graph(), &priority, &r1));
        assert!(is_semi_globally_optimal(ctx.graph(), &priority, &r2));
        // Global optimality agrees with semi-global here (one FD, Prop. 4).
        assert!(!is_globally_optimal(ctx.graph(), &priority, &r1));
        assert!(is_globally_optimal(ctx.graph(), &priority, &r2));
    }

    #[test]
    fn example_9_intended_semi_global_optimality_is_too_weak_but_global_is_not() {
        // The reconstructed Example 9 scenario (see the fixture's erratum note): two
        // repairs, both semi-globally optimal, only one globally optimal.
        let (ctx, priority) = example9_intended();
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(4)]); // {ta, tc, te}
        let r2 = TupleSet::from_ids([TupleId(1), TupleId(3)]); // {tb, td}
        let repairs = ctx.repairs(10);
        assert_eq!(repairs.len(), 2);
        assert!(repairs.contains(&r1) && repairs.contains(&r2));
        // Both repairs are semi-globally optimal (Example 9's narrative) ...
        assert!(is_semi_globally_optimal(ctx.graph(), &priority, &r1));
        assert!(is_semi_globally_optimal(ctx.graph(), &priority, &r2));
        // ... but only r1 is globally optimal (Section 3.3).
        assert!(is_globally_optimal(ctx.graph(), &priority, &r1));
        assert!(!is_globally_optimal(ctx.graph(), &priority, &r2));
    }

    #[test]
    fn example_9_literal_data_erratum() {
        // With the tuple values exactly as printed in the paper, the conflict graph is a
        // 5-vertex path: it has four repairs (not two), and under the stated total
        // priority only the alternating repair {ta, tc, te} is even locally optimal.
        let (ctx, priority) = example9();
        let repairs = ctx.repairs(10);
        assert_eq!(repairs.len(), 4);
        let alternating = TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(4)]);
        for repair in &repairs {
            let expected = *repair == alternating;
            assert_eq!(is_locally_optimal(ctx.graph(), &priority, repair), expected);
            assert_eq!(is_semi_globally_optimal(ctx.graph(), &priority, repair), expected);
            assert_eq!(is_globally_optimal(ctx.graph(), &priority, repair), expected);
        }
    }

    #[test]
    fn optimality_notions_form_a_hierarchy() {
        // On every repair of the paper's examples: globally ⊆ semi-globally ⊆ locally optimal.
        for (ctx, priority) in [example7(), example8(), example9(), example9_intended()] {
            for repair in ctx.repairs(100) {
                let local = is_locally_optimal(ctx.graph(), &priority, &repair);
                let semi = is_semi_globally_optimal(ctx.graph(), &priority, &repair);
                let global = is_globally_optimal(ctx.graph(), &priority, &repair);
                assert!(!global || semi, "global optimality must imply semi-global optimality");
                assert!(!semi || local, "semi-global optimality must imply local optimality");
            }
        }
    }

    #[test]
    fn with_the_empty_priority_every_repair_is_optimal() {
        let ctx = example1();
        let empty = ctx.empty_priority();
        for repair in ctx.repairs(10) {
            assert!(is_locally_optimal(ctx.graph(), &empty, &repair));
            assert!(is_semi_globally_optimal(ctx.graph(), &empty, &repair));
            assert!(is_globally_optimal(ctx.graph(), &empty, &repair));
        }
    }

    #[test]
    fn preferred_over_matches_the_definition_on_example_9() {
        let (_, priority) = example9();
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(4)]);
        let r2 = TupleSet::from_ids([TupleId(1), TupleId(3)]);
        assert!(preferred_over(&priority, &r2, &r1)); // r2 ≪ r1
        assert!(!preferred_over(&priority, &r1, &r2));
    }
}
