//! Key-range shard plans: mapping one logical relation onto N shard endpoints.
//!
//! A [`ShardPlan`] describes how a relation's rows are partitioned across shards by a
//! **key column**: `n - 1` strictly ascending split values carve the key domain into
//! `n` contiguous ranges, and [`ShardPlan::shard_of`] routes a key to the shard whose
//! range contains it (shard `i` owns keys in `[splits[i-1], splits[i])`, with the
//! first and last ranges open-ended). The scatter-gather coordinator uses the plan to
//! route mutations to the owning shard; query fan-out needs no plan at all because
//! certain/possible folds merge associatively across shards.
//!
//! The soundness contract the coordinator relies on — and the datagen splitter
//! enforces — is that **no conflict edge crosses a shard boundary**: tuples that
//! violate a functional dependency together agree on the FD's left-hand side, so
//! splitting between distinct key values of an FD-key column keeps every conflict
//! (and hence every conflict-graph component and every repair choice) local to one
//! shard. Under that invariant the global repair product factorises as the cartesian
//! product of per-shard products, in shard order.
//!
//! [`RouteSpec`] is the untyped CLI surface (`Mgr:Name:John,Paula` — table, key
//! column *name*, comma-separated split values): the coordinator resolves the column
//! name and value type against the served schema at startup and types the splits into
//! a [`ShardPlan`].

use std::fmt;

use pdqi_relation::{Value, ValueType};

/// Errors building or parsing a shard plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlanError {
    /// The split values were not strictly ascending.
    UnorderedSplits {
        /// The offending adjacent pair, rendered.
        pair: (String, String),
    },
    /// A route description did not have the `table:key:split,…` shape.
    Malformed {
        /// The offending text.
        text: String,
    },
    /// A split value could not be typed against the key column's type.
    BadSplit {
        /// The raw split text.
        text: String,
        /// The key column's type.
        ty: ValueType,
    },
}

impl fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardPlanError::UnorderedSplits { pair } => write!(
                f,
                "split values must be strictly ascending (`{}` is not below `{}`)",
                pair.0, pair.1
            ),
            ShardPlanError::Malformed { text } => {
                write!(f, "`{text}` is not a route (use `<table>:<key column>:<split>,<split>,…`)")
            }
            ShardPlanError::BadSplit { text, ty } => {
                write!(f, "split value `{text}` does not have the key column's type {ty:?}")
            }
        }
    }
}

impl std::error::Error for ShardPlanError {}

/// A key-range partition of one relation over `splits.len() + 1` shards.
///
/// ```
/// use pdqi_core::ShardPlan;
/// use pdqi_relation::Value;
///
/// let plan = ShardPlan::new("R", 0, vec![Value::int(10), Value::int(20)]).unwrap();
/// assert_eq!(plan.shard_count(), 3);
/// assert_eq!(plan.shard_of(&Value::int(3)), 0);
/// assert_eq!(plan.shard_of(&Value::int(10)), 1); // a split value starts the next range
/// assert_eq!(plan.shard_of(&Value::int(25)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    table: String,
    key_column: usize,
    splits: Vec<Value>,
}

impl ShardPlan {
    /// Builds a plan from typed split values, which must be strictly ascending.
    pub fn new(
        table: impl Into<String>,
        key_column: usize,
        splits: Vec<Value>,
    ) -> Result<ShardPlan, ShardPlanError> {
        for pair in splits.windows(2) {
            if pair[0] >= pair[1] {
                return Err(ShardPlanError::UnorderedSplits {
                    pair: (pair[0].to_string(), pair[1].to_string()),
                });
            }
        }
        Ok(ShardPlan { table: table.into(), key_column, splits })
    }

    /// The partitioned relation's name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The index of the key column within the relation's schema.
    pub fn key_column(&self) -> usize {
        self.key_column
    }

    /// The split values: `shard_count() - 1` strictly ascending keys, each the first
    /// key of the next shard's range.
    pub fn splits(&self) -> &[Value] {
        &self.splits
    }

    /// The number of shards the plan distributes over.
    pub fn shard_count(&self) -> usize {
        self.splits.len() + 1
    }

    /// The shard owning `key`: the number of split values at or below it.
    pub fn shard_of(&self, key: &Value) -> usize {
        self.splits.partition_point(|split| split <= key)
    }
}

/// An untyped route description: what `pdqi coord --route Mgr:Name:John,Paula`
/// carries before the served schema is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSpec {
    /// The partitioned relation's name.
    pub table: String,
    /// The key column's **name** (resolved to an index against the schema).
    pub key_column: String,
    /// The raw split values, typed once the key column's type is known.
    pub splits: Vec<String>,
}

impl RouteSpec {
    /// Parses `table:key_column:split,split,…` (an empty split list — a single-shard
    /// route — is written with a trailing colon: `Mgr:Name:`).
    pub fn parse(text: &str) -> Result<RouteSpec, ShardPlanError> {
        let mut parts = text.splitn(3, ':');
        let (Some(table), Some(key_column), Some(split_text)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(ShardPlanError::Malformed { text: text.to_string() });
        };
        if table.is_empty() || key_column.is_empty() {
            return Err(ShardPlanError::Malformed { text: text.to_string() });
        }
        let splits = if split_text.is_empty() {
            Vec::new()
        } else {
            split_text.split(',').map(|s| s.trim().to_string()).collect()
        };
        Ok(RouteSpec { table: table.to_string(), key_column: key_column.to_string(), splits })
    }

    /// Types the raw splits against the key column's resolved index and type.
    pub fn typed(&self, key_column: usize, ty: ValueType) -> Result<ShardPlan, ShardPlanError> {
        let splits = self
            .splits
            .iter()
            .map(|text| type_value(text, ty))
            .collect::<Result<Vec<Value>, _>>()?;
        ShardPlan::new(self.table.clone(), key_column, splits)
    }
}

impl fmt::Display for RouteSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.table, self.key_column, self.splits.join(","))
    }
}

/// Types one raw field against a column type — the same convention the wire protocol
/// uses for mutation rows.
pub fn type_value(text: &str, ty: ValueType) -> Result<Value, ShardPlanError> {
    match ty {
        ValueType::Int => text
            .parse::<i64>()
            .map(Value::int)
            .map_err(|_| ShardPlanError::BadSplit { text: text.to_string(), ty }),
        ValueType::Name => Ok(Value::name(text)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_routes_by_key_range() {
        let plan = ShardPlan::new("R", 0, vec![Value::int(10), Value::int(20)]).unwrap();
        assert_eq!(plan.shard_count(), 3);
        for (key, shard) in [(i64::MIN, 0), (9, 0), (10, 1), (19, 1), (20, 2), (i64::MAX, 2)] {
            assert_eq!(plan.shard_of(&Value::int(key)), shard, "key {key}");
        }
        let single = ShardPlan::new("R", 0, Vec::new()).unwrap();
        assert_eq!(single.shard_count(), 1);
        assert_eq!(single.shard_of(&Value::int(7)), 0);
    }

    #[test]
    fn name_keys_route_lexicographically() {
        let plan = ShardPlan::new("Mgr", 0, vec![Value::name("M")]).unwrap();
        assert_eq!(plan.shard_of(&Value::name("John")), 0);
        assert_eq!(plan.shard_of(&Value::name("M")), 1);
        assert_eq!(plan.shard_of(&Value::name("Mary")), 1);
    }

    #[test]
    fn unordered_splits_are_rejected() {
        assert!(matches!(
            ShardPlan::new("R", 0, vec![Value::int(20), Value::int(10)]),
            Err(ShardPlanError::UnorderedSplits { .. })
        ));
        assert!(matches!(
            ShardPlan::new("R", 0, vec![Value::int(10), Value::int(10)]),
            Err(ShardPlanError::UnorderedSplits { .. })
        ));
    }

    #[test]
    fn routes_parse_and_type() {
        let route = RouteSpec::parse("Mgr:Name:John,Paula").unwrap();
        assert_eq!(route.table, "Mgr");
        assert_eq!(route.key_column, "Name");
        assert_eq!(route.splits, ["John", "Paula"]);
        assert_eq!(route.to_string(), "Mgr:Name:John,Paula");

        let plan = route.typed(0, ValueType::Name).unwrap();
        assert_eq!(plan.shard_count(), 3);
        assert_eq!(plan.shard_of(&Value::name("Alice")), 0);
        assert_eq!(plan.shard_of(&Value::name("Zoe")), 2);

        let numeric = RouteSpec::parse("R:A:10,20").unwrap().typed(0, ValueType::Int).unwrap();
        assert_eq!(numeric.shard_of(&Value::int(15)), 1);
        // Numeric keys route numerically, not lexicographically.
        let wide = RouteSpec::parse("R:A:100").unwrap().typed(0, ValueType::Int).unwrap();
        assert_eq!(wide.shard_of(&Value::int(99)), 0);

        let single = RouteSpec::parse("R:A:").unwrap();
        assert!(single.splits.is_empty());
        assert!(RouteSpec::parse("R").is_err());
        assert!(RouteSpec::parse("R:A").is_err());
        assert!(RouteSpec::parse(":A:1").is_err());
        assert!(RouteSpec::parse("R:A:x").unwrap().typed(0, ValueType::Int).is_err());
    }
}
