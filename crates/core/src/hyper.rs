//! Repairs under denial constraints (the paper's Section 6 generalisation).
//!
//! The concluding section of the paper observes that conflict graphs generalise to
//! conflict *hypergraphs* when the constraint class is widened from functional
//! dependencies to denial constraints \[6\]: a hyperedge is a minimal set of tuples that
//! jointly violates some constraint, repairs are the maximal independent sets of the
//! hypergraph, and the current notion of priority "does not have a clear meaning" once a
//! conflict involves more than two tuples.
//!
//! [`HyperRepairContext`] implements the part that *is* well defined: repairs, repair
//! checking and (plain, preference-free) consistent query answering under denial
//! constraints. Priorities remain available through the ordinary [`crate::RepairContext`]
//! whenever every constraint is a functional dependency.

use std::ops::ControlFlow;

use pdqi_constraints::{ConflictHypergraph, DenialConstraint};
use pdqi_query::{Evaluator, Formula, QueryError};
use pdqi_relation::{RelationInstance, TupleSet};
use pdqi_solve::HypergraphMisEnumerator;

use crate::cqa::CqaOutcome;

/// An instance together with a set of denial constraints and its conflict hypergraph.
#[derive(Debug, Clone)]
pub struct HyperRepairContext {
    instance: RelationInstance,
    constraints: Vec<DenialConstraint>,
    hypergraph: ConflictHypergraph,
}

impl HyperRepairContext {
    /// Builds the context (and the conflict hypergraph) for `instance` under the denial
    /// constraints.
    pub fn new(instance: RelationInstance, constraints: Vec<DenialConstraint>) -> Self {
        let hypergraph = ConflictHypergraph::build(&instance, &constraints);
        HyperRepairContext { instance, constraints, hypergraph }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &RelationInstance {
        &self.instance
    }

    /// The denial constraints.
    pub fn constraints(&self) -> &[DenialConstraint] {
        &self.constraints
    }

    /// The conflict hypergraph.
    pub fn hypergraph(&self) -> &ConflictHypergraph {
        &self.hypergraph
    }

    /// Whether the instance satisfies every denial constraint.
    pub fn is_consistent(&self) -> bool {
        self.hypergraph.hyperedges().is_empty()
    }

    /// Repair checking: `candidate` is a repair iff it is a maximal independent set of
    /// the conflict hypergraph.
    pub fn is_repair(&self, candidate: &TupleSet) -> bool {
        candidate.is_subset_of(&self.instance.all_ids())
            && self.hypergraph.is_maximal_independent(candidate)
    }

    /// Visits every repair; the callback may stop early. Returns `true` when the
    /// enumeration ran to completion.
    pub fn for_each_repair<F>(&self, callback: F) -> bool
    where
        F: FnMut(&TupleSet) -> ControlFlow<()>,
    {
        HypergraphMisEnumerator::new(&self.hypergraph).for_each(callback)
    }

    /// Collects up to `limit` repairs.
    pub fn repairs(&self, limit: usize) -> Vec<TupleSet> {
        HypergraphMisEnumerator::new(&self.hypergraph).collect(limit)
    }

    /// The number of repairs (exhaustive enumeration).
    pub fn count_repairs(&self) -> u128 {
        HypergraphMisEnumerator::new(&self.hypergraph).count()
    }

    /// The consistent answer to a closed query under the (preference-free) repair
    /// semantics: both facets of [`CqaOutcome`] are computed by enumerating the repairs.
    pub fn consistent_answer(&self, query: &Formula) -> Result<CqaOutcome, QueryError> {
        let free = query.free_vars();
        if !free.is_empty() {
            return Err(QueryError::FreeVariables { variables: free });
        }
        let mut outcome = CqaOutcome { certainly_true: true, certainly_false: true, examined: 0 };
        let mut error: Option<QueryError> = None;
        self.for_each_repair(|repair| {
            let evaluator = Evaluator::with_restricted(&self.instance, repair);
            match evaluator.eval_closed(query) {
                Ok(true) => outcome.certainly_false = false,
                Ok(false) => outcome.certainly_true = false,
                Err(e) => {
                    error = Some(e);
                    return ControlFlow::Break(());
                }
            }
            outcome.examined += 1;
            if outcome.is_undetermined() {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        match error {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::{CompOp, DenialAtom, DenialTerm, FunctionalDependency};
    use pdqi_query::parse_formula;
    use pdqi_relation::{AttrId, RelationSchema, TupleId, Value, ValueType};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs(
                "Emp",
                &[("Name", ValueType::Name), ("Dept", ValueType::Name), ("Salary", ValueType::Int)],
            )
            .unwrap(),
        )
    }

    fn instance() -> RelationInstance {
        RelationInstance::from_rows(
            schema(),
            vec![
                vec!["Mary".into(), "R&D".into(), Value::int(40)],
                vec!["Mary".into(), "IT".into(), Value::int(20)],
                vec!["John".into(), "PR".into(), Value::int(200)],
            ],
        )
        .unwrap()
    }

    /// FD-derived constraints plus the single-tuple denial constraint "no salary above 100".
    fn constraints() -> Vec<DenialConstraint> {
        let s = schema();
        let fd = FunctionalDependency::parse(&s, "Name -> Dept Salary").unwrap();
        let mut constraints = DenialConstraint::from_fd(Arc::clone(&s), &fd);
        constraints.push(
            DenialConstraint::new(
                Arc::clone(&s),
                1,
                vec![DenialAtom {
                    left: DenialTerm::Attr { var: 0, attr: AttrId(2) },
                    op: CompOp::Gt,
                    right: DenialTerm::Const(Value::int(100)),
                }],
            )
            .unwrap(),
        );
        constraints
    }

    #[test]
    fn repairs_under_mixed_denial_constraints() {
        let ctx = HyperRepairContext::new(instance(), constraints());
        assert!(!ctx.is_consistent());
        // The two Mary tuples conflict (FD); John's tuple violates the salary cap on its
        // own, so it appears in no repair at all.
        let repairs = ctx.repairs(10);
        assert_eq!(ctx.count_repairs(), 2);
        for repair in &repairs {
            assert!(ctx.is_repair(repair));
            assert!(!repair.contains(TupleId(2)));
            assert_eq!(repair.len(), 1);
        }
        // A set containing the over-paid tuple is never a repair.
        assert!(!ctx.is_repair(&TupleSet::from_ids([TupleId(0), TupleId(2)])));
    }

    #[test]
    fn consistent_answers_under_denial_constraints() {
        let ctx = HyperRepairContext::new(instance(), constraints());
        // John is certainly gone (the single-tuple constraint removes him from every repair).
        let john = parse_formula("EXISTS d,s . Emp('John',d,s)").unwrap();
        assert!(ctx.consistent_answer(&john).unwrap().certainly_false);
        // Mary certainly remains, though her department is undetermined.
        let mary = parse_formula("EXISTS d,s . Emp('Mary',d,s)").unwrap();
        assert!(ctx.consistent_answer(&mary).unwrap().certainly_true);
        let mary_rd = parse_formula("Emp('Mary','R&D',40)").unwrap();
        assert!(ctx.consistent_answer(&mary_rd).unwrap().is_undetermined());
        // Open formulas are rejected.
        let open = parse_formula("Emp(x,'R&D',40)").unwrap();
        assert!(ctx.consistent_answer(&open).is_err());
    }

    #[test]
    fn a_consistent_instance_has_one_repair_and_determined_answers() {
        let consistent = RelationInstance::from_rows(
            schema(),
            vec![vec!["Mary".into(), "R&D".into(), Value::int(40)]],
        )
        .unwrap();
        let ctx = HyperRepairContext::new(consistent, constraints());
        assert!(ctx.is_consistent());
        assert_eq!(ctx.count_repairs(), 1);
        let query = parse_formula("Emp('Mary','R&D',40)").unwrap();
        assert!(ctx.consistent_answer(&query).unwrap().certainly_true);
    }
}
