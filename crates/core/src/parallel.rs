//! The parallel execution subsystem: a scoped-thread worker pool and the
//! [`BatchExecutor`] for multi-query serving.
//!
//! The paper's tractability results rest on conflict graphs factorising into independent
//! connected components, and the snapshot architecture materialises exactly that
//! structure: per-component preferred-repair enumeration is pure (it reads only the
//! immutable conflict graph and priority), and the component memo behind
//! [`EngineSnapshot`] is already synchronised. Parallelism is therefore an *execution
//! strategy*, never a semantics change — every parallel entry point produces results
//! bit-identical to its sequential counterpart:
//!
//! * [`EngineSnapshot::warm_components`](crate::EngineSnapshot::warm_components) fans
//!   per-component enumeration out across workers (components are independent jobs and
//!   each component's preferred repairs are a deterministic function of the snapshot);
//! * [`PreparedQuery::execute_with`](crate::PreparedQuery::execute_with) and
//!   [`PreparedQuery::consistent_answer_with`](crate::PreparedQuery::consistent_answer_with)
//!   split the cartesian repair product into contiguous chunks, evaluate chunks on
//!   workers, and merge in chunk order — set union/intersection make the merge
//!   order-insensitive, and closed outcomes are replayed in enumeration order so even
//!   the `examined` counter matches the sequential path;
//! * [`BatchExecutor`] answers many prepared queries against one shared snapshot
//!   concurrently (the multi-user serving shape), one query per worker at a time;
//! * [`EngineBuilder::build`](crate::EngineBuilder::build) fans conflict-graph shard
//!   scans and relation assembly out per `(relation, FD)` and per relation, and
//!   [`EngineSnapshot::with_priority_revalidated`](crate::EngineSnapshot::with_priority_revalidated)
//!   re-enumerates the invalidated memo entries across workers (see the shard-layer
//!   docs in [`crate::snapshot`]).
//!
//! The pool is dependency-free: plain [`std::thread::scope`] workers pulling job indices
//! from an atomic counter. Nothing here allocates threads when
//! [`Parallelism::sequential`] is in effect, so single-threaded callers pay nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pdqi_query::QueryError;

use crate::cqa::CqaOutcome;
use crate::families::FamilyKind;
use crate::prepared::{AnswerSet, ChunkTuner, PreparedQuery, Semantics};
use crate::snapshot::EngineSnapshot;

/// How many worker threads an operation may use.
///
/// A degree of `1` ([`Parallelism::sequential`], the default) runs everything inline on
/// the calling thread; higher degrees fan independent jobs out over scoped threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

/// Hard ceiling on the worker count. Repair work is CPU-bound, so degrees beyond the
/// hardware thread count only add scheduling overhead — and an unbounded user-supplied
/// degree (`--threads 100000`) would make the scoped spawn abort the process when the
/// OS refuses a thread.
///
/// This constant is the **single source of truth** for the clamp: front ends (the CLI's
/// `--threads` / `.threads`) must report it rather than hard-coding their own limit, so
/// the message a user sees can never drift from what the pool actually does.
pub const MAX_THREADS: usize = 256;

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

impl Parallelism {
    /// Run everything on the calling thread (the default).
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// Use up to `threads` workers (clamped to `1..=`[`MAX_THREADS`]).
    pub fn threads(threads: usize) -> Self {
        Parallelism { threads: threads.clamp(1, MAX_THREADS) }
    }

    /// Use one worker per hardware thread, as reported by
    /// [`std::thread::available_parallelism`] (falling back to 1).
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Parallelism::threads(threads)
    }

    /// The configured degree of parallelism (always at least 1).
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Whether work runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Workers actually worth spawning for `jobs` independent jobs.
    pub(crate) fn workers_for(&self, jobs: usize) -> usize {
        self.threads.min(jobs).max(1)
    }
}

/// Runs `jobs` independent jobs across the configured workers and returns their results
/// **in job order**, regardless of which worker finished which job when.
///
/// Jobs are pulled from a shared atomic counter (dynamic load balancing: a worker that
/// drew a cheap job immediately pulls the next one). With a sequential configuration, or
/// with fewer than two jobs, everything runs inline. A panicking job propagates its
/// panic to the caller.
pub(crate) fn run_jobs<T, F>(parallelism: Parallelism, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = parallelism.workers_for(jobs);
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= jobs {
                            break;
                        }
                        mine.push((index, run(index)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mine) => collected.extend(mine),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    collected.sort_unstable_by_key(|&(index, _)| index);
    collected.into_iter().map(|(_, value)| value).collect()
}

/// One request of a [`BatchExecutor`] batch.
#[derive(Debug, Clone)]
pub enum BatchRequest {
    /// Evaluate an open (or closed) query under the given family and semantics.
    Execute {
        /// The prepared query (shared, so batches can repeat queries cheaply).
        query: Arc<PreparedQuery>,
        /// The family of preferred repairs to quantify over.
        family: FamilyKind,
        /// Certain or possible answers.
        semantics: Semantics,
    },
    /// Compute the preferred consistent answer to a closed query.
    ConsistentAnswer {
        /// The prepared (closed) query.
        query: Arc<PreparedQuery>,
        /// The family of preferred repairs to quantify over.
        family: FamilyKind,
    },
}

impl BatchRequest {
    /// Convenience constructor for [`BatchRequest::Execute`].
    pub fn execute(query: Arc<PreparedQuery>, family: FamilyKind, semantics: Semantics) -> Self {
        BatchRequest::Execute { query, family, semantics }
    }

    /// Convenience constructor for [`BatchRequest::ConsistentAnswer`].
    pub fn consistent_answer(query: Arc<PreparedQuery>, family: FamilyKind) -> Self {
        BatchRequest::ConsistentAnswer { query, family }
    }
}

/// One successful batch result, mirroring the request shape.
#[derive(Debug, Clone)]
pub enum BatchResponse {
    /// Result of a [`BatchRequest::Execute`] request.
    Rows(AnswerSet),
    /// Result of a [`BatchRequest::ConsistentAnswer`] request.
    Outcome(CqaOutcome),
}

impl BatchResponse {
    /// The answer set, when the request was an [`BatchRequest::Execute`].
    pub fn rows(&self) -> Option<&AnswerSet> {
        match self {
            BatchResponse::Rows(answers) => Some(answers),
            BatchResponse::Outcome(_) => None,
        }
    }

    /// The closed outcome, when the request was a [`BatchRequest::ConsistentAnswer`].
    pub fn outcome(&self) -> Option<CqaOutcome> {
        match self {
            BatchResponse::Outcome(outcome) => Some(*outcome),
            BatchResponse::Rows(_) => None,
        }
    }
}

/// Answers many prepared queries against one immutable snapshot concurrently — the
/// multi-user serving shape: one snapshot, many sessions, interleaved queries.
///
/// Each request is answered on one worker (queries inside a batch do not split further),
/// so concurrent requests share the snapshot's component and answer memos: the first
/// query touching a component enumerates it, every later query on any worker reuses it.
/// Responses come back **in request order**, and every response is bit-identical to what
/// [`PreparedQuery::execute`] / [`PreparedQuery::consistent_answer`] would have produced
/// sequentially.
///
/// ```
/// use std::sync::Arc;
/// use pdqi_core::{
///     BatchExecutor, BatchRequest, EngineBuilder, FamilyKind, Parallelism, PreparedQuery,
///     Semantics,
/// };
/// # use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
/// # use pdqi_constraints::FdSet;
/// # let schema = Arc::new(RelationSchema::from_pairs(
/// #     "R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap());
/// # let instance = RelationInstance::from_rows(Arc::clone(&schema), vec![
/// #     vec![Value::int(1), Value::int(1)], vec![Value::int(1), Value::int(2)],
/// # ]).unwrap();
/// # let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
/// let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
/// let query = Arc::new(PreparedQuery::parse("EXISTS b . R(x,b)").unwrap());
/// let executor = BatchExecutor::with_parallelism(snapshot, Parallelism::threads(4));
/// let requests = vec![
///     BatchRequest::execute(Arc::clone(&query), FamilyKind::Rep, Semantics::Certain),
///     BatchRequest::execute(query, FamilyKind::Rep, Semantics::Possible),
/// ];
/// let responses = executor.run(&requests);
/// assert_eq!(responses.len(), 2);
/// assert!(responses.iter().all(Result::is_ok));
/// ```
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    snapshot: EngineSnapshot,
    parallelism: Parallelism,
    /// Measured-chunk feedback for single-request batches (see [`ChunkTuner`]); shared
    /// across clones so a long-lived server front end keeps one converging target.
    tuner: Arc<ChunkTuner>,
}

impl BatchExecutor {
    /// An executor over `snapshot` using one worker per hardware thread.
    pub fn new(snapshot: EngineSnapshot) -> Self {
        BatchExecutor::with_parallelism(snapshot, Parallelism::auto())
    }

    /// An executor over `snapshot` with an explicit degree of parallelism.
    pub fn with_parallelism(snapshot: EngineSnapshot, parallelism: Parallelism) -> Self {
        BatchExecutor::with_tuner(snapshot, parallelism, ChunkTuner::shared())
    }

    /// An executor sharing a caller-owned [`ChunkTuner`], so the measured chunk-cost
    /// target survives across executors (a serving front end builds one executor per
    /// request but wants one feedback loop per process).
    pub fn with_tuner(
        snapshot: EngineSnapshot,
        parallelism: Parallelism,
        tuner: Arc<ChunkTuner>,
    ) -> Self {
        BatchExecutor { snapshot, parallelism, tuner }
    }

    /// The snapshot every request is answered against.
    pub fn snapshot(&self) -> &EngineSnapshot {
        &self.snapshot
    }

    /// The configured degree of parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The chunk-cost feedback loop single-request batches execute under.
    pub fn tuner(&self) -> &Arc<ChunkTuner> {
        &self.tuner
    }

    /// Answers every request, returning responses in request order.
    ///
    /// Multi-request batches run one request per worker (requests are the parallel
    /// unit, sharing the snapshot's memos). A **single-request** batch instead splits
    /// its repair product into chunks across the whole pool — otherwise a lone `EXEC`
    /// would leave every other worker idle — with measured per-chunk wall-clock feeding
    /// the shared [`ChunkTuner`]. Either way each response is bit-identical to
    /// [`PreparedQuery::execute`] / [`PreparedQuery::consistent_answer`] on the same
    /// snapshot.
    pub fn run(&self, requests: &[BatchRequest]) -> Vec<Result<BatchResponse, QueryError>> {
        if requests.len() == 1 {
            let response = match &requests[0] {
                BatchRequest::Execute { query, family, semantics } => query
                    .execute_tuned(
                        &self.snapshot,
                        *family,
                        *semantics,
                        self.parallelism,
                        &self.tuner,
                    )
                    .map(BatchResponse::Rows),
                BatchRequest::ConsistentAnswer { query, family } => query
                    .consistent_answer_tuned(&self.snapshot, *family, self.parallelism, &self.tuner)
                    .map(BatchResponse::Outcome),
            };
            return vec![response];
        }
        run_jobs(self.parallelism, requests.len(), |index| match &requests[index] {
            BatchRequest::Execute { query, family, semantics } => {
                query.execute(&self.snapshot, *family, *semantics).map(BatchResponse::Rows)
            }
            BatchRequest::ConsistentAnswer { query, family } => {
                query.consistent_answer(&self.snapshot, *family).map(BatchResponse::Outcome)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_clamps_and_reports() {
        assert!(Parallelism::sequential().is_sequential());
        assert_eq!(Parallelism::threads(0).thread_count(), 1);
        assert_eq!(Parallelism::threads(8).thread_count(), 8);
        // Pathological degrees are clamped instead of spawning until the OS refuses.
        assert_eq!(Parallelism::threads(100_000).thread_count(), MAX_THREADS);
        assert_eq!(Parallelism::threads(usize::MAX).thread_count(), MAX_THREADS);
        assert!(Parallelism::auto().thread_count() >= 1);
        assert_eq!(Parallelism::threads(8).workers_for(3), 3);
        assert_eq!(Parallelism::threads(2).workers_for(100), 2);
        assert_eq!(Parallelism::threads(4).workers_for(0), 1);
        assert_eq!(Parallelism::default(), Parallelism::sequential());
    }

    #[test]
    fn run_jobs_preserves_job_order() {
        for parallelism in [Parallelism::sequential(), Parallelism::threads(4)] {
            let doubled = run_jobs(parallelism, 64, |i| i * 2);
            assert_eq!(doubled, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = run_jobs(Parallelism::threads(4), 0, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn run_jobs_runs_every_job_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_jobs(Parallelism::threads(8), 100, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
