//! Catalog and statement execution.
//!
//! [`Session`] is a thin view over a shared serving core: it owns the table *catalog*
//! (schemas, rows, FDs, preferences) but the snapshots themselves live in a
//! [`SnapshotRegistry`] — one atomically-swappable [`Arc<EngineSnapshot>`] per table.
//! Several sessions constructed with [`Session::with_registry`] serve **one snapshot
//! set**: a table published by any of them is readable by all, and a revision swapped
//! into the registry (for example by the `pdqi-server` front end) is what every later
//! `SELECT … WITH REPAIRS` answers against.
//!
//! Two cache layers keep repeated statements cheap, both flowing through the
//! `pdqi-core` prepared-query pipeline:
//!
//! * the registry's per-table snapshot, built on first use. `INSERT` and `DELETE`
//!   publish **delta-derived** replacements through [`SnapshotRegistry::apply`] — only
//!   the conflict components the mutation touches are re-partitioned and re-enumerated,
//!   everything else (including the memo) carries over. `ALTER TABLE … ADD FD` derives
//!   through [`EngineSnapshot::with_fd_added`](EngineSnapshot::with_fd_added) (new
//!   edges are scanned only inside the added FD's LHS groups), and `PREFER` statements
//!   **coalesce**: consecutive preferences on one table batch into a single
//!   priority-revalidation derivation + swap at the next read, mirroring how `MUTATE`
//!   batches rows. Every delta path is a registry compare-and-swap, falling back to a
//!   rebuild only when another writer got between this session and the registry (see
//!   [`Session::schema_delta_stats`] for the accounting). Repeated `SELECT`s against
//!   an unchanged table share the snapshot's component and answer memos, across every
//!   session on the registry;
//! * a per-statement-text [`PreparedQuery`], so re-executing the same `SELECT` skips
//!   SQL-to-formula planning entirely. Prepared statements survive table mutations and
//!   FD additions — they depend only on the relation's column shape, which the current
//!   SQL surface never alters (FDs constrain rows, they do not reshape them).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use pdqi_constraints::{FdSet, FunctionalDependency};
use pdqi_core::{
    ChangeScope, ChunkTuner, EngineBuilder, EngineSnapshot, Mutation, Parallelism, PreparedQuery,
    ReviseError, Semantics, SnapshotLease, SnapshotRegistry, SubscribeOptions, Subscribed,
    SubscriptionEvent, SubscriptionInfo, SubscriptionManager, WindowStats,
};
use pdqi_query::builder::{and_all, atom, exists, var};
use pdqi_query::{Evaluator, Formula, Term};
use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

use crate::parser::{
    parse_statement, ColumnType, ConditionRhs, SelectStatement, SqlParseError, Statement,
};

/// Errors raised while executing SQL statements.
#[derive(Debug)]
pub enum SqlError {
    /// The statement could not be parsed.
    Parse(SqlParseError),
    /// The statement refers to an unknown table.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// The statement refers to an unknown column.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A row, FD or preference did not fit the table's schema.
    Schema(String),
    /// A query could not be evaluated.
    Query(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            SqlError::TableExists(t) => write!(f, "table `{t}` already exists"),
            SqlError::UnknownColumn { table, column } => {
                write!(f, "table `{table}` has no column `{column}`")
            }
            SqlError::Schema(message) | SqlError::Query(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<SqlParseError> for SqlError {
    fn from(e: SqlParseError) -> Self {
        SqlError::Parse(e)
    }
}

/// A query result: column headers plus rows of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Column headers (the projected columns).
    pub columns: Vec<String>,
    /// Result rows, sorted and de-duplicated.
    pub rows: Vec<Vec<Value>>,
}

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatementOutcome {
    /// A table was created.
    Created,
    /// A functional dependency was recorded.
    FdAdded,
    /// Rows were inserted (duplicates collapse under set semantics).
    Inserted(usize),
    /// Tuples were removed (the count is distinct stored tuples actually deleted).
    Deleted(usize),
    /// A preference was recorded.
    PreferenceAdded,
    /// A query produced rows.
    Rows(QueryResult),
    /// An `EXPLAIN` produced a plan report: the costed physical plan the planner
    /// chose (or the naive marker when planning is disabled), followed by the
    /// post-execution actuals.
    Plan(String),
}

#[derive(Debug, Clone)]
struct Table {
    schema: Arc<RelationSchema>,
    rows: Vec<Vec<Value>>,
    fds: Vec<String>,
    preferences: Vec<(Vec<Value>, Vec<Value>)>,
}

/// Cap on cached `SELECT` plans per session (cleared wholesale when exceeded).
const PREPARED_CACHE_LIMIT: usize = 1024;

/// A `SELECT` planned once: the projected columns and the prepared formula.
#[derive(Debug, Clone)]
struct PreparedSelect {
    projected: Vec<String>,
    query: Arc<PreparedQuery>,
}

/// Schema/constraint delta accounting for one session: how many `ALTER TABLE … ADD FD`
/// and `PREFER` statements were applied as registry **deltas** (a derived snapshot
/// compare-and-swapped into the slot) versus falling back to full rebuilds, and how
/// effectively consecutive `PREFER`s coalesced into shared swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemaDeltaStats {
    /// `ALTER TABLE … ADD FD` statements applied through
    /// [`EngineSnapshot::with_fd_added`](EngineSnapshot::with_fd_added).
    pub fds_delta: u64,
    /// `ALTER TABLE … ADD FD` statements that fell back to the mark-stale/rebuild path.
    pub fds_rebuild: u64,
    /// Coalesced `PREFER` flushes applied as priority-revalidation derivations — one
    /// swap per table per read boundary, however many statements were batched into it.
    pub prefers_delta: u64,
    /// `PREFER` statements whose installation fell back to the rebuild path.
    pub prefers_rebuild: u64,
    /// `PREFER` statements absorbed into delta flushes. Always `≥ prefers_delta`; the
    /// gap is statements that shared a swap with an earlier queued preference.
    pub prefers_coalesced: u64,
}

/// An interactive session: a catalog of tables, their constraints, their data and the
/// preferences accumulated so far, serving snapshots out of a (possibly shared)
/// [`SnapshotRegistry`] as described in the [module docs](self).
#[derive(Debug)]
pub struct Session {
    tables: BTreeMap<String, Table>,
    /// The serving core: per-table snapshots, shared with every other session (and
    /// server) constructed over the same registry.
    registry: Arc<SnapshotRegistry>,
    /// Tables whose published snapshot no longer reflects this session's catalog; the
    /// next snapshot read rebuilds and re-publishes through the registry. Every
    /// catalog-changing statement avoids this path when the registry still serves the
    /// snapshot this session last wrote: `INSERT`/`DELETE` apply **as mutation
    /// deltas** (see [`SnapshotRegistry::apply`]), `ALTER TABLE … ADD FD` as a
    /// schema delta, and queued `PREFER`s as one coalesced priority derivation.
    stale: BTreeSet<String>,
    /// Per-table count of `PREFER` statements recorded in the catalog but not yet
    /// installed into the served snapshot; they flush as **one** coalesced
    /// priority-revalidation swap right before the next snapshot read.
    pending_prefers: BTreeMap<String, u64>,
    /// Delta-vs-rebuild accounting for `ALTER`/`PREFER` (see [`SchemaDeltaStats`]).
    schema_stats: SchemaDeltaStats,
    /// The registry generation of this session's last write per table. A delta only
    /// applies when the current generation still matches — another writer having
    /// swapped the slot since means the served snapshot no longer corresponds to this
    /// session's rows, so the mutation falls back to the rebuild path.
    published_gen: BTreeMap<String, u64>,
    /// Per-statement-text prepared `SELECT`s.
    prepared: HashMap<String, PreparedSelect>,
    /// Worker threads used by repair-quantified `SELECT`s (sequential by default).
    parallelism: Parallelism,
    /// Measured-chunk feedback for repair-quantified `SELECT`s: long-lived sessions
    /// converge the parallel chunk split towards real per-chunk wall-clock.
    tuner: Arc<ChunkTuner>,
    /// Continuous queries registered through [`Session::subscribe`]; created (and
    /// attached to the registry) on first use.
    subscriptions: Option<Arc<SubscriptionManager>>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Creates an empty session over its own private registry.
    pub fn new() -> Self {
        Session::with_registry(SnapshotRegistry::shared())
    }

    /// Creates an empty session serving snapshots out of `registry`. Sessions sharing a
    /// registry share one snapshot set: publishes and revisions made by any of them
    /// (or by a server front end over the same registry) are visible to all.
    pub fn with_registry(registry: Arc<SnapshotRegistry>) -> Self {
        Session {
            tables: BTreeMap::new(),
            registry,
            stale: BTreeSet::new(),
            pending_prefers: BTreeMap::new(),
            schema_stats: SchemaDeltaStats::default(),
            published_gen: BTreeMap::new(),
            prepared: HashMap::new(),
            parallelism: Parallelism::default(),
            tuner: ChunkTuner::shared(),
            subscriptions: None,
        }
    }

    /// The registry this session serves snapshots from.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// The chunk-cost feedback loop this session's repair-quantified `SELECT`s run
    /// under: measured per-chunk wall-clock moves the target work per chunk, so
    /// long-lived sessions split repair products by observed cost instead of the static
    /// guess. Inspect it through [`ChunkTuner::stats`].
    pub fn chunk_tuner(&self) -> &Arc<ChunkTuner> {
        &self.tuner
    }

    /// Sets the degree of parallelism used by `SELECT … WITH REPAIRS` statements **and**
    /// by snapshot builds (the sharded builder fans conflict-graph shards across the
    /// same pool). Parallel execution and parallel builds are bit-identical to their
    /// sequential counterparts; this only trades threads for latency on large tables
    /// and repair spaces.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The degree of parallelism repair-quantified `SELECT`s and snapshot builds run
    /// with.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Parses and executes one statement.
    pub fn execute(&mut self, sql: &str) -> Result<StatementOutcome, SqlError> {
        let statement = parse_statement(sql)?;
        if let Statement::Select(select) = statement {
            return self.select(sql.trim(), &select);
        }
        if let Statement::Explain(select) = statement {
            // Strip the leading `EXPLAIN` keyword so the underlying SELECT shares
            // its prepared-statement cache entry (and engine fingerprint) with
            // direct executions of the same statement.
            let inner = sql.trim()["EXPLAIN".len()..].trim_start();
            return self.explain(inner, &select);
        }
        self.run(statement)
    }

    /// Executes a sequence of `;`-separated statements, returning the outcome of each.
    pub fn execute_script(&mut self, script: &str) -> Result<Vec<StatementOutcome>, SqlError> {
        script
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty() && !s.starts_with("--"))
            .map(|statement| self.execute(statement))
            .collect()
    }

    fn run(&mut self, statement: Statement) -> Result<StatementOutcome, SqlError> {
        match statement {
            Statement::CreateTable { name, columns } => {
                if self.tables.contains_key(&name) {
                    return Err(SqlError::TableExists(name));
                }
                let defs: Vec<(&str, ValueType)> = columns
                    .iter()
                    .map(|(column, ty)| {
                        (
                            column.as_str(),
                            match ty {
                                ColumnType::Int => ValueType::Int,
                                ColumnType::Text => ValueType::Name,
                            },
                        )
                    })
                    .collect();
                let schema = RelationSchema::from_pairs(&name, &defs)
                    .map_err(|e| SqlError::Schema(e.to_string()))?;
                // Mark the new table stale: a shared registry may already serve a
                // same-named snapshot published by a sibling session, which must not
                // shadow the (empty) table this session just defined.
                self.stale.insert(name.clone());
                self.pending_prefers.remove(&name);
                self.tables.insert(
                    name,
                    Table {
                        schema: Arc::new(schema),
                        rows: Vec::new(),
                        fds: Vec::new(),
                        preferences: Vec::new(),
                    },
                );
                Ok(StatementOutcome::Created)
            }
            Statement::AddFd { table, fd } => {
                let entry = self.table_mut(&table)?;
                // Validate the FD against the schema before recording it.
                let parsed = FunctionalDependency::parse(&entry.schema, &fd)
                    .map_err(|e| SqlError::Schema(e.to_string()))?;
                entry.fds.push(fd);
                self.add_fd_or_mark_stale(&table, parsed);
                Ok(StatementOutcome::FdAdded)
            }
            Statement::Insert { table, rows } => {
                let entry = self.table_mut(&table)?;
                let count = rows.len();
                for row in &rows {
                    entry.schema.tuple(row.clone()).map_err(|e| SqlError::Schema(e.to_string()))?;
                }
                entry.rows.extend(rows.clone());
                self.apply_or_mark_stale(&table, Mutation::new().insert_rows(&table, rows));
                Ok(StatementOutcome::Inserted(count))
            }
            Statement::Delete { table, rows } => {
                let entry = self.table_mut(&table)?;
                // Validate and de-duplicate the targets once; tuple validation
                // normalises nothing beyond type checks, so stored rows (validated at
                // INSERT) compare against target values directly — the catalog is
                // walked exactly once, with no per-row conversion.
                let mut targets: Vec<Vec<Value>> = Vec::new();
                for row in &rows {
                    entry.schema.tuple(row.clone()).map_err(|e| SqlError::Schema(e.to_string()))?;
                    if !targets.contains(row) {
                        targets.push(row.clone());
                    }
                }
                // Drop every matching raw row, counting distinct stored tuples
                // actually removed (set semantics: duplicate raw rows of one tuple
                // count once).
                let mut matched = vec![false; targets.len()];
                entry.rows.retain(|row| match targets.iter().position(|t| t == row) {
                    Some(index) => {
                        matched[index] = true;
                        false
                    }
                    None => true,
                });
                let removed = matched.into_iter().filter(|&m| m).count();
                // Preferences relating a deleted tuple die with it — a rebuild would
                // otherwise fail to resolve them, and the delta path drops exactly the
                // priority edges incident to deleted tuples.
                entry.preferences.retain(|(winner, loser)| {
                    !targets.contains(winner) && !targets.contains(loser)
                });
                self.apply_or_mark_stale(&table, Mutation::new().delete_rows(&table, rows));
                Ok(StatementOutcome::Deleted(removed))
            }
            Statement::Prefer { table, winner, loser } => {
                // Both tuples must already be stored: a preference relates existing tuples.
                let instance = self.instance(&table)?;
                let entry = self.table_mut(&table)?;
                for row in [&winner, &loser] {
                    let tuple = entry
                        .schema
                        .tuple(row.clone())
                        .map_err(|e| SqlError::Schema(e.to_string()))?;
                    if !instance.contains_tuple(&tuple) {
                        return Err(SqlError::Schema(format!(
                            "PREFER references tuple {tuple}, which is not stored in `{table}`"
                        )));
                    }
                }
                entry.preferences.push((winner, loser));
                self.queue_prefer(&table);
                Ok(StatementOutcome::PreferenceAdded)
            }
            Statement::Select(_) | Statement::Explain(_) => {
                unreachable!("SELECT/EXPLAIN statements are routed through Session::execute")
            }
        }
    }

    fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables.get(name).ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// The names of the tables defined so far, in lexicographic order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of distinct `SELECT` statements planned so far (observability for the
    /// prepared-statement cache).
    pub fn prepared_statement_count(&self) -> usize {
        self.prepared.len()
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        self.tables.get_mut(name).ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// The instance currently stored for `table` (validated rows, set semantics).
    pub fn instance(&self, table: &str) -> Result<RelationInstance, SqlError> {
        let entry = self.table(table)?;
        RelationInstance::from_rows(Arc::clone(&entry.schema), entry.rows.clone())
            .map_err(|e| SqlError::Schema(e.to_string()))
    }

    /// The functional dependencies declared for `table`.
    pub fn fds(&self, table: &str) -> Result<FdSet, SqlError> {
        let entry = self.table(table)?;
        let texts: Vec<&str> = entry.fds.iter().map(String::as_str).collect();
        FdSet::parse(Arc::clone(&entry.schema), &texts).map_err(|e| SqlError::Schema(e.to_string()))
    }

    /// Builds the engine snapshot for `table` from the stored rows, FDs and preferences
    /// (no caching; prefer [`Session::snapshot`]).
    fn build_snapshot(&self, table: &str) -> Result<EngineSnapshot, SqlError> {
        let entry = self.table(table)?;
        let instance = self.instance(table)?;
        let fds = self.fds(table)?;
        let mut pairs = Vec::new();
        for (winner, loser) in &entry.preferences {
            let winner_tuple =
                entry.schema.tuple(winner.clone()).map_err(|e| SqlError::Schema(e.to_string()))?;
            let loser_tuple =
                entry.schema.tuple(loser.clone()).map_err(|e| SqlError::Schema(e.to_string()))?;
            let (Some(w), Some(l)) = (instance.id_of(&winner_tuple), instance.id_of(&loser_tuple))
            else {
                return Err(SqlError::Schema(
                    "PREFER statements must reference inserted tuples".to_string(),
                ));
            };
            pairs.push((w, l));
        }
        EngineBuilder::new()
            .relation(instance, fds)
            .priority_pairs(&pairs)
            // Builds fan conflict-graph shards out over the session's workers; the
            // snapshot is bit-identical to a sequential build.
            .parallelism(self.parallelism)
            .build()
            .map_err(|e| SqlError::Schema(format!("preference cannot be installed: {e}")))
    }

    /// The engine snapshot for `table`: the registry's current snapshot, pinned behind
    /// an [`Arc`] (no copies — every caller shares the snapshot and its memo).
    ///
    /// Built and published through the registry on first use; a statement that changes
    /// the table either swaps a delta-derived replacement into the registry right away
    /// (`INSERT`/`DELETE`/`ALTER`), queues for a coalesced swap at this read
    /// (`PREFER`), or marks the table stale so this read rebuilds and re-publishes.
    /// Tables this session never defined are still served when another session (or a
    /// server) published them into the shared registry.
    pub fn snapshot(&mut self, table: &str) -> Result<Arc<EngineSnapshot>, SqlError> {
        self.snapshot_lease(table).map(SnapshotLease::into_snapshot)
    }

    /// [`Session::snapshot`] plus the registry generation the snapshot was published
    /// under (monotone per table — useful for observing revision swaps).
    pub fn snapshot_lease(&mut self, table: &str) -> Result<SnapshotLease, SqlError> {
        if self.tables.contains_key(table) {
            self.publish_if_stale(table)?;
            // A racing `SnapshotRegistry::remove` on a shared registry can still take
            // the slot away between the publish and this read; surface it as an
            // unknown table rather than panicking inside library code.
            return self.registry.read(table).ok_or_else(|| {
                SqlError::UnknownTable(format!("{table} (removed from the shared registry)"))
            });
        }
        // Not in this session's catalog: serve it if a sibling session or server
        // published it into the shared registry.
        self.registry.read(table).ok_or_else(|| SqlError::UnknownTable(table.to_string()))
    }

    /// Builds and publishes `table`'s snapshot when this session mutated it since the
    /// last publish (or the registry does not serve it yet). Returns whether a publish
    /// happened. The single site of the build → publish → stale-clear sequence.
    fn publish_if_stale(&mut self, table: &str) -> Result<bool, SqlError> {
        // Queued PREFERs install first — as one coalesced priority derivation when the
        // delta path is available, otherwise by folding into the rebuild below.
        self.flush_pending_prefers(table)?;
        if !self.stale.contains(table) && self.registry.contains(table) {
            return Ok(false);
        }
        let snapshot = self.build_snapshot(table)?;
        let generation = self.registry.publish(table, snapshot);
        self.published_gen.insert(table.to_string(), generation);
        self.stale.remove(table);
        Ok(true)
    }

    /// Routes `ALTER TABLE … ADD FD` through the registry **as a schema delta** when
    /// the served snapshot is still the one this session last wrote: the published
    /// replacement scans for new conflict edges only inside the added FD's LHS groups
    /// and re-partitions only the components those edges touch
    /// ([`EngineSnapshot::with_fd_added`](EngineSnapshot::with_fd_added)). The
    /// generation check runs under the registry's per-table revision lock, exactly
    /// like the `INSERT`/`DELETE` delta path; interference from another writer (or a
    /// delta error) falls back to mark-stale + rebuild.
    fn add_fd_or_mark_stale(&mut self, table: &str, fd: FunctionalDependency) {
        if !self.stale.contains(table) {
            if let Some(&expected) = self.published_gen.get(table) {
                let parallelism = self.parallelism;
                let name = table.to_string();
                let applied = self.registry.revise_scoped_if_generation(table, expected, |base| {
                    base.with_fd_added_reported(&name, fd, parallelism).map(|(snapshot, report)| {
                        let scope = ChangeScope::Schema {
                            relation: name.clone(),
                            affected: report.affected,
                        };
                        (snapshot, scope)
                    })
                });
                if let Ok(Some(generation)) = applied {
                    self.published_gen.insert(table.to_string(), generation);
                    self.schema_stats.fds_delta += 1;
                    return;
                }
            }
        }
        self.stale.insert(table.to_string());
        self.schema_stats.fds_rebuild += 1;
    }

    /// Records a `PREFER` for installation at the next read boundary. Preferences on a
    /// table whose served snapshot this session last wrote queue up and later flush as
    /// **one** coalesced swap ([`Session::flush_pending_prefers`]); anything else goes
    /// through the mark-stale/rebuild path directly.
    fn queue_prefer(&mut self, table: &str) {
        if !self.stale.contains(table) && self.published_gen.contains_key(table) {
            *self.pending_prefers.entry(table.to_string()).or_insert(0) += 1;
        } else {
            self.stale.insert(table.to_string());
            self.schema_stats.prefers_rebuild += 1;
        }
    }

    /// Installs every queued `PREFER` on `table` as **one** priority-revalidation
    /// derivation + registry swap — the coalescing described in the [module
    /// docs](self). Runs right before any snapshot read of the table. A generation
    /// conflict (another writer swapped the slot since this session last wrote) falls
    /// back to the mark-stale/rebuild path; an installation error (for example a
    /// cyclic preference) also marks the table stale, so later reads keep surfacing
    /// the error through the rebuild until the catalog is fixed.
    fn flush_pending_prefers(&mut self, table: &str) -> Result<(), SqlError> {
        let Some(batched) = self.pending_prefers.remove(table) else {
            return Ok(());
        };
        if self.stale.contains(table) {
            // A later statement already forced a rebuild; it installs the whole
            // catalog, queued preferences included.
            self.schema_stats.prefers_rebuild += batched;
            return Ok(());
        }
        let Some(&expected) = self.published_gen.get(table) else {
            self.stale.insert(table.to_string());
            self.schema_stats.prefers_rebuild += batched;
            return Ok(());
        };
        let entry = self.table(table)?;
        let schema = Arc::clone(&entry.schema);
        let preferences = entry.preferences.clone();
        let parallelism = self.parallelism;
        let name = table.to_string();
        let applied = self.registry.revise_scoped_if_generation(table, expected, |base| {
            let ctx = base.context_of(&name).ok_or_else(|| SqlError::UnknownTable(name.clone()))?;
            let instance = ctx.instance();
            // Resolve the *whole* catalog preference list against the served
            // instance: the replacement priority carries every preference, old and
            // queued, so the result matches a fresh build exactly.
            let mut pairs = Vec::new();
            for (winner, loser) in &preferences {
                let winner_tuple =
                    schema.tuple(winner.clone()).map_err(|e| SqlError::Schema(e.to_string()))?;
                let loser_tuple =
                    schema.tuple(loser.clone()).map_err(|e| SqlError::Schema(e.to_string()))?;
                let (Some(w), Some(l)) =
                    (instance.id_of(&winner_tuple), instance.id_of(&loser_tuple))
                else {
                    return Err(SqlError::Schema(
                        "PREFER statements must reference inserted tuples".to_string(),
                    ));
                };
                pairs.push((w, l));
            }
            let priority = ctx
                .priority_from_pairs(&pairs)
                .map_err(|e| SqlError::Schema(format!("preference cannot be installed: {e}")))?;
            let (snapshot, affected) = base
                .with_priority_revalidated_reported_for(&name, priority, parallelism)
                .map_err(|e| SqlError::Schema(format!("preference cannot be installed: {e}")))?;
            Ok((snapshot, ChangeScope::Priority { relation: name.clone(), affected }))
        });
        match applied {
            Ok(Some(generation)) => {
                self.published_gen.insert(table.to_string(), generation);
                self.schema_stats.prefers_delta += 1;
                self.schema_stats.prefers_coalesced += batched;
                Ok(())
            }
            Ok(None) | Err(ReviseError::UnknownTable(_)) => {
                self.stale.insert(table.to_string());
                self.schema_stats.prefers_rebuild += batched;
                Ok(())
            }
            Err(ReviseError::Build(e)) => {
                self.stale.insert(table.to_string());
                self.schema_stats.prefers_rebuild += batched;
                Err(e)
            }
        }
    }

    /// The delta-vs-rebuild accounting for this session's `ALTER TABLE … ADD FD` and
    /// `PREFER` statements (see [`SchemaDeltaStats`]). Counters only ever grow.
    pub fn schema_delta_stats(&self) -> SchemaDeltaStats {
        self.schema_stats
    }

    /// Routes an `INSERT`/`DELETE` through the registry **as a delta** when the served
    /// snapshot is still the one this session last wrote (the common single-writer
    /// case): the published replacement re-partitions only the affected conflict
    /// components and carries every untouched memo entry — no rebuild, no staleness.
    /// The generation check runs under the registry's per-table revision lock
    /// ([`SnapshotRegistry::apply_if_generation`]), so a racing writer can never slip
    /// between the check and the swap: if anyone else published since this session
    /// last wrote, the delta is refused and the mutation falls back to the mark-stale
    /// path (the next read rebuilds from this session's catalog).
    fn apply_or_mark_stale(&mut self, table: &str, mutation: Mutation) {
        if !self.stale.contains(table) {
            if let Some(&expected) = self.published_gen.get(table) {
                if let Ok(Some((generation, _))) =
                    self.registry.apply_if_generation(table, &mutation, self.parallelism, expected)
                {
                    self.published_gen.insert(table.to_string(), generation);
                    return;
                }
            }
        }
        self.stale.insert(table.to_string());
    }

    /// Builds and publishes every catalog table that is stale or unpublished, returning
    /// the number of snapshots published. Servers call this once after loading a script
    /// so the registry serves every table before the first request arrives.
    pub fn publish_tables(&mut self) -> Result<usize, SqlError> {
        let names: Vec<String> = self.tables.keys().cloned().collect();
        let mut published = 0;
        for table in names {
            if self.publish_if_stale(&table)? {
                published += 1;
            }
        }
        Ok(published)
    }

    /// The continuous-query manager this session registers subscriptions with,
    /// created (with the session's parallelism) and attached to the registry on
    /// first use. Sessions sharing a registry each attach their own manager; every
    /// manager observes every swap.
    pub fn subscription_manager(&mut self) -> Arc<SubscriptionManager> {
        if let Some(manager) = &self.subscriptions {
            return Arc::clone(manager);
        }
        let manager = SubscriptionManager::new(self.parallelism);
        manager.attach(&self.registry);
        self.subscriptions = Some(Arc::clone(&manager));
        manager
    }

    /// Registers a repair-quantified `SELECT … WITH REPAIRS <family>` as a continuous
    /// query: the statement is planned through the ordinary prepared-`SELECT` path,
    /// its table is published if this session holds it, and later generation swaps
    /// arrive as [`SubscriptionEvent`]s through [`Session::drain_subscription_events`].
    /// Returns the subscription id plus the initial full answer the deltas build on.
    pub fn subscribe(&mut self, sql: &str, semantics: Semantics) -> Result<Subscribed, SqlError> {
        self.subscribe_with(sql, semantics, SubscribeOptions::default())
    }

    /// [`Session::subscribe`] with an explicit report strategy and push-queue bound:
    /// `options.strategy` picks per-generation, coalesced or windowed delivery and
    /// `options.queue_capacity` overrides the manager's per-subscription queue bound.
    pub fn subscribe_with(
        &mut self,
        sql: &str,
        semantics: Semantics,
        options: SubscribeOptions,
    ) -> Result<Subscribed, SqlError> {
        let Statement::Select(select) = parse_statement(sql)? else {
            return Err(SqlError::Query("only SELECT statements can be subscribed".to_string()));
        };
        let Some(family) = select.repairs else {
            return Err(SqlError::Query(
                "subscriptions quantify over repairs; add WITH REPAIRS <family>".to_string(),
            ));
        };
        // Publish the table first so the registry serves a slot to register against.
        self.snapshot(&select.table)?;
        let prepared = self.prepare_select(sql.trim(), &select)?;
        let manager = self.subscription_manager();
        let mut subscribed = manager
            .subscribe_with(&self.registry, Arc::clone(&prepared.query), family, semantics, options)
            .map_err(|e| SqlError::Query(e.to_string()))?;
        // The engine reports free-variable names (`v_<Column>`); surface the SQL
        // column names instead.
        for column in &mut subscribed.columns {
            if let Some(stripped) = column.strip_prefix("v_") {
                *column = stripped.to_string();
            }
        }
        Ok(subscribed)
    }

    /// Drops a subscription registered through [`Session::subscribe`]. Returns whether
    /// it existed.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        self.subscriptions.as_ref().is_some_and(|manager| manager.unsubscribe(id))
    }

    /// The subscriptions this session registered, with their current positions.
    pub fn subscriptions(&self) -> Vec<SubscriptionInfo> {
        self.subscriptions.as_ref().map_or_else(Vec::new, |manager| manager.list())
    }

    /// Report-strategy counters across this session's subscriptions (all zero until
    /// a coalesced or windowed subscription exists).
    pub fn window_stats(&self) -> WindowStats {
        self.subscriptions.as_ref().map_or_else(WindowStats::default, |m| m.window_stats())
    }

    /// Takes every queued event across this session's subscriptions, tagged with the
    /// subscription id (oldest first per subscription).
    pub fn drain_subscription_events(&mut self) -> Vec<(u64, SubscriptionEvent)> {
        let Some(manager) = self.subscriptions.as_ref().map(Arc::clone) else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for info in manager.list() {
            for event in manager.drain(info.id) {
                events.push((info.id, event));
            }
        }
        events
    }

    /// Builds the open conjunctive query corresponding to a `SELECT`: one variable per
    /// column, the table atom, and the `WHERE` conditions as comparisons; non-projected
    /// columns are existentially quantified.
    fn select_query(
        &self,
        entry: &Table,
        select: &SelectStatement,
    ) -> Result<(Vec<String>, Formula), SqlError> {
        let all_columns: Vec<String> =
            entry.schema.attributes().iter().map(|a| a.name.clone()).collect();
        let projected: Vec<String> =
            if select.star { all_columns.clone() } else { select.columns.clone() };
        for column in projected.iter().chain(select.conditions.iter().map(|c| &c.column)) {
            if !all_columns.contains(column) {
                return Err(SqlError::UnknownColumn {
                    table: entry.schema.name().to_string(),
                    column: column.clone(),
                });
            }
        }
        let column_var = |column: &str| format!("v_{column}");
        let args: Vec<Term> = all_columns.iter().map(|c| var(&column_var(c)).clone()).collect();
        let mut conjuncts = vec![atom(entry.schema.name(), args)];
        for condition in &select.conditions {
            let rhs = match &condition.rhs {
                ConditionRhs::Column(column) => {
                    if !all_columns.contains(column) {
                        return Err(SqlError::UnknownColumn {
                            table: entry.schema.name().to_string(),
                            column: column.clone(),
                        });
                    }
                    var(&column_var(column))
                }
                ConditionRhs::Constant(value) => Term::Const(value.clone()),
            };
            conjuncts.push(Formula::Comparison(pdqi_query::Comparison {
                left: var(&column_var(&condition.column)),
                op: condition.op,
                right: rhs,
            }));
        }
        let body = and_all(conjuncts);
        // Existentially quantify the non-projected columns.
        let hidden: Vec<String> =
            all_columns.iter().filter(|c| !projected.contains(c)).map(|c| column_var(c)).collect();
        let formula = if hidden.is_empty() {
            body
        } else {
            let refs: Vec<&str> = hidden.iter().map(String::as_str).collect();
            exists(&refs, body)
        };
        Ok((projected, formula))
    }

    /// Plans the `SELECT` once per distinct statement text (projection + prepared
    /// formula), caching the plan for later executions.
    fn prepare_select(
        &mut self,
        sql_text: &str,
        select: &SelectStatement,
    ) -> Result<PreparedSelect, SqlError> {
        if let Some(prepared) = self.prepared.get(sql_text) {
            return Ok(prepared.clone());
        }
        let entry = self.table(&select.table)?;
        let (projected, formula) = self.select_query(entry, select)?;
        let prepared = PreparedSelect {
            projected,
            query: Arc::new(PreparedQuery::from_formula(formula).with_source(sql_text)),
        };
        // Bound the plan cache so sessions fed parameter-inlined statement streams
        // (`... WHERE Salary >= 10`, `>= 11`, ...) stay at a fixed footprint.
        if self.prepared.len() >= PREPARED_CACHE_LIMIT {
            self.prepared.clear();
        }
        self.prepared.insert(sql_text.to_string(), prepared.clone());
        Ok(prepared)
    }

    fn select(
        &mut self,
        sql_text: &str,
        select: &SelectStatement,
    ) -> Result<StatementOutcome, SqlError> {
        let PreparedSelect { projected, query } = self.prepare_select(sql_text, select)?;
        let rows = match select.repairs {
            None => {
                // Plain evaluation over the stored (possibly inconsistent) instance.
                let instance = self.instance(&select.table)?;
                let evaluator = Evaluator::with_relation(&instance);
                let answers = evaluator
                    .answers(query.formula())
                    .map_err(|e| SqlError::Query(e.to_string()))?;
                answers
                    .into_iter()
                    .map(|assignment| {
                        projected.iter().map(|c| assignment[&format!("v_{c}")].clone()).collect()
                    })
                    .collect::<Vec<Vec<Value>>>()
            }
            Some(kind) => {
                // Certain answers over the preferred repairs, through the snapshot's
                // memoised pipeline. The answer rows come back in lexicographic order of
                // the *variable names*; rebuild them in projection order through the
                // free-variable order of the formula.
                let snapshot = self.snapshot(&select.table)?;
                let answers = query
                    .execute_tuned(
                        &snapshot,
                        kind,
                        Semantics::Certain,
                        self.parallelism,
                        &self.tuner,
                    )
                    .map_err(|e| SqlError::Query(e.to_string()))?;
                let free = query.free_vars();
                answers
                    .map(|row| {
                        projected
                            .iter()
                            .map(|c| {
                                let variable = format!("v_{c}");
                                let index = free
                                    .iter()
                                    .position(|v| *v == variable)
                                    .expect("projected columns are free variables");
                                row[index].clone()
                            })
                            .collect()
                    })
                    .collect::<Vec<Vec<Value>>>()
            }
        };
        let mut rows = rows;
        rows.sort();
        rows.dedup();
        Ok(StatementOutcome::Rows(QueryResult { columns: projected, rows }))
    }

    /// Executes `EXPLAIN SELECT … WITH REPAIRS <family>`: renders the costed
    /// physical plan the Volcano-style planner picked for the statement (estimated
    /// cardinalities, join order, per-component strategies, eval path), executes it
    /// through the ordinary memoising pipeline, and appends the actual product size
    /// and row count. Plain `SELECT`s without a repair clause evaluate directly over
    /// the stored instance — there is nothing to plan — so they are rejected.
    fn explain(
        &mut self,
        sql_text: &str,
        select: &SelectStatement,
    ) -> Result<StatementOutcome, SqlError> {
        let Some(kind) = select.repairs else {
            return Err(SqlError::Query(
                "EXPLAIN covers repair-quantified SELECTs; add WITH REPAIRS <family>".to_string(),
            ));
        };
        let PreparedSelect { query, .. } = self.prepare_select(sql_text, select)?;
        let snapshot = self.snapshot(&select.table)?;
        let report = query
            .explain(&snapshot, kind, Semantics::Certain, self.parallelism)
            .map_err(|e| SqlError::Query(e.to_string()))?;
        Ok(StatementOutcome::Plan(report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SETUP: &str = "\
        CREATE TABLE Mgr (Name TEXT, Dept TEXT, Salary INT, Reports INT);\
        ALTER TABLE Mgr ADD FD Dept -> Name Salary Reports;\
        ALTER TABLE Mgr ADD FD Name -> Dept Salary Reports;\
        INSERT INTO Mgr VALUES ('Mary', 'R&D', 40, 3), ('John', 'R&D', 10, 2);\
        INSERT INTO Mgr VALUES ('Mary', 'IT', 20, 1), ('John', 'PR', 30, 4);";

    fn session_with_example1() -> Session {
        let mut session = Session::new();
        session.execute_script(SETUP).unwrap();
        session
    }

    fn rows(outcome: StatementOutcome) -> QueryResult {
        match outcome {
            StatementOutcome::Rows(result) => result,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn ddl_dml_and_plain_select() {
        let mut session = session_with_example1();
        let result = rows(session.execute("SELECT Name FROM Mgr WHERE Dept = 'R&D'").unwrap());
        assert_eq!(result.columns, vec!["Name"]);
        assert_eq!(result.rows.len(), 2);
    }

    #[test]
    fn certain_answers_under_the_plain_repair_family() {
        let mut session = session_with_example1();
        // Which departments certainly have a manager? None without preferences.
        let result = rows(session.execute("SELECT Dept FROM Mgr WITH REPAIRS ALL").unwrap());
        assert!(result.rows.is_empty());
        // But every repair has some manager called Mary and some called John.
        let result = rows(session.execute("SELECT Name FROM Mgr WITH REPAIRS ALL").unwrap());
        assert_eq!(result.rows.len(), 2);
    }

    #[test]
    fn preferences_change_the_certain_answers() {
        let mut session = session_with_example1();
        // Example 3's reliability information as explicit tuple preferences.
        session.execute("PREFER ('Mary', 'R&D', 40, 3) OVER ('Mary', 'IT', 20, 1) IN Mgr").unwrap();
        session.execute("PREFER ('John', 'R&D', 10, 2) OVER ('John', 'PR', 30, 4) IN Mgr").unwrap();
        let result = rows(session.execute("SELECT Dept FROM Mgr WITH REPAIRS GLOBAL").unwrap());
        assert_eq!(result.rows, vec![vec![Value::name("R&D")]]);
        // The star projection and WHERE clauses compose with the repair clause.
        let result = rows(
            session.execute("SELECT * FROM Mgr WHERE Salary >= 10 WITH REPAIRS GLOBAL").unwrap(),
        );
        assert_eq!(result.columns.len(), 4);
        assert!(result.rows.is_empty());
    }

    #[test]
    fn errors_are_reported() {
        let mut session = session_with_example1();
        assert!(matches!(session.execute("SELECT Name FROM Nope"), Err(SqlError::UnknownTable(_))));
        assert!(matches!(
            session.execute("SELECT Bogus FROM Mgr"),
            Err(SqlError::UnknownColumn { .. })
        ));
        assert!(matches!(
            session.execute("INSERT INTO Mgr VALUES (1, 'x', 1, 1)"),
            Err(SqlError::Schema(_))
        ));
        assert!(matches!(
            session.execute("CREATE TABLE Mgr (A INT)"),
            Err(SqlError::TableExists(_))
        ));
        assert!(matches!(
            session.execute("PREFER ('Ghost','X',1,1) OVER ('Mary','IT',20,1) IN Mgr"),
            Err(SqlError::Schema(_))
        ));
        assert!(matches!(session.execute("SELECT FROM"), Err(SqlError::Parse(_))));
    }

    #[test]
    fn snapshot_and_metadata_accessors() {
        let mut session = session_with_example1();
        assert_eq!(session.instance("Mgr").unwrap().len(), 4);
        assert_eq!(session.fds("Mgr").unwrap().len(), 2);
        let snapshot = session.snapshot("Mgr").unwrap();
        assert_eq!(snapshot.count_repairs(), 3);
    }

    #[test]
    fn deletes_remove_tuples_their_preferences_and_their_answers() {
        let mut session = session_with_example1();
        session.execute("PREFER ('Mary','R&D',40,3) OVER ('Mary','IT',20,1) IN Mgr").unwrap();
        assert_eq!(session.snapshot("Mgr").unwrap().priority().edge_count(), 1);
        // Deleting the losing tuple removes it, its conflicts and the preference.
        let outcome = session.execute("DELETE FROM Mgr VALUES ('Mary','IT',20,1)").unwrap();
        assert_eq!(outcome, StatementOutcome::Deleted(1));
        let snapshot = session.snapshot("Mgr").unwrap();
        assert_eq!(snapshot.context().instance().len(), 3);
        assert_eq!(snapshot.priority().edge_count(), 0);
        assert_eq!(snapshot.count_repairs(), 2);
        // Deleting an absent row is a no-op.
        let outcome = session.execute("DELETE FROM Mgr VALUES ('Ghost','X',1,1)").unwrap();
        assert_eq!(outcome, StatementOutcome::Deleted(0));
        // And the certain answers reflect the smaller instance: the remaining tuples
        // form one conflict path Mary-R&D — John-R&D — John-PR whose repairs are
        // {Mary-R&D, John-PR} and {John-R&D}, so only John manages certainly.
        let result = rows(session.execute("SELECT Name FROM Mgr WITH REPAIRS ALL").unwrap());
        assert_eq!(result.rows, vec![vec![Value::name("John")]]);
    }

    #[test]
    fn mutations_apply_as_deltas_once_the_table_is_published() {
        let mut session = session_with_example1();
        // First read publishes generation 1.
        assert_eq!(session.snapshot_lease("Mgr").unwrap().generation(), 1);
        // A mutation on a published table applies as a delta: the generation bumps
        // immediately, without waiting for the next read to rebuild.
        session.execute("INSERT INTO Mgr VALUES ('Eve','HR',15,2)").unwrap();
        assert_eq!(session.registry().generation("Mgr"), 2);
        let lease = session.snapshot_lease("Mgr").unwrap();
        assert_eq!(lease.generation(), 2);
        assert_eq!(lease.snapshot().context().instance().len(), 5);
        // The delta-derived snapshot matches a from-scratch session bit for bit.
        let mut fresh = session_with_example1();
        fresh.execute("INSERT INTO Mgr VALUES ('Eve','HR',15,2)").unwrap();
        let rebuilt = fresh.snapshot("Mgr").unwrap();
        assert_eq!(lease.snapshot().graph().edges(), rebuilt.graph().edges());
        assert_eq!(lease.snapshot().shards_of("Mgr"), rebuilt.shards_of("Mgr"));
        assert_eq!(lease.snapshot().count_repairs(), rebuilt.count_repairs());
        // DELETE applies as a delta too.
        session.execute("DELETE FROM Mgr VALUES ('Eve','HR',15,2)").unwrap();
        assert_eq!(session.registry().generation("Mgr"), 3);
        assert_eq!(session.snapshot("Mgr").unwrap().context().instance().len(), 4);
    }

    #[test]
    fn mutations_fall_back_to_rebuilds_when_another_writer_interferes() {
        let registry = pdqi_core::SnapshotRegistry::shared();
        let mut writer = Session::with_registry(Arc::clone(&registry));
        writer.execute_script(SETUP).unwrap();
        writer.snapshot("Mgr").unwrap();
        // A sibling session re-publishes the table: the writer's recorded generation
        // is now behind, so its next mutation must not delta against foreign state.
        let mut sibling = Session::with_registry(Arc::clone(&registry));
        sibling.execute_script(SETUP).unwrap();
        sibling.snapshot("Mgr").unwrap();
        writer.execute("INSERT INTO Mgr VALUES ('Eve','HR',15,2)").unwrap();
        // The insert fell back to mark-stale; the next read rebuilds and re-publishes.
        let snapshot = writer.snapshot("Mgr").unwrap();
        assert_eq!(snapshot.context().instance().len(), 5);
    }

    #[test]
    fn tuned_selects_feed_the_session_chunk_tuner() {
        let mut session = session_with_example1();
        session.set_parallelism(Parallelism::threads(2));
        session.execute("SELECT Name FROM Mgr WITH REPAIRS ALL").unwrap();
        // Example 1 is one 4-tuple component: 3 selections split across 2 workers.
        assert!(session.chunk_tuner().stats().samples > 0);
    }

    #[test]
    fn snapshots_are_cached_until_the_table_changes() {
        let mut session = session_with_example1();
        let first = session.snapshot("Mgr").unwrap();
        let second = session.snapshot("Mgr").unwrap();
        // Same snapshot object (shared memo), not a rebuild.
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert_eq!(session.snapshot_lease("Mgr").unwrap().generation(), 1);
        session.execute("INSERT INTO Mgr VALUES ('Eve', 'HR', 15, 2)").unwrap();
        let third = session.snapshot("Mgr").unwrap();
        assert_eq!(third.context().instance().len(), 5);
        session.execute("PREFER ('Mary','R&D',40,3) OVER ('Mary','IT',20,1) IN Mgr").unwrap();
        let fourth = session.snapshot_lease("Mgr").unwrap();
        assert_eq!(fourth.snapshot().priority().edge_count(), 1);
        // Each mutation bumped the published generation exactly once.
        assert_eq!(fourth.generation(), 3);
    }

    #[test]
    fn sessions_sharing_a_registry_serve_one_snapshot_set() {
        let registry = pdqi_core::SnapshotRegistry::shared();
        let mut writer = Session::with_registry(Arc::clone(&registry));
        writer.execute_script(SETUP).unwrap();
        let published = writer.snapshot("Mgr").unwrap();
        // A reader session that never defined the table serves the shared snapshot.
        let mut reader = Session::with_registry(Arc::clone(&registry));
        let shared = reader.snapshot("Mgr").unwrap();
        assert!(Arc::ptr_eq(&published, &shared));
        // A mutation in the writer re-publishes; the reader sees the new generation.
        writer.execute("INSERT INTO Mgr VALUES ('Eve', 'HR', 15, 2)").unwrap();
        writer.snapshot("Mgr").unwrap();
        assert_eq!(reader.snapshot("Mgr").unwrap().context().instance().len(), 5);
        // Tables nobody published are still unknown.
        assert!(matches!(reader.snapshot("Nope"), Err(SqlError::UnknownTable(_))));
        // A session defining its *own* table under a served name must not be shadowed
        // by the sibling's snapshot: CREATE TABLE marks the name stale, so the next
        // read publishes this session's (empty, differently-shaped) table.
        let mut third = Session::with_registry(Arc::clone(&registry));
        third.execute("CREATE TABLE Mgr (Id INT)").unwrap();
        let own = third.snapshot("Mgr").unwrap();
        assert_eq!(own.context().instance().len(), 0);
        assert_eq!(own.context().instance().schema().attributes().len(), 1);
    }

    #[test]
    fn publish_tables_publishes_the_whole_catalog_once() {
        let mut session = session_with_example1();
        session.execute("CREATE TABLE Clean (A INT, B INT)").unwrap();
        session.execute("INSERT INTO Clean VALUES (1, 2)").unwrap();
        assert_eq!(session.publish_tables().unwrap(), 2);
        assert_eq!(session.registry().table_names(), vec!["Clean", "Mgr"]);
        // Re-publishing without mutations is a no-op.
        assert_eq!(session.publish_tables().unwrap(), 0);
        // An insert into a published table applies as a delta and re-publishes
        // immediately, so there is nothing left for publish_tables to do.
        session.execute("INSERT INTO Clean VALUES (2, 3)").unwrap();
        assert_eq!(session.registry().generation("Clean"), 2);
        assert_eq!(session.publish_tables().unwrap(), 0);
        // An FD addition applies as a schema delta and re-publishes immediately too.
        session.execute("ALTER TABLE Clean ADD FD A -> B").unwrap();
        assert_eq!(session.registry().generation("Clean"), 3);
        assert_eq!(session.publish_tables().unwrap(), 0);
        assert_eq!(session.schema_delta_stats().fds_delta, 1);
    }

    #[test]
    fn consecutive_prefers_coalesce_into_one_swap() {
        let mut session = session_with_example1();
        assert_eq!(session.snapshot_lease("Mgr").unwrap().generation(), 1);
        // Three preferences, each a conflict edge of Example 1, queued back to back.
        session.execute("PREFER ('Mary','R&D',40,3) OVER ('Mary','IT',20,1) IN Mgr").unwrap();
        session.execute("PREFER ('John','R&D',10,2) OVER ('John','PR',30,4) IN Mgr").unwrap();
        session.execute("PREFER ('Mary','R&D',40,3) OVER ('John','R&D',10,2) IN Mgr").unwrap();
        // Nothing swapped yet; the flush happens at the read boundary, once.
        assert_eq!(session.registry().generation("Mgr"), 1);
        let lease = session.snapshot_lease("Mgr").unwrap();
        assert_eq!(lease.generation(), 2);
        assert_eq!(lease.snapshot().priority().edge_count(), 3);
        let stats = session.schema_delta_stats();
        assert_eq!(stats.prefers_delta, 1);
        assert_eq!(stats.prefers_coalesced, 3);
        assert_eq!(stats.prefers_rebuild, 0);
        // The coalesced delta matches a from-scratch build of the same catalog.
        let mut fresh = session_with_example1();
        fresh.execute("PREFER ('Mary','R&D',40,3) OVER ('Mary','IT',20,1) IN Mgr").unwrap();
        fresh.execute("PREFER ('John','R&D',10,2) OVER ('John','PR',30,4) IN Mgr").unwrap();
        fresh.execute("PREFER ('Mary','R&D',40,3) OVER ('John','R&D',10,2) IN Mgr").unwrap();
        let rebuilt = fresh.snapshot("Mgr").unwrap();
        assert_eq!(lease.snapshot().count_repairs(), rebuilt.count_repairs());
        let statement = "SELECT Dept FROM Mgr WITH REPAIRS GLOBAL";
        assert_eq!(
            rows(session.execute(statement).unwrap()),
            rows(fresh.execute(statement).unwrap())
        );
    }

    #[test]
    fn fd_additions_apply_as_schema_deltas_end_to_end() {
        let mut session = session_with_example1();
        let before = session.snapshot("Mgr").unwrap();
        // Salaries are pairwise distinct, so this FD adds no edge: the delta shares
        // the parent's conflict graph outright and still bumps the generation.
        session.execute("ALTER TABLE Mgr ADD FD Salary -> Dept").unwrap();
        assert_eq!(session.registry().generation("Mgr"), 2);
        let lease = session.snapshot_lease("Mgr").unwrap();
        assert!(Arc::ptr_eq(lease.snapshot().graph(), before.graph()));
        assert_eq!(lease.snapshot().context().fds().len(), 3);
        assert_eq!(session.schema_delta_stats().fds_delta, 1);
        // A later insert conflicts under the *new* FD (salary 40 twice, different
        // departments); the mutation delta over the FD-extended snapshot matches a
        // fresh session replaying the whole script.
        session.execute("INSERT INTO Mgr VALUES ('Zoe','HR',40,9)").unwrap();
        let delta = session.snapshot("Mgr").unwrap();
        let mut fresh = session_with_example1();
        fresh.execute("ALTER TABLE Mgr ADD FD Salary -> Dept").unwrap();
        fresh.execute("INSERT INTO Mgr VALUES ('Zoe','HR',40,9)").unwrap();
        let rebuilt = fresh.snapshot("Mgr").unwrap();
        assert_eq!(delta.graph().edges(), rebuilt.graph().edges());
        assert_eq!(delta.count_repairs(), rebuilt.count_repairs());
        let statement = "SELECT Name FROM Mgr WITH REPAIRS ALL";
        assert_eq!(
            rows(session.execute(statement).unwrap()),
            rows(fresh.execute(statement).unwrap())
        );
    }

    #[test]
    fn parallel_sessions_build_identical_snapshots() {
        let mut sequential = session_with_example1();
        let mut parallel = session_with_example1();
        parallel.set_parallelism(Parallelism::threads(4));
        let s = sequential.snapshot("Mgr").unwrap();
        let p = parallel.snapshot("Mgr").unwrap();
        assert_eq!(p.graph().edges(), s.graph().edges());
        assert_eq!(p.component_count(), s.component_count());
        assert_eq!(p.shards_of("Mgr"), s.shards_of("Mgr"));
        assert_eq!(p.count_repairs(), s.count_repairs());
    }

    #[test]
    fn parallel_sessions_answer_exactly_like_sequential_ones() {
        let statements = [
            "SELECT Name FROM Mgr WITH REPAIRS ALL",
            "SELECT Dept FROM Mgr WITH REPAIRS LOCAL",
            "SELECT * FROM Mgr WHERE Salary >= 10 WITH REPAIRS GLOBAL",
        ];
        let mut sequential = session_with_example1();
        let mut parallel = session_with_example1();
        parallel.set_parallelism(Parallelism::threads(4));
        assert_eq!(parallel.parallelism().thread_count(), 4);
        for statement in statements {
            assert_eq!(
                rows(sequential.execute(statement).unwrap()),
                rows(parallel.execute(statement).unwrap()),
                "{statement}"
            );
        }
    }

    #[test]
    fn explain_renders_the_plan_and_actuals() {
        let mut session = session_with_example1();
        let outcome = session.execute("EXPLAIN SELECT Name FROM Mgr WITH REPAIRS ALL").unwrap();
        let StatementOutcome::Plan(report) = outcome else {
            panic!("expected a plan report, got {outcome:?}");
        };
        assert!(report.starts_with("plan family=Rep"), "{report}");
        assert!(report.contains("query SELECT Name FROM Mgr WITH REPAIRS ALL"), "{report}");
        assert!(report.contains("actual product="), "{report}");
        assert!(report.contains("rows=2"), "{report}");
        // The EXPLAIN shares its prepared statement (and thereby the engine
        // fingerprint, answer memo and plan cache) with the bare SELECT.
        assert_eq!(session.prepared_statement_count(), 1);
        session.execute("SELECT Name FROM Mgr WITH REPAIRS ALL").unwrap();
        assert_eq!(session.prepared_statement_count(), 1);
    }

    #[test]
    fn explain_requires_a_repair_clause() {
        let mut session = session_with_example1();
        assert!(matches!(session.execute("EXPLAIN SELECT Name FROM Mgr"), Err(SqlError::Query(_))));
        assert!(matches!(
            session.execute("EXPLAIN INSERT INTO Mgr VALUES ('X','Y',1,1)"),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn repeated_selects_reuse_the_prepared_statement_and_snapshot_memo() {
        let mut session = session_with_example1();
        let statement = "SELECT Name FROM Mgr WITH REPAIRS ALL";
        let first = rows(session.execute(statement).unwrap());
        let stats = session.snapshot("Mgr").unwrap().memo_stats();
        assert_eq!(stats.answer_hits, 0);
        let second = rows(session.execute(statement).unwrap());
        assert_eq!(first, second);
        let stats = session.snapshot("Mgr").unwrap().memo_stats();
        // The second execution was served entirely from the answer memo.
        assert_eq!(stats.answer_hits, 1);
        assert_eq!(session.prepared_statement_count(), 1);
    }
}
