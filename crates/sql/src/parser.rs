//! Lexer and parser for the SQL subset.

use pdqi_constraints::CompOp;
use pdqi_core::FamilyKind;
use pdqi_relation::Value;

/// Column types of the SQL subset: `INT` and `TEXT` (the paper's name domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Integer column.
    Int,
    /// Uninterpreted-name column.
    Text,
}

/// A `WHERE` condition: `column op (column | constant)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Left-hand column name.
    pub column: String,
    /// Comparison operator.
    pub op: CompOp,
    /// Right-hand side: a column name or a constant.
    pub rhs: ConditionRhs,
}

/// The right-hand side of a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum ConditionRhs {
    /// Another column of the same table.
    Column(String),
    /// A constant.
    Constant(Value),
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Projected column names (`*` expands to all columns at execution time).
    pub columns: Vec<String>,
    /// Whether the projection was `*`.
    pub star: bool,
    /// The table queried.
    pub table: String,
    /// Conjunction of `WHERE` conditions.
    pub conditions: Vec<Condition>,
    /// The repair family of a `WITH REPAIRS` clause, if present.
    pub repairs: Option<FamilyKind>,
}

/// A parsed statement of the SQL subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column declarations.
        columns: Vec<(String, ColumnType)>,
    },
    /// `ALTER TABLE name ADD FD A B -> C D`.
    AddFd {
        /// Table name.
        table: String,
        /// The textual FD (`"A B -> C D"`), parsed against the schema at execution time.
        fd: String,
    },
    /// `INSERT INTO name VALUES (...), (...)`.
    Insert {
        /// Table name.
        table: String,
        /// The literal rows.
        rows: Vec<Vec<Value>>,
    },
    /// `DELETE FROM name VALUES (...), (...)` — removes the listed rows by value
    /// (set semantics address tuples by their values; absent rows are no-ops).
    Delete {
        /// Table name.
        table: String,
        /// The literal rows to remove.
        rows: Vec<Vec<Value>>,
    },
    /// `PREFER (row) OVER (row) IN table`.
    Prefer {
        /// Table name.
        table: String,
        /// The preferred (dominating) tuple's values.
        winner: Vec<Value>,
        /// The dominated tuple's values.
        loser: Vec<Value>,
    },
    /// A `SELECT`.
    Select(SelectStatement),
    /// `EXPLAIN SELECT …` — the costed physical plan plus post-execution actuals.
    Explain(SelectStatement),
}

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlParseError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL parse error: {}", self.message)
    }
}

impl std::error::Error for SqlParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Text(String),
    LParen,
    RParen,
    Comma,
    Star,
    Arrow,
    Op(CompOp),
}

fn lex(input: &str) -> Result<Vec<Token>, SqlParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' | ';' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Op(CompOp::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Op(CompOp::Neq));
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Op(CompOp::Le));
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Op(CompOp::Neq));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Op(CompOp::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CompOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CompOp::Gt));
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let value = text.parse::<i64>().map_err(|_| SqlParseError {
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    tokens.push(Token::Int(value));
                }
            }
            '\'' => {
                i += 1;
                let mut text = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlParseError {
                                message: "unterminated string literal".to_string(),
                            })
                        }
                        Some(&b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            text.push('\'');
                            i += 2;
                        }
                        Some(&b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            text.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Text(text));
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let value = input[start..i].parse::<i64>().map_err(|_| SqlParseError {
                    message: "integer literal out of range".to_string(),
                })?;
                tokens.push(Token::Int(value));
            }
            _ if c.is_ascii_alphabetic() || c == '_' || c == '&' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'&')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            _ => {
                return Err(SqlParseError { message: format!("unexpected character `{c}`") });
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, SqlParseError> {
        Err(SqlParseError { message: message.into() })
    }

    fn keyword(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(id)) if id.eq_ignore_ascii_case(word)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), SqlParseError> {
        if self.keyword(word) {
            Ok(())
        } else {
            self.error(format!("expected keyword `{word}`"))
        }
    }

    fn expect(&mut self, token: Token, what: &str) -> Result<(), SqlParseError> {
        if self.peek() == Some(&token) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected {what}"))
        }
    }

    fn ident(&mut self) -> Result<String, SqlParseError> {
        match self.next() {
            Some(Token::Ident(id)) => Ok(id),
            _ => self.error("expected an identifier"),
        }
    }

    fn literal(&mut self) -> Result<Value, SqlParseError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Value::int(n)),
            Some(Token::Text(t)) => Ok(Value::name(&t)),
            _ => self.error("expected a literal value"),
        }
    }

    fn row(&mut self) -> Result<Vec<Value>, SqlParseError> {
        self.expect(Token::LParen, "`(`")?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(Token::RParen, "`)`")?;
        Ok(values)
    }

    fn statement(&mut self) -> Result<Statement, SqlParseError> {
        if self.keyword("EXPLAIN") {
            return match self.statement()? {
                Statement::Select(select) => Ok(Statement::Explain(select)),
                _ => self.error("EXPLAIN supports only SELECT statements"),
            };
        }
        if self.keyword("CREATE") {
            self.expect_keyword("TABLE")?;
            let name = self.ident()?;
            self.expect(Token::LParen, "`(`")?;
            let mut columns = Vec::new();
            loop {
                let column = self.ident()?;
                let ty = self.ident()?;
                let ty = match ty.to_ascii_uppercase().as_str() {
                    "INT" | "INTEGER" => ColumnType::Int,
                    "TEXT" | "VARCHAR" | "NAME" => ColumnType::Text,
                    other => return self.error(format!("unknown column type `{other}`")),
                };
                columns.push((column, ty));
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(Token::RParen, "`)`")?;
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.keyword("ALTER") {
            self.expect_keyword("TABLE")?;
            let table = self.ident()?;
            self.expect_keyword("ADD")?;
            self.expect_keyword("FD")?;
            let mut lhs = Vec::new();
            while let Some(Token::Ident(_)) = self.peek() {
                lhs.push(self.ident()?);
            }
            self.expect(Token::Arrow, "`->`")?;
            let mut rhs = Vec::new();
            while let Some(Token::Ident(_)) = self.peek() {
                rhs.push(self.ident()?);
            }
            if lhs.is_empty() && rhs.is_empty() {
                return self.error("an FD needs at least one attribute");
            }
            return Ok(Statement::AddFd {
                table,
                fd: format!("{} -> {}", lhs.join(" "), rhs.join(" ")),
            });
        }
        if self.keyword("INSERT") {
            self.expect_keyword("INTO")?;
            let table = self.ident()?;
            self.expect_keyword("VALUES")?;
            let mut rows = Vec::new();
            loop {
                rows.push(self.row()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.keyword("DELETE") {
            self.expect_keyword("FROM")?;
            let table = self.ident()?;
            self.expect_keyword("VALUES")?;
            let mut rows = Vec::new();
            loop {
                rows.push(self.row()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            return Ok(Statement::Delete { table, rows });
        }
        if self.keyword("PREFER") {
            let winner = self.row()?;
            self.expect_keyword("OVER")?;
            let loser = self.row()?;
            self.expect_keyword("IN")?;
            let table = self.ident()?;
            return Ok(Statement::Prefer { table, winner, loser });
        }
        if self.keyword("SELECT") {
            let mut columns = Vec::new();
            let mut star = false;
            if self.peek() == Some(&Token::Star) {
                self.pos += 1;
                star = true;
            } else {
                loop {
                    columns.push(self.ident()?);
                    if self.peek() == Some(&Token::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect_keyword("FROM")?;
            let table = self.ident()?;
            let mut conditions = Vec::new();
            if self.keyword("WHERE") {
                loop {
                    let column = self.ident()?;
                    let op = match self.next() {
                        Some(Token::Op(op)) => op,
                        _ => return self.error("expected a comparison operator"),
                    };
                    let rhs = match self.peek() {
                        Some(Token::Ident(_)) => ConditionRhs::Column(self.ident()?),
                        _ => ConditionRhs::Constant(self.literal()?),
                    };
                    conditions.push(Condition { column, op, rhs });
                    if !self.keyword("AND") {
                        break;
                    }
                }
            }
            let mut repairs = None;
            if self.keyword("WITH") {
                self.expect_keyword("REPAIRS")?;
                let family = self.ident()?;
                repairs = Some(FamilyKind::parse(&family).ok_or_else(|| SqlParseError {
                    message: format!("unknown repair family `{family}`"),
                })?);
            }
            return Ok(Statement::Select(SelectStatement {
                columns,
                star,
                table,
                conditions,
                repairs,
            }));
        }
        self.error("expected CREATE, ALTER, INSERT, DELETE, PREFER or SELECT")
    }
}

/// Parses a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(input: &str) -> Result<Statement, SqlParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let statement = parser.statement()?;
    if parser.pos != parser.tokens.len() {
        return Err(SqlParseError { message: "unexpected trailing input".to_string() });
    }
    Ok(statement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_both_column_types() {
        let stmt = parse_statement("CREATE TABLE Mgr (Name TEXT, Salary INT);").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateTable {
                name: "Mgr".to_string(),
                columns: vec![
                    ("Name".to_string(), ColumnType::Text),
                    ("Salary".to_string(), ColumnType::Int)
                ],
            }
        );
    }

    #[test]
    fn alter_table_add_fd() {
        let stmt = parse_statement("ALTER TABLE Mgr ADD FD Dept -> Name Salary Reports").unwrap();
        assert_eq!(
            stmt,
            Statement::AddFd {
                table: "Mgr".to_string(),
                fd: "Dept -> Name Salary Reports".to_string()
            }
        );
    }

    #[test]
    fn insert_multiple_rows_with_quotes_and_negatives() {
        let stmt = parse_statement("INSERT INTO T VALUES ('O''Brien', -3), ('R&D', 7);").unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "T");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Value::name("O'Brien"));
                assert_eq!(rows[0][1], Value::int(-3));
                assert_eq!(rows[1][0], Value::name("R&D"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_rows_by_value() {
        let stmt = parse_statement("DELETE FROM T VALUES ('a', 1), ('b', 2);").unwrap();
        match stmt {
            Statement::Delete { table, rows } => {
                assert_eq!(table, "T");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1], vec![Value::name("b"), Value::int(2)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_statement("DELETE FROM T").is_err());
        assert!(parse_statement("DELETE T VALUES (1)").is_err());
    }

    #[test]
    fn prefer_statement() {
        let stmt = parse_statement("PREFER ('a', 1) OVER ('b', 2) IN T;").unwrap();
        assert!(matches!(stmt, Statement::Prefer { ref table, .. } if table == "T"));
    }

    #[test]
    fn select_with_conditions_and_repair_clause() {
        let stmt = parse_statement(
            "SELECT Name, Dept FROM Mgr WHERE Salary > 15 AND Dept = 'R&D' WITH REPAIRS GLOBAL",
        )
        .unwrap();
        match stmt {
            Statement::Select(select) => {
                assert_eq!(select.columns, vec!["Name", "Dept"]);
                assert_eq!(select.conditions.len(), 2);
                assert_eq!(select.repairs, Some(FamilyKind::Global));
                assert!(!select.star);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_star_without_clauses() {
        let stmt = parse_statement("SELECT * FROM Mgr").unwrap();
        match stmt {
            Statement::Select(select) => {
                assert!(select.star);
                assert!(select.conditions.is_empty());
                assert_eq!(select.repairs, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_statements_are_rejected() {
        for bad in [
            "",
            "DROP TABLE x",
            "CREATE TABLE t (A BLOB)",
            "SELECT FROM t",
            "SELECT a FROM t WITH REPAIRS NONSENSE",
            "INSERT INTO t VALUES (1",
            "PREFER (1) OVER (2)",
        ] {
            assert!(parse_statement(bad).is_err(), "`{bad}` should not parse");
        }
    }
}
