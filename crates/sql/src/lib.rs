//! A small SQL front end for preference-driven consistent query answering.
//!
//! The paper's framework is defined model-theoretically; real users, however, talk to
//! databases in SQL. This crate provides a compact SQL subset that covers everything the
//! paper's scenarios need and maps directly onto the `pdqi-core` engine:
//!
//! ```sql
//! CREATE TABLE Mgr (Name TEXT, Dept TEXT, Salary INT, Reports INT);
//! ALTER TABLE Mgr ADD FD Dept -> Name Salary Reports;
//! ALTER TABLE Mgr ADD FD Name -> Dept Salary Reports;
//! INSERT INTO Mgr VALUES ('Mary', 'R&D', 40, 3), ('John', 'R&D', 10, 2);
//! INSERT INTO Mgr VALUES ('Mary', 'IT', 20, 1), ('John', 'PR', 30, 4);
//! PREFER ('Mary', 'R&D', 40, 3) OVER ('Mary', 'IT', 20, 1) IN Mgr;
//! SELECT Name, Dept FROM Mgr WHERE Salary > 15 WITH REPAIRS GLOBAL;
//! ```
//!
//! `SELECT … WITH REPAIRS <family>` returns the **certain answers** over the preferred
//! repairs of the chosen family (`ALL`, `LOCAL`, `SEMIGLOBAL`, `GLOBAL`, `COMMON`) under
//! the priorities accumulated through `PREFER` statements; a plain `SELECT` evaluates the
//! query directly over the stored (possibly inconsistent) table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod parser;
pub mod session;

pub use parser::{parse_statement, ColumnType, Condition, SelectStatement, Statement};
pub use session::{QueryResult, SchemaDeltaStats, Session, SqlError, StatementOutcome};
