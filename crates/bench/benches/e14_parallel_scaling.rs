//! E14 — scaling of the parallel execution subsystem over the snapshot architecture.
//!
//! Three workloads, each at 1/2/4/8 workers so the speedup curve is read directly off
//! the report:
//!
//! * `warm` — per-component preferred-repair enumeration fanned out over workers on a
//!   64-component instance (64 independent conflict chains of 16 tuples each);
//! * `query` — one open query whose repair product (2¹² selections) is split into
//!   chunks evaluated concurrently;
//! * `batch` — 12 distinct closed queries against one shared snapshot through
//!   [`BatchExecutor`], the multi-user serving shape.
//!
//! Parallelism is an execution strategy, not a semantics change: every iteration runs
//! against results asserted identical to the sequential path (cheaply, via counts).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::{
    BatchExecutor, BatchRequest, EngineBuilder, EngineSnapshot, FamilyKind, Parallelism,
    PreparedQuery, Semantics,
};
use pdqi_datagen::{example4_instance, multi_chain_instance};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn chain_snapshot(chains: usize, length: usize) -> EngineSnapshot {
    let (instance, fds) = multi_chain_instance(chains, length);
    EngineBuilder::new().relation(instance, fds).build().expect("chain snapshot builds")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_parallel_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));

    // Workload 1: warming all 64 components (each a 16-tuple conflict chain whose
    // preferred repairs take real work to enumerate) with growing worker counts.
    let warm_base = chain_snapshot(64, 16);
    let expected_components = warm_base.component_count();
    assert_eq!(expected_components, 64, "the scaling instance must have 64 components");
    for workers in WORKERS {
        group.bench_with_input(BenchmarkId::new("warm/threads", workers), &workers, |b, &n| {
            b.iter(|| {
                let cold = warm_base.with_cleared_memo();
                let warmed = cold.warm_components(FamilyKind::Global, Parallelism::threads(n));
                assert_eq!(warmed, expected_components);
                warmed
            })
        });
    }

    // Workload 2: one open query over a 2^12-repair product, chunked across workers.
    let (instance, fds) = example4_instance(12);
    let query_base = EngineBuilder::new().relation(instance, fds).build().unwrap();
    let open = PreparedQuery::parse("EXISTS y . R(x,y) AND x < 6").unwrap();
    let sequential_rows = open
        .execute(&query_base.with_cleared_memo(), FamilyKind::Rep, Semantics::Certain)
        .unwrap()
        .count();
    for workers in WORKERS {
        group.bench_with_input(BenchmarkId::new("query/threads", workers), &workers, |b, &n| {
            b.iter(|| {
                let cold = query_base.with_cleared_memo();
                let rows = open
                    .execute_with(
                        &cold,
                        FamilyKind::Rep,
                        Semantics::Certain,
                        Parallelism::threads(n),
                    )
                    .unwrap()
                    .count();
                assert_eq!(rows, sequential_rows);
                rows
            })
        });
    }

    // Workload 3: batch throughput — 12 distinct closed queries sharing one snapshot,
    // one query per worker at a time (the serving shape).
    let requests: Vec<BatchRequest> = (0..12)
        .map(|i| {
            let text = format!("EXISTS x,y . R(x,y) AND x >= {i}");
            BatchRequest::consistent_answer(
                Arc::new(PreparedQuery::parse(&text).unwrap()),
                FamilyKind::Rep,
            )
        })
        .collect();
    let (instance, fds) = example4_instance(10);
    let batch_base = EngineBuilder::new().relation(instance, fds).build().unwrap();
    for workers in WORKERS {
        group.bench_with_input(BenchmarkId::new("batch/threads", workers), &workers, |b, &n| {
            b.iter(|| {
                let executor = BatchExecutor::with_parallelism(
                    batch_base.with_cleared_memo(),
                    Parallelism::threads(n),
                );
                let responses = executor.run(&requests);
                assert!(responses.iter().all(Result::is_ok));
                responses.len()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
