//! E1 — Examples 1–3 / Figures 2–4: preferred consistent answers to the paper's queries
//! Q1 and Q2 on the motivating instance, for every repair family, with and without the
//! Example 3 reliability priority.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pdqi_bench::{example1_context, example3_reliability, Q1, Q2};
use pdqi_core::cqa::preferred_consistent_answer;
use pdqi_core::FamilyKind;
use pdqi_priority::{priority_from_source_reliability, Priority};
use pdqi_query::parse_formula;

fn bench(c: &mut Criterion) {
    let ctx = example1_context();
    let (sources, order) = example3_reliability();
    let reliability = priority_from_source_reliability(Arc::clone(ctx.graph()), &sources, &order);
    let empty = Priority::empty(Arc::clone(ctx.graph()));
    let q1 = parse_formula(Q1).unwrap();
    let q2 = parse_formula(Q2).unwrap();

    // Report the answers (the "table" of this experiment) once, outside the timing loops.
    eprintln!("E1: preferred consistent answers on the Example 1 instance");
    for (label, priority) in [("no priority", &empty), ("Example 3 priority", &reliability)] {
        for (query_name, query) in [("Q1", &q1), ("Q2", &q2)] {
            for kind in FamilyKind::ALL {
                let outcome =
                    preferred_consistent_answer(&ctx, priority, kind.family().as_ref(), query)
                        .unwrap();
                eprintln!(
                    "  {label:<18} {query_name} {:<6} certainly_true={} certainly_false={}",
                    kind.label(),
                    outcome.certainly_true,
                    outcome.certainly_false
                );
            }
        }
    }

    let mut group = c.benchmark_group("e1_motivating");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    for kind in FamilyKind::ALL {
        group.bench_function(format!("q2_{}", kind.label()), |b| {
            b.iter(|| {
                preferred_consistent_answer(&ctx, &reliability, kind.family().as_ref(), &q2)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
