//! E15 — scaling of the sharded snapshot builder and of shard revalidation.
//!
//! Three workloads, each at 1/2/4/8 workers so the fan-out curve is read directly off
//! the report:
//!
//! * `build` — [`EngineBuilder::build_with`] over 8 relations × 2 FDs: stage 1 fans one
//!   conflict-scan job per `(relation, FD)` shard, stage 2 one assembly job per
//!   relation, stage 3 stitches `comp_offset`s sequentially (bit-identical output at
//!   every degree);
//! * `revalidate` — [`EngineSnapshot::with_priority_revalidated`] on a warmed skewed
//!   instance: only the components the priority change touches are re-enumerated,
//!   fanned across workers largest-first;
//! * `query_skewed` — one certain-answer query over a skewed repair product, exercising
//!   the adaptive chunk split (chunk counts derived from memoised per-component repair
//!   counts) plus work stealing via the shared atomic work index.
//!
//! Parallelism is an execution strategy, not a semantics change: every iteration
//! asserts (cheaply) that the output matches the sequential path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::{EngineBuilder, EngineSnapshot, FamilyKind, Parallelism, PreparedQuery, Semantics};
use pdqi_datagen::{multi_chain_relations, skewed_chain_instance};
use pdqi_relation::TupleId;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn skewed_snapshot(chains: usize, max_length: usize) -> EngineSnapshot {
    let (instance, fds) = skewed_chain_instance(chains, max_length);
    EngineBuilder::new().relation(instance, fds).build().expect("skewed snapshot builds")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_sharded_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));

    // Workload 1: building a multi-relation snapshot (8 relations, 2 FDs each: 16
    // conflict-scan shards + 8 assembly jobs per build).
    let relations = multi_chain_relations(8, 16, 12);
    let reference = {
        let mut builder = EngineBuilder::new();
        for (instance, fds) in &relations {
            builder = builder.relation(instance.clone(), fds.clone());
        }
        builder.build().expect("reference build")
    };
    let expected_components = reference.component_count();
    let expected_shards = reference.shard_count();
    for workers in WORKERS {
        group.bench_with_input(BenchmarkId::new("build/threads", workers), &workers, |b, &n| {
            b.iter(|| {
                let mut builder = EngineBuilder::new().parallelism(Parallelism::threads(n));
                for (instance, fds) in &relations {
                    builder = builder.relation(instance.clone(), fds.clone());
                }
                let snapshot = builder.build().expect("sharded build");
                assert_eq!(snapshot.component_count(), expected_components);
                assert_eq!(snapshot.shard_count(), expected_shards);
                snapshot.component_count()
            })
        });
    }

    // Workload 2: derive-and-revalidate on a warmed skewed snapshot. The priority edge
    // touches the largest chain, so revalidation re-enumerates the most expensive
    // component (and only that one) per family.
    let warm_base = skewed_snapshot(8, 16);
    warm_base.warm_components(FamilyKind::Global, Parallelism::threads(4));
    warm_base.warm_components(FamilyKind::Local, Parallelism::threads(4));
    let priority = pdqi_priority::Priority::from_pairs(
        std::sync::Arc::clone(warm_base.graph()),
        &[(TupleId(0), TupleId(1))],
    )
    .expect("priority over the largest chain");
    for workers in WORKERS {
        group.bench_with_input(
            BenchmarkId::new("revalidate/threads", workers),
            &workers,
            |b, &n| {
                b.iter(|| {
                    let derived = warm_base
                        .with_priority_revalidated(priority.clone(), Parallelism::threads(n))
                        .expect("revalidated derivation");
                    // Revalidation already recomputed the dropped entries: Global and
                    // Local of the touched component, nothing else.
                    assert_eq!(derived.memo_stats().component_misses, 2);
                    derived.component_count()
                })
            },
        );
    }

    // Workload 3: a possible-answer query over the skewed repair product (per-component
    // repair counts differ by orders of magnitude), split adaptively and stolen from
    // the shared work index. Possible semantics never exits early, so sequential and
    // parallel runs evaluate exactly the same selections and the curve isolates the
    // chunking/stealing machinery. (A Certain query that empties mid-product would
    // instead measure early-exit luck: the sequential fold stops at the emptying
    // selection while chunk-local folds rarely empty locally — inherent amplification
    // on the parallel path, not scheduler overhead.)
    // Lengths 12, 6, 3, 2, 2, 2: per-component repair counts 28/5/2/2/2/2, a ~2.2k
    // selection product with order-of-magnitude skew between digits.
    let query_base = skewed_snapshot(6, 12);
    let open = PreparedQuery::parse("EXISTS a,c,d . R(a,x,c,d)").unwrap();
    let sequential_rows = open
        .execute(&query_base.with_cleared_memo(), FamilyKind::Rep, Semantics::Possible)
        .unwrap()
        .count();
    for workers in WORKERS {
        group.bench_with_input(
            BenchmarkId::new("query_skewed/threads", workers),
            &workers,
            |b, &n| {
                b.iter(|| {
                    let cold = query_base.with_cleared_memo();
                    let rows = open
                        .execute_with(
                            &cold,
                            FamilyKind::Rep,
                            Semantics::Possible,
                            Parallelism::threads(n),
                        )
                        .unwrap()
                        .count();
                    assert_eq!(rows, sequential_rows);
                    rows
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
