//! E4 — Fig. 5, row `L-Rep`: L-repair checking is PTIME (it scales with the instance),
//! while L-consistent query answering enumerates the locally optimal repairs
//! (co-NP-complete in general).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::cqa::preferred_consistent_answer;
use pdqi_core::{LocalOptimal, RepairContext, RepairFamily};
use pdqi_datagen::{
    example4_instance, random_conflict_instance, random_conjunctive_query, random_priority,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("e4_lrep_row");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    // L-repair checking (PTIME) on growing random instances with a half-complete priority.
    for n in [200usize, 800, 3200] {
        let (instance, fds) = random_conflict_instance(n, 0.5, &mut rng);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_priority(Arc::clone(ctx.graph()), 0.5, &mut rng);
        let repair = ctx.some_repair();
        group.bench_with_input(BenchmarkId::new("l_repair_checking", n), &n, |b, _| {
            b.iter(|| LocalOptimal.is_preferred(&ctx, &priority, &repair))
        });
    }

    // L-consistent answers by enumeration of the locally optimal repairs.
    eprintln!("E4: size of L-Rep vs. priority completeness on Example 4 instances");
    for n in [6usize, 9, 12] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_priority(Arc::clone(ctx.graph()), 0.5, &mut rng);
        let preferred = LocalOptimal.count_preferred(&ctx, &priority);
        eprintln!("  n = {n:>2}: |Rep| = {}, |L-Rep| = {preferred}", ctx.count_repairs());
        let query = random_conjunctive_query(ctx.instance(), 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("l_cqa_enumeration", n), &n, |b, _| {
            b.iter(|| {
                preferred_consistent_answer(&ctx, &priority, &LocalOptimal, &query)
                    .unwrap()
                    .certainly_true
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
