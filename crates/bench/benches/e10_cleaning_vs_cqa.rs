//! E10 — the introduction's comparison: data cleaning with partial reliability
//! information vs. preference-driven consistent query answering on integration scenarios.
//! The series reports how often the two approaches give a determined answer and how often
//! cleaning leaves the database inconsistent; the timed benchmarks compare their costs.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_cleaning::{compare_answers, Cleaner, DataSource, Integration, ResolutionRule};
use pdqi_constraints::ConflictGraph;
use pdqi_core::FamilyKind;
use pdqi_datagen::{random_conjunctive_query, IntegrationScenario};
use pdqi_priority::priority_from_source_reliability;
use pdqi_relation::RelationInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10);
    eprintln!("E10: cleaning vs. preferred CQA on integration scenarios");
    let mut group = c.benchmark_group("e10_cleaning_vs_cqa");
    group
        .sample_size(12)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    for departments in [4usize, 6, 8] {
        let scenario = IntegrationScenario::generate(departments, 3, 0.4, &mut rng);
        let sources: Vec<DataSource> = scenario
            .sources
            .iter()
            .enumerate()
            .map(|(i, (name, rows))| DataSource::new(name.clone(), rows.clone(), i as i64))
            .collect();
        let integration = Integration::integrate(Arc::clone(&scenario.schema), &sources).unwrap();
        let graph = ConflictGraph::build(integration.instance(), &scenario.fds);
        let cleaner = Cleaner::new()
            .with_rule(ResolutionRule::PreferReliableSource(scenario.reliability.clone()));
        let cleaning = cleaner.clean(&integration, &graph);
        let priority = priority_from_source_reliability(
            Arc::new(graph.clone()),
            &integration.primary_sources(),
            &scenario.reliability,
        );
        let instance: &RelationInstance = integration.instance();
        let queries: Vec<_> =
            (0..5).map(|_| random_conjunctive_query(instance, 2, &mut rng)).collect();

        // Answer-quality series.
        let mut determined_by_cqa = 0usize;
        for query in &queries {
            let comparison = compare_answers(
                &integration,
                &scenario.fds,
                &cleaning,
                &priority,
                FamilyKind::Global,
                query,
            )
            .unwrap();
            if comparison.preferred_answer.is_some() {
                determined_by_cqa += 1;
            }
        }
        eprintln!(
            "  departments = {departments}: {} tuples, {} conflicts, cleaned still inconsistent: {}, \
             G-Rep determined {determined_by_cqa}/{} sample queries",
            instance.len(),
            graph.edge_count(),
            cleaning.still_inconsistent(),
            queries.len()
        );

        // Timing: cleaning vs. one preferred-CQA evaluation.
        group.bench_with_input(BenchmarkId::new("cleaning", departments), &departments, |b, _| {
            b.iter(|| cleaner.clean(&integration, &graph))
        });
        let query = queries[0].clone();
        group.bench_with_input(
            BenchmarkId::new("preferred_cqa", departments),
            &departments,
            |b, _| {
                b.iter(|| {
                    compare_answers(
                        &integration,
                        &scenario.fds,
                        &cleaning,
                        &priority,
                        FamilyKind::Global,
                        &query,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
