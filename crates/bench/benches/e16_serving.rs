//! E16 — the serving front end: loopback protocol throughput and swap-under-load
//! latency over the snapshot registry.
//!
//! Four measurements:
//!
//! * `loopback/exec` and `loopback/batch/8` — full wire round-trips (frame → dispatch
//!   through `BatchExecutor` against the registry snapshot → frame back) for a single
//!   `EXEC` and for an 8-entry `BATCH`; after the first iteration these serve from the
//!   snapshot's answer memo, so they measure the serving overhead itself;
//! * `inprocess/exec` — the same query through `SnapshotRegistry::read` +
//!   `PreparedQuery::execute` without the network, isolating the protocol cost;
//! * `swap_under_load/exec` — wire round-trips while another connection continuously
//!   publishes `SET-PRIORITY` revisions (built + revalidated off the serving path,
//!   swapped atomically): the acceptance criterion is that reads never block on a
//!   swap, so this should stay near `loopback/exec`;
//! * `swap/revise` — the latency of one revision publish itself (derive + revalidate
//!   exactly the invalidated memo entries + swap).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pdqi_core::{EngineBuilder, FamilyKind, Parallelism, PreparedQuery, SnapshotRegistry};
use pdqi_datagen::{revision_trace, TraceEvent};
use pdqi_priority::Priority;
use pdqi_server::{serve, Client, ExecMode, ExecSpec, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_serving");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    // The serving workload: 4 independent conflict chains, a recurring query pool, and
    // a stream of single-chain priority revisions.
    let mut rng = StdRng::seed_from_u64(2006);
    let trace = revision_trace(4, 6, 400, 4, &mut rng);
    let revisions: Vec<_> = trace
        .events
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Revision(pairs) => Some(pairs.clone()),
            TraceEvent::Query(_) => None,
        })
        .collect();
    let registry = SnapshotRegistry::shared();
    registry.publish(
        "R",
        EngineBuilder::new()
            .relation(trace.instance.clone(), trace.fds.clone())
            .build()
            .expect("trace instance builds"),
    );
    let handle = serve("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default())
        .expect("loopback server binds");
    let addr = handle.local_addr();

    let query_text = "EXISTS b,c,d . R(x,b,c,d)";
    let mut client = Client::connect(addr).expect("client connects");
    client.prepare("q", query_text).expect("query prepares");

    group.bench_function("loopback/exec", |b| {
        b.iter(|| {
            let (outcome, generation) =
                client.exec("q", FamilyKind::Global, ExecMode::Certain).unwrap();
            (outcome, generation)
        })
    });

    group.bench_function("loopback/batch/8", |b| {
        b.iter(|| {
            let specs: Vec<ExecSpec> = (0..8)
                .map(|_| ExecSpec {
                    id: "q".to_string(),
                    family: FamilyKind::Global,
                    mode: ExecMode::Certain,
                })
                .collect();
            client.batch(specs).unwrap()
        })
    });

    // The in-process equivalent of loopback/exec: registry read + prepared execution.
    let prepared = PreparedQuery::parse(query_text).unwrap();
    group.bench_function("inprocess/exec", |b| {
        b.iter(|| {
            let lease = registry.read("R").unwrap();
            prepared
                .execute(lease.snapshot(), FamilyKind::Global, pdqi_core::Semantics::Certain)
                .unwrap()
                .count()
        })
    });

    // Reads while a second connection publishes revisions as fast as the registry
    // swaps them: revision builds run off the serving path, so exec latency should
    // stay in the same regime as the unloaded loopback/exec.
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let stop = Arc::clone(&stop);
        let revisions = revisions.clone();
        std::thread::spawn(move || {
            let mut publisher = Client::connect(addr).expect("publisher connects");
            let mut index = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let pairs: Vec<(u32, u32)> =
                    revisions[index % revisions.len()].iter().map(|&(w, l)| (w.0, l.0)).collect();
                publisher.set_priority("R", &pairs).expect("revision publishes");
                index += 1;
            }
        })
    };
    group.bench_function("swap_under_load/exec", |b| {
        b.iter(|| client.exec("q", FamilyKind::Global, ExecMode::Certain).unwrap())
    });
    stop.store(true, Ordering::Relaxed);
    publisher.join().expect("publisher stops cleanly");

    // The publish path itself, without the wire: derive + revalidate + swap.
    let mut index = 0usize;
    group.bench_function("swap/revise", |b| {
        b.iter(|| {
            let pairs = &revisions[index % revisions.len()];
            index += 1;
            registry
                .revise("R", |current| {
                    let graph = Arc::clone(current.context().graph());
                    let priority = Priority::from_pairs(graph, pairs)?;
                    current.with_priority_revalidated(priority, Parallelism::sequential())
                })
                .unwrap()
        })
    });

    client.shutdown().expect("server answers the shutdown");
    handle.wait();
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
