//! E19 — the scatter-gather coordinator: fan-out overhead versus shard count.
//!
//! The coordinator answers every request by scattering one `BATCH` per shard over
//! loopback TCP and merging the per-shard folds, so its latency is the per-shard
//! serving cost (memo-warm after the first iteration) plus the scatter/merge overhead.
//! Measured at 1, 2 and 4 shards over the same logical relation:
//!
//! * `exec/N` — one `EXEC … G CERTAIN` through the coordinator (a 1-shard coordinator
//!   isolates the pure coordination overhead against `e16_serving/loopback/exec`);
//! * `batch8/N` — an 8-entry `BATCH` mixing open certain/possible folds and a closed
//!   `PROFILE`-merged verdict, all answered at one generation vector per shard.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pdqi_core::{EngineBuilder, RouteSpec, SnapshotRegistry};
use pdqi_datagen::{key_range_split, multi_chain_instance};
use pdqi_relation::Value;
use pdqi_server::{coordinate, serve, Client, CoordinatorConfig, ExecMode, ExecSpec, ServerConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_coordinator");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    let (instance, fds) = multi_chain_instance(4, 6);
    for shards in [1usize, 2, 4] {
        let (parts, plan) =
            key_range_split(&instance, &fds, "A", shards).expect("the chains split");
        let mut shard_handles = Vec::new();
        let mut shard_addrs = Vec::new();
        for part in &parts {
            let registry = SnapshotRegistry::shared();
            registry.publish(
                "R",
                EngineBuilder::new()
                    .relation(part.clone(), fds.clone())
                    .build()
                    .expect("shard part builds"),
            );
            let handle =
                serve("127.0.0.1:0", registry, ServerConfig::default()).expect("shard binds");
            shard_addrs.push(handle.local_addr().to_string());
            shard_handles.push(handle);
        }
        let route = RouteSpec {
            table: "R".to_string(),
            key_column: "A".to_string(),
            splits: plan.splits().iter().map(Value::to_string).collect(),
        };
        let coordinator =
            coordinate("127.0.0.1:0", &shard_addrs, &[route], CoordinatorConfig::default())
                .expect("coordinator binds");
        let mut client = Client::connect(coordinator.local_addr()).expect("client connects");
        client.prepare("open", "EXISTS b,c,d . R(x,b,c,d)").expect("open query prepares");
        client.prepare("closed", "EXISTS a,b,c,d . R(a,b,c,d)").expect("closed query prepares");

        group.bench_function(format!("exec/{shards}"), |b| {
            b.iter(|| {
                client.exec("open", pdqi_core::FamilyKind::Global, ExecMode::Certain).unwrap()
            })
        });

        // Every batch entry fans out to every shard: 8 entries × N shards of folds,
        // merged back into one response at one generation vector.
        group.bench_function(format!("batch8/{shards}"), |b| {
            b.iter(|| {
                let specs: Vec<ExecSpec> = (0..8)
                    .map(|index| ExecSpec {
                        id: if index % 4 == 3 { "closed" } else { "open" }.to_string(),
                        family: pdqi_core::FamilyKind::Global,
                        mode: match index % 4 {
                            1 => ExecMode::Possible,
                            3 => ExecMode::Closed,
                            _ => ExecMode::Certain,
                        },
                    })
                    .collect();
                client.batch(specs).unwrap()
            })
        });

        client.shutdown().expect("coordinator answers the shutdown");
        coordinator.wait();
        for handle in shard_handles {
            handle.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
