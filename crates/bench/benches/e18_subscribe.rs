//! E18 — continuous queries: push-mode subscriptions versus poll-mode re-execution.
//!
//! Three measurements per instance size (`chains` independent 6-tuple conflict
//! chains):
//!
//! * `push/<chains>` — the subscription path: one answer-changing mutation swap
//!   (insert a conflict-free tuple, then delete it again) with an attached
//!   [`SubscriptionManager`]; the delta is derived once at swap time and the
//!   subscriber merely drains it.
//! * `poll/<chains>` — what a client paid before the subsystem: the same two swaps,
//!   but the subscriber re-executes the prepared query in full on every generation
//!   and diffs consecutive answers itself. One push derivation costs one poll, so
//!   these two track each other at a single subscriber — the push side wins by
//!   skipping provably-unchanged swaps, not by cheaper execution.
//! * `skip/<chains>` — that provably-unchanged path: the same mutation pair applied
//!   to a *second* table the subscribed query never reads. The swap metadata proves
//!   the answer unchanged, so the manager pushes nothing and runs zero executions —
//!   this is the subsystem's fixed per-swap overhead, flat in `chains`.
//!
//! The sizes stay small on purpose: an answer-changing swap invalidates the full
//! certain-answer memo, and re-deriving it under the unoriented `Global` family
//! enumerates a repair family that grows exponentially with the number of conflict
//! components (the paper's co-NP-hard regime — ~40× per two extra chains). That
//! blow-up is exactly why the `skip` line matters: proving a swap irrelevant costs
//! microseconds where one re-execution costs milliseconds and up.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pdqi_core::{
    EngineBuilder, FamilyKind, Mutation, Parallelism, PreparedQuery, Semantics, SnapshotRegistry,
    SubscriptionManager,
};
use pdqi_datagen::{multi_chain_instance, multi_chain_relations};
use pdqi_relation::Value;

const QUERY: &str = "EXISTS b,c,d . R(x,b,c,d)";

/// A conflict-free row with a fresh key: inserting it grows the certain answer by
/// exactly one value, deleting it shrinks it back.
fn toggle_row() -> Vec<Value> {
    vec![Value::int(900_001), Value::int(9), Value::int(9_000_000), Value::int(9)]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_subscribe");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));
    let parallelism = Parallelism::sequential();

    for chains in [2usize, 3, 4] {
        let (instance, fds) = multi_chain_instance(chains, 6);
        let row = toggle_row();
        let insert = Mutation::new().insert("R", row.clone());
        let delete = Mutation::new().delete("R", row.clone());

        // Push: the manager derives each delta at swap time; the subscriber drains.
        {
            let registry = SnapshotRegistry::shared();
            registry.publish(
                "R",
                EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap(),
            );
            let manager = SubscriptionManager::new(parallelism);
            manager.attach(&registry);
            let query = Arc::new(PreparedQuery::parse(QUERY).unwrap());
            let sub = manager
                .subscribe(&registry, query, FamilyKind::Global, Semantics::Certain)
                .unwrap();
            group.bench_function(format!("push/{chains}"), |b| {
                b.iter(|| {
                    registry.apply("R", &insert, parallelism).unwrap();
                    let up = manager.drain(sub.id);
                    registry.apply("R", &delete, parallelism).unwrap();
                    let down = manager.drain(sub.id);
                    assert_eq!(up.len() + down.len(), 2, "both swaps change the answer");
                    (up, down)
                })
            });
        }

        // Poll: the subscriber re-executes in full on every generation and diffs.
        {
            let registry = SnapshotRegistry::shared();
            registry.publish(
                "R",
                EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap(),
            );
            let query = PreparedQuery::parse(QUERY).unwrap();
            let mut previous: Vec<Vec<Value>> = {
                let lease = registry.read("R").unwrap();
                query
                    .execute_with(
                        lease.snapshot(),
                        FamilyKind::Global,
                        Semantics::Certain,
                        parallelism,
                    )
                    .unwrap()
                    .rows()
                    .to_vec()
            };
            group.bench_function(format!("poll/{chains}"), |b| {
                b.iter(|| {
                    let mut changes = 0usize;
                    for mutation in [&insert, &delete] {
                        registry.apply("R", mutation, parallelism).unwrap();
                        let lease = registry.read("R").unwrap();
                        let rows = query
                            .execute_with(
                                lease.snapshot(),
                                FamilyKind::Global,
                                Semantics::Certain,
                                parallelism,
                            )
                            .unwrap()
                            .rows()
                            .to_vec();
                        let old: BTreeSet<&Vec<Value>> = previous.iter().collect();
                        let new: BTreeSet<&Vec<Value>> = rows.iter().collect();
                        changes += new.difference(&old).count() + old.difference(&new).count();
                        previous = rows;
                    }
                    assert_eq!(changes, 2, "both swaps change the answer");
                    changes
                })
            });
        }

        // Skip: mutate a table the query never reads; the scope proves the answer
        // unchanged and nothing executes.
        {
            let tables = multi_chain_relations(2, chains, 6);
            let registry = SnapshotRegistry::shared();
            for (instance, fds) in &tables {
                let name = instance.schema().name().to_string();
                registry.publish(
                    &name,
                    EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap(),
                );
            }
            let manager = SubscriptionManager::new(parallelism);
            manager.attach(&registry);
            let query = Arc::new(PreparedQuery::parse("EXISTS b,c,d . R0(x,b,c,d)").unwrap());
            let sub = manager
                .subscribe(&registry, query, FamilyKind::Global, Semantics::Certain)
                .unwrap();
            let other_insert = Mutation::new().insert("R1", row.clone());
            let other_delete = Mutation::new().delete("R1", row.clone());
            group.bench_function(format!("skip/{chains}"), |b| {
                b.iter(|| {
                    registry.apply("R1", &other_insert, parallelism).unwrap();
                    registry.apply("R1", &other_delete, parallelism).unwrap();
                    let events = manager.drain(sub.id);
                    assert!(events.is_empty(), "unrelated swaps must be proven away");
                    events
                })
            });
            assert_eq!(manager.stats().executions, 1, "only the registration execution ran");
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
