//! E9 — Properties P1–P4 in action: sweeping the priority completeness `p` from 0 to 1
//! shows monotonicity (each family's set of preferred repairs only shrinks) down to
//! categoricity for G-Rep and C-Rep at `p = 1`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::{FamilyKind, RepairContext};
use pdqi_datagen::{random_conflict_instance, random_priority};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let (instance, fds) = random_conflict_instance(14, 0.9, &mut rng);
    let ctx = RepairContext::new(instance, fds);

    eprintln!(
        "E9: |X-Rep| vs. priority completeness (random instance, {} tuples, {} conflicts, {} repairs)",
        ctx.instance().len(),
        ctx.graph().edge_count(),
        ctx.count_repairs()
    );
    eprintln!("  p      Rep   L-Rep  S-Rep  G-Rep  C-Rep");
    let sweep: Vec<(f64, Vec<u128>)> = [0.0f64, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&p| {
            let priority = random_priority(Arc::clone(ctx.graph()), p, &mut rng);
            let counts: Vec<u128> = FamilyKind::ALL
                .iter()
                .map(|kind| kind.family().count_preferred(&ctx, &priority))
                .collect();
            eprintln!(
                "  {p:<5.2} {:>5} {:>6} {:>6} {:>6} {:>6}",
                counts[0], counts[1], counts[2], counts[3], counts[4]
            );
            (p, counts)
        })
        .collect();
    drop(sweep);

    let mut group = c.benchmark_group("e9_priority_sweep");
    group
        .sample_size(12)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));
    for p in [0.0f64, 0.5, 1.0] {
        let priority = random_priority(Arc::clone(ctx.graph()), p, &mut rng);
        for kind in [FamilyKind::Global, FamilyKind::Common] {
            group.bench_with_input(
                BenchmarkId::new(format!("count_{}", kind.label()), format!("p{p:.2}")),
                &p,
                |b, _| b.iter(|| kind.family().count_preferred(&ctx, &priority)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
