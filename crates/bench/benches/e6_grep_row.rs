//! E6 — Fig. 5, row `G-Rep`: G-repair checking is co-NP-complete and G-consistent query
//! answering is Π₂ᵖ-complete. The benchmark contrasts benign inputs (chains, where the
//! domination search prunes well) with the adversarial SAT-reduction instances whose
//! repair space must be explored.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::cqa::preferred_consistent_answer;
use pdqi_core::{GlobalOptimal, RepairContext, RepairFamily};
use pdqi_datagen::{chain_instance, random_3cnf, random_priority, random_total_priority};
use pdqi_solve::cqa_instance_from_3sat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("e6_grep_row");
    group
        .sample_size(12)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    // G-repair checking on conflict chains (the Example 9 shape) with total priorities.
    for length in [10usize, 20, 30] {
        let (instance, fds) = chain_instance(length);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_total_priority(Arc::clone(ctx.graph()), &mut rng);
        let repair = ctx.some_repair();
        group.bench_with_input(
            BenchmarkId::new("g_repair_checking_chain", length),
            &length,
            |b, _| b.iter(|| GlobalOptimal.is_preferred(&ctx, &priority, &repair)),
        );
    }

    // G-repair checking and G-CQA on the adversarial SAT-reduction instances; the repair
    // space doubles with every propositional variable. The largest sizes take minutes
    // per G-CQA call (they exhibit the co-NP lower bound, that is the point), so timed
    // CI runs cap the sweep via PDQI_E6_MAX_VARS.
    eprintln!("E6: SAT-reduction instances (repair space doubles per variable)");
    let max_vars: usize =
        std::env::var("PDQI_E6_MAX_VARS").ok().and_then(|v| v.parse().ok()).unwrap_or(usize::MAX);
    for vars in [4usize, 6, 8].into_iter().filter(|&v| v <= max_vars) {
        let clauses = vars * 3;
        let formula = random_3cnf(vars, clauses, &mut rng);
        let reduction = cqa_instance_from_3sat(&formula);
        let ctx = RepairContext::new(reduction.instance.clone(), reduction.fds.clone());
        let priority = random_priority(Arc::clone(ctx.graph()), 0.3, &mut rng);
        eprintln!(
            "  vars = {vars}: tuples = {}, repairs = {}",
            ctx.instance().len(),
            ctx.count_repairs()
        );
        let repair = ctx.some_repair();
        group.bench_with_input(BenchmarkId::new("g_repair_checking_sat", vars), &vars, |b, _| {
            b.iter(|| GlobalOptimal.is_preferred(&ctx, &priority, &repair))
        });
        group.bench_with_input(BenchmarkId::new("g_cqa_sat", vars), &vars, |b, _| {
            b.iter(|| {
                preferred_consistent_answer(&ctx, &priority, &GlobalOptimal, &reduction.query)
                    .unwrap()
                    .certainly_true
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
