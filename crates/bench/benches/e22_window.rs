//! E22 — write-pipelined pushes: a coalesced k-write burst versus k per-generation
//! swaps.
//!
//! Two measurements per burst size (k conflict-free single-row writes against a
//! 2-chain instance with one attached per-generation subscriber):
//!
//! * `coalesced/<k>` — the PR 10 path: the burst enters the [`WriteCoalescer`] as k
//!   frames folded into **one** net `Mutation`, one `with_mutations` derivation, one
//!   swap and one pushed delta (then the mirror-image delete burst restores the
//!   instance the same way). Per iteration: 2 derivations, 2 pushes, regardless of k.
//! * `pergen/<k>` — what the same burst cost before: k sequential
//!   `SnapshotRegistry::apply` calls, each deriving its own snapshot, publishing its
//!   own swap and pushing its own delta (drained after every swap, as the server's
//!   push cycle would). Per iteration: 2k derivations, 2k pushes.
//!
//! The gap is the pipelining win and should grow linearly with k: the coalesced
//! side's fold is a row-set replay (cheap), while every per-generation swap pays a
//! delta derivation plus a subscriber re-execution.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pdqi_core::{
    EngineBuilder, FamilyKind, Mutation, Parallelism, PreparedQuery, Semantics, SnapshotRegistry,
    SubscriptionManager, WriteCoalescer, WriteFrame,
};
use pdqi_datagen::multi_chain_instance;
use pdqi_relation::Value;

const QUERY: &str = "EXISTS b,c,d . R(x,b,c,d)";

/// The burst: k conflict-free rows with fresh keys (inserting them grows the
/// certain answer by exactly k values; deleting them restores it).
fn burst_rows(k: usize) -> Vec<Vec<Value>> {
    (0..k)
        .map(|i| {
            vec![
                Value::int(900_000 + i as i64),
                Value::int(9),
                Value::int(9_000_000 + i as i64),
                Value::int(9),
            ]
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e22_window");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));
    let parallelism = Parallelism::sequential();
    let (instance, fds) = multi_chain_instance(2, 3);

    for k in [4usize, 16, 64] {
        let rows = burst_rows(k);

        // Coalesced: the whole burst is one batch — one derivation, one push.
        {
            let registry = SnapshotRegistry::shared();
            registry.publish(
                "R",
                EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap(),
            );
            let manager = SubscriptionManager::new(parallelism);
            manager.attach(&registry);
            let query = Arc::new(PreparedQuery::parse(QUERY).unwrap());
            let sub = manager
                .subscribe(&registry, query, FamilyKind::Global, Semantics::Certain)
                .unwrap();
            let coalescer = WriteCoalescer::new(Arc::clone(&registry), parallelism);
            let inserts: Vec<WriteFrame> =
                rows.iter().map(|row| WriteFrame::new(vec![row.clone()], Vec::new())).collect();
            let deletes: Vec<WriteFrame> =
                rows.iter().map(|row| WriteFrame::new(Vec::new(), vec![row.clone()])).collect();
            group.bench_function(format!("coalesced/{k}"), |b| {
                b.iter(|| {
                    for outcome in coalescer.apply_frames("R", inserts.clone()) {
                        outcome.unwrap();
                    }
                    let up = manager.drain(sub.id);
                    for outcome in coalescer.apply_frames("R", deletes.clone()) {
                        outcome.unwrap();
                    }
                    let down = manager.drain(sub.id);
                    assert_eq!(up.len() + down.len(), 2, "one delta per burst direction");
                });
            });
            let stats = coalescer.stats();
            assert_eq!(stats.derivations_saved, stats.frames - stats.batches);
        }

        // Per-generation: every write pays its own derivation, swap and push.
        {
            let registry = SnapshotRegistry::shared();
            registry.publish(
                "R",
                EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap(),
            );
            let manager = SubscriptionManager::new(parallelism);
            manager.attach(&registry);
            let query = Arc::new(PreparedQuery::parse(QUERY).unwrap());
            let sub = manager
                .subscribe(&registry, query, FamilyKind::Global, Semantics::Certain)
                .unwrap();
            let inserts: Vec<Mutation> =
                rows.iter().map(|row| Mutation::new().insert("R", row.clone())).collect();
            let deletes: Vec<Mutation> =
                rows.iter().map(|row| Mutation::new().delete("R", row.clone())).collect();
            group.bench_function(format!("pergen/{k}"), |b| {
                b.iter(|| {
                    let mut pushed = 0usize;
                    for mutation in inserts.iter().chain(&deletes) {
                        registry.apply("R", mutation, parallelism).unwrap();
                        pushed += manager.drain(sub.id).len();
                    }
                    assert_eq!(pushed, 2 * k, "one delta per swap");
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
