//! E8 — Algorithm 1 / Proposition 1: cleaning with a total priority computes its unique
//! repair in time polynomial (essentially linear in practice) in the number of tuples.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::{clean_with_total_priority, RepairContext};
use pdqi_datagen::{example4_instance, random_conflict_instance, random_total_priority};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let mut group = c.benchmark_group("e8_algorithm1");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    // Matching-shaped instances (Example 4): the cheapest possible conflict structure.
    for n in [1_000usize, 4_000, 16_000] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_total_priority(Arc::clone(ctx.graph()), &mut rng);
        group.bench_with_input(BenchmarkId::new("clean_matching", 2 * n), &n, |b, _| {
            b.iter(|| clean_with_total_priority(ctx.graph(), &priority).unwrap())
        });
    }

    // Random conflict graphs with denser neighbourhoods.
    for n in [500usize, 2_000, 8_000] {
        let (instance, fds) = random_conflict_instance(n, 0.6, &mut rng);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_total_priority(Arc::clone(ctx.graph()), &mut rng);
        group.bench_with_input(BenchmarkId::new("clean_random", n), &n, |b, _| {
            b.iter(|| clean_with_total_priority(ctx.graph(), &priority).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
