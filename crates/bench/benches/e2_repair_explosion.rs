//! E2 — Example 4 / Figure 1: the number of repairs grows as `2ⁿ` while the conflict
//! graph (the representation the framework actually works with) grows linearly.
//! Counting through connected components stays cheap; materialising the repairs does not.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::RepairContext;
use pdqi_datagen::example4_instance;

fn bench(c: &mut Criterion) {
    eprintln!("E2: repair-space size vs. conflict-graph size (Example 4)");
    for n in [4usize, 8, 16, 32, 64] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        eprintln!(
            "  n = {n:>3}: tuples = {:>4}, conflict edges = {:>3}, repairs = 2^{n} = {}",
            ctx.instance().len(),
            ctx.graph().edge_count(),
            ctx.count_repairs()
        );
    }

    let mut group = c.benchmark_group("e2_repair_explosion");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    for n in [8usize, 32, 128] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        group.bench_with_input(BenchmarkId::new("count_repairs", n), &ctx, |b, ctx| {
            b.iter(|| ctx.count_repairs())
        });
    }
    for n in [4usize, 8, 12] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        group.bench_with_input(BenchmarkId::new("enumerate_repairs", n), &ctx, |b, ctx| {
            b.iter(|| ctx.repairs(usize::MAX).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
