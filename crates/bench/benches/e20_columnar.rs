//! E20 — the columnar evaluation hot path and FD additions as snapshot deltas.
//!
//! Two comparisons, each at growing instance sizes:
//!
//! * `vector_select`/`scalar_select` and `vector_join`/`scalar_join` — the same
//!   formula evaluated through an [`Evaluator`] with the relation's
//!   [`ColumnarView`] attached (bitmask selection, depth-first vectorized join,
//!   gather) versus the row-at-a-time interpreter. Both paths are pinned
//!   bit-identical, so the gap is pure evaluation cost.
//! * `fd_delta`/`fd_rebuild` — adding one functional dependency to a warmed
//!   snapshot through [`EngineSnapshot::with_fd_added`] (new edges only in the
//!   added FD's LHS groups, untouched components carry their memo entries) versus
//!   the pre-delta alternative: a fresh `EngineBuilder` build under the extended
//!   FD set plus re-warming what the base had memoised.
//!
//! The delta gap grows with the number of untouched chains — schema-change cost
//! tracks the affected region, not the instance.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pdqi_constraints::{FdSet, FunctionalDependency};
use pdqi_core::{EngineBuilder, EngineSnapshot, FamilyKind, Parallelism};
use pdqi_datagen::multi_chain_instance;
use pdqi_query::{parse_formula, Evaluator};
use pdqi_relation::{ColumnarView, RelationInstance, RelationSchema, Value, ValueType};

/// The families a serving snapshot typically has warm; both sides of the FD-delta
/// comparison enumerate exactly these.
const WARM: [FamilyKind; 2] = [FamilyKind::Rep, FamilyKind::Global];

/// `chains` disjoint 6-tuple conflict chains under `A -> B` (each chain three
/// conflict pairs), where only **chain 0** carries shared `C`-values. Adding
/// `C -> D` therefore creates new edges in chain 0 alone: the delta path scans the
/// new FD's LHS groups, re-partitions chain 0 and carries every other chain's memo
/// entries, while a rebuild pays for the whole instance again.
fn localized_fd_workload(chains: usize) -> (RelationInstance, FdSet, FunctionalDependency) {
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "R",
            &[
                ("A", ValueType::Int),
                ("B", ValueType::Int),
                ("C", ValueType::Int),
                ("D", ValueType::Int),
            ],
        )
        .expect("ABCD schema builds"),
    );
    let length = 6usize;
    let stride = (length + 2) as i64;
    let mut rows = Vec::with_capacity(chains * length);
    for chain in 0..chains {
        for i in 0..length {
            let a = chain as i64 * stride + (i / 2) as i64;
            let b = (i % 2) as i64;
            // Chain 0: consecutive pairs share a C-value (violating C -> D through
            // distinct D). Every other chain: all C-values unique, so C -> D holds.
            let c = if chain == 0 {
                1_000_000 + i.div_ceil(2) as i64
            } else {
                2_000_000 + chain as i64 * stride + i as i64
            };
            let d = ((i + 1) % 2) as i64;
            rows.push(vec![Value::int(a), Value::int(b), Value::int(c), Value::int(d)]);
        }
    }
    let instance =
        RelationInstance::from_rows(Arc::clone(&schema), rows).expect("workload rows build");
    let base_fds = FdSet::parse(Arc::clone(&schema), &["A -> B"]).expect("base FD set parses");
    let added = FunctionalDependency::parse(&schema, "C -> D").expect("added FD parses");
    (instance, base_fds, added)
}

/// An open selection: one atom plus a comparison, the bitmask-selection shape.
const SELECT: &str = "EXISTS b,c,d . R(x,b,c,d) AND b > 0";
/// A closed self-join: two atoms sharing `b`, the depth-first join shape.
const JOIN: &str = "EXISTS a,b,c,d,a2,c2,d2 . R(a,b,c,d) AND R(a2,b,c2,d2) AND a < a2";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_columnar");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    let select = parse_formula(SELECT).expect("selection parses");
    let join = parse_formula(JOIN).expect("join parses");

    for chains in [4usize, 16, 64] {
        let (instance, _) = multi_chain_instance(chains, 6);
        let columns = ColumnarView::build(&instance);

        group.bench_function(format!("vector_select/{chains}"), |b| {
            let mut eval = Evaluator::new();
            eval.add_relation_columnar(&instance, &columns);
            b.iter(|| eval.answer_rows(&select).expect("selection evaluates").len())
        });
        group.bench_function(format!("scalar_select/{chains}"), |b| {
            let eval = Evaluator::with_relation(&instance);
            b.iter(|| eval.answer_rows(&select).expect("selection evaluates").len())
        });
        group.bench_function(format!("vector_join/{chains}"), |b| {
            let mut eval = Evaluator::new();
            eval.add_relation_columnar(&instance, &columns);
            b.iter(|| eval.eval_closed(&join).expect("join evaluates"))
        });
        group.bench_function(format!("scalar_join/{chains}"), |b| {
            let eval = Evaluator::with_relation(&instance);
            b.iter(|| eval.eval_closed(&join).expect("join evaluates"))
        });

        // The FD delta versus what `ALTER` paid before: a full rebuild under the
        // extended FD set plus re-warming what the base had memoised.
        let (fd_instance, base_fds, added) = localized_fd_workload(chains);
        let mut full_fds = base_fds.clone();
        full_fds.push(added.clone());
        let base = EngineBuilder::new()
            .relation(fd_instance.clone(), base_fds)
            .build()
            .expect("reduced-FD instance builds");
        for kind in WARM {
            base.warm_components(kind, Parallelism::sequential());
        }
        group.bench_function(format!("fd_delta/{chains}"), |b| {
            b.iter(|| {
                base.with_fd_added("R", added.clone(), Parallelism::sequential())
                    .expect("delta derives")
            })
        });
        group.bench_function(format!("fd_rebuild/{chains}"), |b| {
            b.iter(|| {
                let rebuilt: EngineSnapshot = EngineBuilder::new()
                    .relation(fd_instance.clone(), full_fds.clone())
                    .build()
                    .expect("rebuild succeeds");
                for kind in WARM {
                    rebuilt.warm_components(kind, Parallelism::sequential());
                }
                rebuilt
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
