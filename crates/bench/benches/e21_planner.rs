//! E21 — cost-based planning over the repair product.
//!
//! Two comparisons, each at growing skew, planner versus the naive fixed strategy
//! (`PDQI_FORCE_NAIVE_PLAN`); both paths are pinned bit-identical, so the gap is
//! pure physical-plan quality. Each iteration builds a fresh snapshot (the answer
//! memo would otherwise serve every iteration after the first) and pre-warms the
//! `Rep` component lists — both sides pay identically for that setup, so the
//! measured gap comes from the planner's choices alone:
//!
//! * `join_planner`/`join_naive` — a three-atom self-join written in the worst
//!   textual order: the first two atoms share no variable, so the naive path pays a
//!   per-repair cross product before the third atom constrains both. The planner's
//!   cardinality estimates put the connecting atom second, replacing the cross
//!   product with two selective joins.
//! * `grep_planner`/`grep_naive` — the same skewed join under **G-Rep** on a
//!   snapshot whose `Rep` lists are memoised but whose G-Rep lists are cold (the
//!   serving steady state after a priority swap). On top of the join order, the
//!   planner derives each component's G-Rep candidates from the memoised
//!   maximal-independent-set list; the naive path re-runs the MIS search for every
//!   component before filtering.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pdqi_core::{EngineBuilder, EngineSnapshot, FamilyKind, Parallelism, PreparedQuery, Semantics};
use pdqi_datagen::skewed_chain_instance;
use pdqi_query::force_naive_plan;
use pdqi_relation::RelationInstance;

/// The worst textual order: atoms 1 and 2 are disconnected (their join is a cross
/// product), atom 3 connects to both through `x` and `b2`.
const SKEWED_JOIN: &str = "EXISTS b,c,d,a2,b2,c2,d2,c3,d3 . \
     R(x,b,c,d) AND R(a2,b2,c2,d2) AND R(x,b2,c3,d3)";

/// A fresh snapshot over pre-generated rows with the `Rep` component lists warm —
/// the per-iteration setup shared by both sides of every comparison.
fn warmed_snapshot(instance: &RelationInstance, fds: &pdqi_constraints::FdSet) -> EngineSnapshot {
    let snapshot = EngineBuilder::new()
        .relation(instance.clone(), fds.clone())
        .build()
        .expect("workload builds");
    snapshot.warm_components(FamilyKind::Rep, Parallelism::sequential());
    snapshot
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e21_planner");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    let join = PreparedQuery::parse(SKEWED_JOIN).expect("join parses");

    for chains in [4usize, 8] {
        let (join_instance, join_fds) = skewed_chain_instance(chains, 10);
        for (label, naive) in [("join_planner", false), ("join_naive", true)] {
            group.bench_function(format!("{label}/{chains}"), |b| {
                force_naive_plan(naive);
                b.iter(|| {
                    let snapshot = warmed_snapshot(&join_instance, &join_fds);
                    join.execute_with(
                        &snapshot,
                        FamilyKind::Rep,
                        Semantics::Certain,
                        Parallelism::sequential(),
                    )
                    .expect("join evaluates")
                    .len()
                })
            });
        }

        // The same join under G-Rep with `Rep` warm and G-Rep cold: the naive path
        // re-runs the MIS search per component before the G-Rep filter, the planner
        // derives the candidates from the carried `Rep` lists — and both then pay
        // the product evaluation their join order dictates.
        for (label, naive) in [("grep_planner", false), ("grep_naive", true)] {
            group.bench_function(format!("{label}/{chains}"), |b| {
                force_naive_plan(naive);
                b.iter(|| {
                    let snapshot = warmed_snapshot(&join_instance, &join_fds);
                    join.execute_with(
                        &snapshot,
                        FamilyKind::Global,
                        Semantics::Certain,
                        Parallelism::sequential(),
                    )
                    .expect("join evaluates")
                    .len()
                })
            });
        }
    }
    force_naive_plan(false);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
